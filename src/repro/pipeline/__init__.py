"""Data-construction module (§IV-D): server logs → multi-field user profiles."""

from repro.pipeline.logs import LogEvent, SyntheticLogStream
from repro.pipeline.profile_builder import ProfileBuilder

__all__ = ["LogEvent", "SyntheticLogStream", "ProfileBuilder"]
