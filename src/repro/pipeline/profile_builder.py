"""Profile construction from log events (§IV-D data-construction module).

Aggregates raw events into per-user, per-field feature weights with
exponential time decay, then keeps each user's **top-K highest-weighted
features per field** — the paper constructs KD/QB profiles from exactly this
rule ("his top 512 weights with the highest values") and SC from the top 128
tags.  The output is a :class:`~repro.data.dataset.MultiFieldDataset` ready
for training.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Mapping

import numpy as np

from repro.data.dataset import MultiFieldDataset
from repro.data.fields import FieldSchema
from repro.data.sparse import CSRMatrix
from repro.pipeline.logs import LogEvent

__all__ = ["ProfileBuilder"]


class ProfileBuilder:
    """Streaming aggregation of log events into top-K weighted profiles.

    Parameters
    ----------
    schema:
        Target schema; events whose ``source`` is not a schema field are
        counted as skipped (unknown log sources are routine in production).
    top_k:
        Per-field cap on features kept per user (the paper's 512/128).  May
        be a single int or a per-field mapping.
    half_life_days:
        Exponential decay half-life for event weights; ``None`` disables
        recency weighting.
    """

    def __init__(self, schema: FieldSchema, top_k: int | Mapping[str, int] = 512,
                 half_life_days: float | None = None) -> None:
        self.schema = schema
        if isinstance(top_k, int):
            if top_k <= 0:
                raise ValueError(f"top_k must be positive: {top_k}")
            self._top_k = {spec.name: top_k for spec in schema}
        else:
            self._top_k = {spec.name: int(top_k.get(spec.name, 512))
                           for spec in schema}
            if any(v <= 0 for v in self._top_k.values()):
                raise ValueError(f"top_k values must be positive: {self._top_k}")
        if half_life_days is not None and half_life_days <= 0:
            raise ValueError(f"half_life_days must be positive: {half_life_days}")
        self.half_life_days = half_life_days
        # accumulated weights: field -> {(user, feature): weight}
        self._weights: dict[str, dict[tuple[int, int], float]] = {
            spec.name: defaultdict(float) for spec in schema}
        self._max_user = -1
        self._latest_timestamp = 0.0
        self.events_processed = 0
        self.events_skipped = 0

    def ingest(self, events: Iterable[LogEvent]) -> "ProfileBuilder":
        """Accumulate a batch of events (repeatable; order-independent)."""
        for event in events:
            field_weights = self._weights.get(event.source)
            if field_weights is None:
                self.events_skipped += 1
                continue
            vocab = self.schema[event.source].vocab_size
            if not 0 <= event.feature_id < vocab:
                self.events_skipped += 1
                continue
            field_weights[(event.user_id, event.feature_id)] += event.weight
            self._max_user = max(self._max_user, event.user_id)
            self._latest_timestamp = max(self._latest_timestamp, event.timestamp)
            self.events_processed += 1
        return self

    def ingest_with_decay(self, events: Iterable[LogEvent]) -> "ProfileBuilder":
        """Like :meth:`ingest` but applies the recency half-life per event.

        Weights decay relative to the newest timestamp seen *within the
        batch* (the offline module processes bounded log windows).
        """
        if self.half_life_days is None:
            return self.ingest(events)
        batch = list(events)
        if not batch:
            return self
        newest = max(e.timestamp for e in batch)
        decay_rate = np.log(2.0) / (self.half_life_days * 86_400.0)
        reweighted = [
            LogEvent(e.timestamp, e.user_id, e.source, e.feature_id,
                     e.weight * float(np.exp(-decay_rate
                                             * (newest - e.timestamp))))
            for e in batch
        ]
        return self.ingest(reweighted)

    def build(self, n_users: int | None = None) -> MultiFieldDataset:
        """Materialise profiles: per user/field keep the top-K by weight."""
        n_users = (self._max_user + 1) if n_users is None else n_users
        if n_users <= 0:
            raise ValueError("no users observed; ingest events first")
        blocks: dict[str, CSRMatrix] = {}
        for spec in self.schema:
            per_user: dict[int, list[tuple[float, int]]] = defaultdict(list)
            for (user, feature), weight in self._weights[spec.name].items():
                if user < n_users:
                    per_user[user].append((weight, feature))
            rows: list[list[int]] = []
            weights: list[list[float]] = []
            k = self._top_k[spec.name]
            for user in range(n_users):
                entries = per_user.get(user, [])
                entries.sort(key=lambda pair: (-pair[0], pair[1]))
                kept = entries[:k]
                rows.append([feature for __, feature in kept])
                weights.append([weight for weight, __ in kept])
            blocks[spec.name] = CSRMatrix.from_rows(rows, spec.vocab_size,
                                                    weights)
        return MultiFieldDataset(self.schema, blocks)
