"""Synthetic server-log streams.

The paper's data-construction module consumes raw behaviour logs from several
products (Kandian, QQ Browser, …) and projects each source into a feature
field.  Real logs are unavailable, so :class:`SyntheticLogStream` emits
timestamped interaction events from the same latent-topic ground truth as the
dataset generators: users interact with features of their topic/persona, with
event counts following each user's activity level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.data.synthetic import SyntheticDataset
from repro.utils.rng import new_rng

__all__ = ["LogEvent", "SyntheticLogStream"]


@dataclass(frozen=True)
class LogEvent:
    """One interaction record, as a log line would carry it."""

    timestamp: float
    user_id: int
    source: str          # which product/log produced it → becomes the field
    feature_id: int      # e.g. a channel id or content tag
    weight: float = 1.0  # engagement strength (dwell time, clicks, …)


class SyntheticLogStream:
    """Replays a :class:`SyntheticDataset` as a stream of log events.

    Every (user, field, feature, count) cell of the dataset becomes ``count``
    events with jittered timestamps spread over ``duration_days``, simulating
    the continuous collection the offline module batches up.

    Parameters
    ----------
    synthetic:
        Ground-truth dataset whose profiles the stream should reproduce.
    duration_days:
        Span of the simulated collection window.
    weight_noise:
        Log-normal sigma applied to event weights (engagement varies).
    """

    def __init__(self, synthetic: SyntheticDataset, duration_days: float = 7.0,
                 weight_noise: float = 0.25,
                 seed: int | np.random.Generator | None = 0) -> None:
        if duration_days <= 0:
            raise ValueError(f"duration_days must be positive: {duration_days}")
        self.synthetic = synthetic
        self.duration_days = duration_days
        self.weight_noise = weight_noise
        self._rng = new_rng(seed)

    def __iter__(self) -> Iterator[LogEvent]:
        return self.events()

    def events(self) -> Iterator[LogEvent]:
        """Yield events in timestamp order."""
        dataset = self.synthetic.dataset
        records: list[tuple[float, int, str, int, float]] = []
        rng = self._rng
        horizon = self.duration_days * 86_400.0
        for field in dataset.field_names:
            csr = dataset.field(field)
            for user in range(dataset.n_users):
                ids, weights = csr.row(user)
                for feature, count in zip(ids, weights):
                    for __ in range(int(max(count, 1))):
                        stamp = float(rng.uniform(0.0, horizon))
                        weight = float(rng.lognormal(0.0, self.weight_noise)) \
                            if self.weight_noise > 0 else 1.0
                        records.append((stamp, user, field, int(feature), weight))
        records.sort(key=lambda r: r[0])
        for stamp, user, field, feature, weight in records:
            yield LogEvent(timestamp=stamp, user_id=user, source=field,
                           feature_id=feature, weight=weight)

    def event_count(self) -> int:
        """Total number of events the stream will emit."""
        dataset = self.synthetic.dataset
        total = 0
        for field in dataset.field_names:
            csr = dataset.field(field)
            weights = csr.weights if csr.weights is not None \
                else np.ones(csr.nnz)
            total += int(np.maximum(weights, 1).sum())
        return total
