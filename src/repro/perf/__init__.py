"""Performance layer: prefetching batch pipeline + benchmark harness.

``repro.perf`` holds the machinery that keeps the hot path honest:

* :mod:`repro.perf.pipeline` — batch loaders for the trainer.
  :class:`SyncLoader` reproduces the classic in-loop ``dataset.batch`` call;
  :class:`PrefetchLoader` prepares the next batch (CSR slicing, segment and
  candidate caches) on a background thread while the current batch computes —
  NumPy releases the GIL inside matmul, so the overlap is real.  Both yield
  **bit-identical** batches in the same order.
* :mod:`repro.perf.bench` — the ``python -m repro bench`` microbenchmark
  runner producing ``benchmarks/results/BENCH_*.json`` trajectories
  (embedding_bag fwd/bwd, sampled-softmax fwd/bwd, optimizer step, and
  end-to-end epoch throughput fused+prefetch vs the unfused reference).
* :mod:`repro.perf.bench_serving` — the ``--suite serving`` stages: batched
  store/proxy/LSH lookups vs their scalar loops, inference-mode encoder
  forward, and mmap vs eager snapshot cold starts.
"""

from repro.perf.bench import run_bench
from repro.perf.pipeline import BatchLoader, PrefetchLoader, SyncLoader

__all__ = ["BatchLoader", "SyncLoader", "PrefetchLoader", "run_bench"]
