"""Batch loaders: synchronous reference and background-thread prefetching.

The trainer's inner loop is *prepare batch → forward → backward → step*.
Batch preparation is pure NumPy bookkeeping (CSR row gathers, segment arrays,
candidate sets) and the compute stages spend most of their time inside BLAS
calls that release the GIL, so preparing batch ``b+1`` on a worker thread
while batch ``b`` computes overlaps almost for free.

Determinism contract: a loader receives the *already shuffled* epoch order
and must yield batches with exactly the arrays ``dataset.batch(order[a:b])``
would produce, in the same order, touching no RNG.  This keeps training
bit-exact — same shuffle order, same reparametrisation noise, same
checkpoint/resume equality — whichever loader is plugged in
(:meth:`repro.core.trainer.Trainer.fit` accepts ``loader=``).

:class:`PrefetchLoader` additionally replaces the per-batch ``take_rows``
gather with one per-epoch reorder (``dataset.subset(order)``) followed by
zero-copy contiguous :meth:`~repro.data.sparse.CSRMatrix.row_range` slices,
and warms each :class:`~repro.data.dataset.FieldBatch`'s deterministic caches
(segment ids, unique candidates) off the critical path.
"""

from __future__ import annotations

import queue
import threading
from typing import Iterator

import numpy as np

from repro.data.dataset import FieldBatch, MultiFieldDataset, UserBatch
from repro.obs import runtime as obs

__all__ = ["BatchLoader", "SyncLoader", "PrefetchLoader", "n_batches"]


def n_batches(n: int, batch_size: int, drop_last: bool = False) -> int:
    """Batches in an epoch of ``n`` users: ceil, or floor with ``drop_last``."""
    if n <= 0:
        return 0
    return n // batch_size if drop_last else -(-n // batch_size)


class BatchLoader:
    """Loader protocol: generate an epoch's batches for a given order.

    ``drop_last`` (a constructor option on the concrete loaders) skips the
    ragged final batch of each epoch so every batch has exactly
    ``batch_size`` users — useful under static-graph capture, where a
    uniform batch shape means one tape and zero dynamic fallbacks.  The
    trainer reads the attribute to size its epoch loop.
    """

    drop_last = False

    def epoch(self, dataset: MultiFieldDataset, order: np.ndarray,
              batch_size: int, first_batch: int = 0,
              ) -> Iterator[UserBatch]:  # pragma: no cover - protocol
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SyncLoader(BatchLoader):
    """The classic in-loop batcher: materialise each batch on demand."""

    def __init__(self, drop_last: bool = False) -> None:
        self.drop_last = bool(drop_last)

    def epoch(self, dataset: MultiFieldDataset, order: np.ndarray,
              batch_size: int, first_batch: int = 0) -> Iterator[UserBatch]:
        order = np.asarray(order, dtype=np.int64)
        total = n_batches(order.size, batch_size, self.drop_last)
        for b in range(first_batch, total):
            yield dataset.batch(order[b * batch_size:(b + 1) * batch_size])


def _epoch_batches(dataset: MultiFieldDataset, order: np.ndarray,
                   batch_size: int, first_batch: int,
                   drop_last: bool = False) -> Iterator[UserBatch]:
    """Produce the epoch's batches from one up-front reorder.

    ``dataset.subset(order)`` pays the row gather once; every batch is then a
    contiguous zero-copy ``row_range`` slice of the reordered CSR blocks —
    value-identical to ``dataset.batch(order[a:b])``.
    """
    total = n_batches(order.size, batch_size, drop_last)
    if total <= first_batch:
        return
    reordered = dataset.subset(order)
    blocks = {name: reordered.field(name) for name in reordered.field_names}
    for b in range(first_batch, total):
        start = b * batch_size
        stop = min(start + batch_size, order.size)
        fields = {}
        for name, csr in blocks.items():
            offsets, indices, weights = csr.row_range(start, stop)
            fields[name] = FieldBatch(
                indices=indices, offsets=offsets, weights=weights,
                vocab_size=csr.n_cols).warm_caches()
        yield UserBatch(user_ids=order[start:stop], fields=fields)


class PrefetchLoader(BatchLoader):
    """Prepare batches on a daemon worker thread, ``prefetch`` deep.

    Parameters
    ----------
    prefetch:
        Queue depth: how many prepared batches may wait ahead of the
        consumer.  2 is enough to hide preparation behind compute; larger
        values only add memory.
    drop_last:
        Skip the ragged final batch of each epoch (see :class:`BatchLoader`).
    """

    _POLL_SECONDS = 0.05

    def __init__(self, prefetch: int = 2, drop_last: bool = False) -> None:
        if prefetch < 1:
            raise ValueError(f"prefetch depth must be >= 1: {prefetch}")
        self.prefetch = prefetch
        self.drop_last = bool(drop_last)

    def __repr__(self) -> str:
        return f"PrefetchLoader(prefetch={self.prefetch})"

    def epoch(self, dataset: MultiFieldDataset, order: np.ndarray,
              batch_size: int, first_batch: int = 0) -> Iterator[UserBatch]:
        order = np.asarray(order, dtype=np.int64)
        out: queue.Queue = queue.Queue(maxsize=self.prefetch)
        stop = threading.Event()

        def produce() -> None:
            try:
                for batch in _epoch_batches(dataset, order, batch_size,
                                            first_batch, self.drop_last):
                    if not self._put(out, stop, ("ok", batch)):
                        return
                self._put(out, stop, ("done", None))
            except BaseException as exc:  # surfaced on the consumer side
                self._put(out, stop, ("err", exc))

        worker = threading.Thread(target=produce, name="repro-prefetch",
                                  daemon=True)
        worker.start()
        obs.count("prefetch.epochs")
        try:
            while True:
                kind, payload = out.get()
                if kind == "done":
                    return
                if kind == "err":
                    raise payload
                obs.count("prefetch.batches")
                yield payload
        finally:
            # Runs on normal exhaustion, on error, and on generator.close()
            # (trainer break / early stopping): unblock and retire the worker.
            stop.set()
            while True:
                try:
                    out.get_nowait()
                except queue.Empty:
                    break
            worker.join(timeout=5.0)

    def _put(self, out: queue.Queue, stop: threading.Event, item) -> bool:
        """Enqueue ``item`` unless the consumer went away; False to abort."""
        while not stop.is_set():
            try:
                out.put(item, timeout=self._POLL_SECONDS)
                return True
            except queue.Full:
                continue
        return False
