"""Microbenchmark runner: ``python -m repro bench``.

Times the hot-path operations the perf layer optimizes — embedding-bag
forward/backward, the fused sampled-softmax kernel forward/backward (against
its unfused reference), the row-sparse optimizer step — plus end-to-end epoch
throughput on the ``make_kd_like`` preset: fused+prefetch vs unfused+sync,
and static-graph capture (float64 parity + float32 mode) vs the dynamic path.

Results are written as JSON (``benchmarks/results/BENCH_PR8.json`` by
default) with one record per op: ``{"op", "p50_ms", "p95_ms"}`` for micro
ops and ``{"op", "users_per_sec"}`` for the epoch runs, so every future PR
has a trajectory to compare against (``scripts/bench_check.py`` guards the
fused/unfused and capture speedup ratios in CI).
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from typing import Callable

import numpy as np

from repro.nn import Adam, Parameter, Tensor, functional as F
from repro.obs import runtime as obs
from repro.utils.rng import new_rng

__all__ = ["run_bench", "DEFAULT_OUTPUT", "SERVING_OUTPUT", "SHARDED_OUTPUT",
           "ANN_OUTPUT"]

DEFAULT_OUTPUT = Path("benchmarks/results/BENCH_PR8.json")
SERVING_OUTPUT = Path("benchmarks/results/BENCH_PR5.json")
SHARDED_OUTPUT = Path("benchmarks/results/BENCH_PR9.json")
ANN_OUTPUT = Path("benchmarks/results/BENCH_PR10.json")


def _time_op(fn: Callable[[], object], repeats: int,
             warmup: int = 2) -> dict[str, float]:
    """p50/p95 wall-clock milliseconds of ``fn`` over ``repeats`` runs."""
    for _ in range(warmup):
        fn()
    times = np.empty(repeats)
    for i in range(repeats):
        t0 = time.perf_counter()
        fn()
        times[i] = (time.perf_counter() - t0) * 1e3
    return {"p50_ms": float(np.percentile(times, 50)),
            "p95_ms": float(np.percentile(times, 95))}


def _bag_inputs(rng: np.random.Generator, n_rows: int, dim: int,
                n_users: int, per_user: int):
    weight = Parameter(rng.normal(0.0, 0.01, size=(n_rows, dim)), sparse=True)
    counts = rng.integers(per_user // 2, per_user * 2, size=n_users)
    indices = rng.integers(0, n_rows, size=int(counts.sum()))
    offsets = np.zeros(n_users + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return weight, indices, offsets


def bench_embedding_bag(rng: np.random.Generator, repeats: int,
                        ) -> list[dict]:
    weight, indices, offsets = _bag_inputs(rng, n_rows=20_000, dim=128,
                                           n_users=256, per_user=40)

    def fwd():
        return F.embedding_bag(weight, indices, offsets)

    def fwd_bwd():
        weight.zero_grad()
        F.embedding_bag(weight, indices, offsets).sum().backward()

    return [{"op": "embedding_bag_fwd", **_time_op(fwd, repeats)},
            {"op": "embedding_bag_fwd_bwd", **_time_op(fwd_bwd, repeats)}]


def bench_sampled_softmax(rng: np.random.Generator, repeats: int,
                          ) -> list[dict]:
    n_users, dim, n_cand = 256, 128, 2000
    h_data = rng.normal(size=(n_users, dim))
    weight = Parameter(rng.normal(0.0, 0.01, size=(20_000, dim)), sparse=True)
    bias = Parameter(np.zeros(20_000), sparse=True)
    cand = np.sort(rng.choice(20_000, size=n_cand, replace=False))
    targets = (rng.random((n_users, n_cand)) < 0.02).astype(np.float64)
    scale = 1.0 / n_users

    def zero():
        weight.zero_grad()
        bias.zero_grad()

    def fused_fwd():
        h = Tensor(h_data)
        return F.sampled_softmax_nll(h, weight, bias, cand, targets,
                                     scale=scale)

    def fused_fwd_bwd():
        zero()
        h = Tensor(h_data, requires_grad=True)
        F.sampled_softmax_nll(h, weight, bias, cand, targets,
                              scale=scale).backward()

    def unfused_fwd_bwd():
        zero()
        h = Tensor(h_data, requires_grad=True)
        logits = h @ F.rows(weight, cand).T + F.take(bias, cand)
        nll = -(Tensor(targets) * F.log_softmax(logits, axis=-1)).sum() * scale
        nll.backward()

    return [
        {"op": "sampled_softmax_fused_fwd", **_time_op(fused_fwd, repeats)},
        {"op": "sampled_softmax_fused_fwd_bwd",
         **_time_op(fused_fwd_bwd, repeats)},
        {"op": "sampled_softmax_unfused_fwd_bwd",
         **_time_op(unfused_fwd_bwd, repeats)},
    ]


def bench_optimizer_step(rng: np.random.Generator, repeats: int,
                         ) -> list[dict]:
    dim = 128
    weight = Parameter(rng.normal(0.0, 0.01, size=(20_000, dim)), sparse=True)
    dense = Parameter(rng.normal(size=(dim, dim)))
    opt = Adam([weight, dense], lr=1e-3)
    touched = rng.integers(0, 20_000, size=8000)  # duplicate-heavy
    grad_rows = rng.normal(size=(touched.size, dim))
    dense_grad = rng.normal(size=(dim, dim))

    def step():
        opt.zero_grad()
        weight.add_sparse_grad(touched, grad_rows)
        dense.grad = dense_grad
        opt.step()

    return [{"op": "adam_sparse_step", **_time_op(step, repeats)}]


def bench_epoch_throughput(n_users: int, seed: int, epochs: int,
                           ) -> list[dict]:
    """End-to-end training throughput: fused+prefetch vs unfused+sync."""
    from repro.core import FVAE, FVAEConfig
    from repro.data.loaders import make_kd_like
    from repro.perf.pipeline import PrefetchLoader

    synthetic = make_kd_like(n_users=n_users, seed=seed)
    results = []
    rates = {}
    for label, fused, loader in (
            ("epoch_unfused_sync", False, None),
            ("epoch_fused_prefetch", True, PrefetchLoader())):
        config = FVAEConfig(latent_dim=64, encoder_hidden=[256],
                            decoder_hidden=[256], seed=seed, fused=fused)
        model = FVAE(synthetic.dataset.schema, config)
        kwargs = {"loader": loader} if loader is not None else {}
        model.fit(synthetic.dataset, epochs=epochs, batch_size=256,
                  lr=1e-3, **kwargs)
        rate = model.history.throughput
        rates[label] = rate
        results.append({"op": label, "users_per_sec": float(rate),
                        "n_users": n_users, "epochs": epochs})
    speedup = rates["epoch_fused_prefetch"] / rates["epoch_unfused_sync"]
    results.append({"op": "epoch_speedup", "ratio": float(speedup)})
    return results


def bench_capture_throughput(n_users: int, seed: int, epochs: int,
                             ) -> list[dict]:
    """Static-graph capture vs the dynamic path, fused+prefetch throughout.

    Three runs of the same model/data/loader configuration:

    * ``epoch_dynamic_f64`` — the PR-3 baseline (dynamic autograd, float64);
    * ``epoch_captured_f64`` — same arithmetic through the static tape; its
      ratio (``capture_speedup_exact``) is the *parity guard*: the bit-exact
      replay must not cost throughput;
    * ``epoch_captured_f32`` — the float32-throughout mode riding the same
      tape; its ratio over the float64 baseline is the headline
      ``capture_speedup`` that ``scripts/bench_check.py`` gates at >= 1.5x.
    """
    from repro.core import FVAE, FVAEConfig
    from repro.data.loaders import make_kd_like
    from repro.perf.pipeline import PrefetchLoader

    synthetic = make_kd_like(n_users=n_users, seed=seed)
    config = FVAEConfig(latent_dim=64, encoder_hidden=[256],
                        decoder_hidden=[256], seed=seed, fused=True)

    def run(label: str, **fit_kwargs) -> dict:
        model = FVAE(synthetic.dataset.schema, config)
        model.fit(synthetic.dataset, epochs=epochs, batch_size=256, lr=1e-3,
                  loader=PrefetchLoader(), **fit_kwargs)
        return {"op": label, "users_per_sec": float(model.history.throughput),
                "n_users": n_users, "epochs": epochs}

    dyn = run("epoch_dynamic_f64")
    cap64 = run("epoch_captured_f64", capture=True)
    cap32 = run("epoch_captured_f32", capture=True, precision="float32")
    return [
        dyn, cap64, cap32,
        {"op": "capture_speedup_exact",
         "ratio": float(cap64["users_per_sec"] / dyn["users_per_sec"]),
         "note": "captured float64 vs dynamic float64 (bit-exact replay "
                 "parity guard)"},
        {"op": "capture_speedup",
         "ratio": float(cap32["users_per_sec"] / dyn["users_per_sec"]),
         "note": "captured float32-throughout vs the dynamic float64 "
                 "fused+prefetch baseline (headline gate, >= 1.5x)"},
    ]


def run_bench(quick: bool = False, out: str | Path | None = None,
              users: int | None = None, seed: int = 0,
              suite: str = "training") -> dict:
    """Run every benchmark stage and write the JSON trajectory to ``out``.

    ``suite="training"`` (default) runs the PR-3 hot-path stages plus the
    PR-8 capture stage and writes ``BENCH_PR8.json``; ``suite="serving"``
    runs the serving fast-path stages (:mod:`repro.perf.bench_serving`) and
    writes ``BENCH_PR5.json``; ``suite="sharded"`` runs the multi-process
    sharded parameter-server scaling study (:mod:`repro.perf.bench_sharded`)
    and writes ``BENCH_PR9.json``; ``suite="ann"`` runs the quantization +
    ANN-index study (:mod:`repro.perf.bench_ann` — memory reduction,
    recall@k-vs-QPS curve, IVF-vs-LSH at matched candidate budget) and
    writes ``BENCH_PR10.json``.
    """
    if suite not in ("training", "serving", "sharded", "ann"):
        raise ValueError(f"unknown bench suite '{suite}'")
    if out is None:
        out = {"training": DEFAULT_OUTPUT, "serving": SERVING_OUTPUT,
               "sharded": SHARDED_OUTPUT, "ann": ANN_OUTPUT}[suite]
    rng = new_rng(seed)
    repeats = 10 if quick else 50
    n_users = users if users is not None else (1500 if quick else 6000)
    epochs = 1 if quick else 2

    results: list[dict] = []
    if suite == "training":
        stages = [
            ("embedding_bag", lambda: bench_embedding_bag(rng, repeats)),
            ("sampled_softmax", lambda: bench_sampled_softmax(rng, repeats)),
            ("optimizer_step", lambda: bench_optimizer_step(rng, repeats)),
            ("epoch_throughput",
             lambda: bench_epoch_throughput(n_users, seed, epochs)),
            ("capture_throughput",
             lambda: bench_capture_throughput(n_users, seed, epochs)),
        ]
    elif suite == "serving":
        from repro.perf.bench_serving import serving_stages
        stages = serving_stages(rng, quick, seed,
                                repeats=3 if quick else 10)
    elif suite == "ann":
        from repro.perf.bench_ann import ann_stages
        stages = ann_stages(rng, quick, seed, repeats=3 if quick else 10)
    else:
        from repro.perf.bench_sharded import sharded_stages
        stages = sharded_stages(rng, quick, seed)
    for name, stage in stages:
        with obs.span(f"bench.{name}"):
            results.extend(stage())
        obs.count("bench.stages")

    report = {
        "meta": {
            "bench": {"training": "PR8", "serving": "PR5",
                      "sharded": "PR9", "ann": "PR10"}[suite],
            "suite": suite,
            "quick": quick,
            "users": n_users,
            "epochs": epochs,
            "seed": seed,
            "repeats": repeats,
            # Honest-numbers convention (docs/PERFORMANCE.md): wall-clock
            # multi-process scaling is only meaningful when the machine has
            # the cores, so every report records what it ran on.
            "cores": os.cpu_count(),
            "numpy": np.__version__,
            "python": platform.python_version(),
        },
        "results": results,
    }
    out = Path(out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")
    return report


def render_report(report: dict) -> str:
    """Human-readable table of a bench report."""
    lines = [f"benchmark ({'quick' if report['meta']['quick'] else 'full'}, "
             f"numpy {report['meta']['numpy']})"]
    for record in report["results"]:
        op = record["op"]
        if "recall" in record and "qps" in record:
            lines.append(f"  {op:<32} recall@{record.get('k', '?')}="
                         f"{record['recall']:.3f} "
                         f"qps={record['qps']:10.0f} "
                         f"cand={record.get('avg_candidates', 0):8.0f}")
        elif "recall" in record:
            lines.append(f"  {op:<32} recall@{record.get('k', '?')}="
                         f"{record['recall']:.3f}")
        elif "p50_ms" in record:
            lines.append(f"  {op:<32} p50={record['p50_ms']:8.3f}ms "
                         f"p95={record['p95_ms']:8.3f}ms")
        elif "users_per_sec" in record:
            lines.append(f"  {op:<32} {record['users_per_sec']:10.0f} users/s")
        elif "ratio" in record:
            lines.append(f"  {op:<32} {record['ratio']:10.2f}x")
    return "\n".join(lines)
