"""Measured multi-process scaling of the sharded parameter server (Fig 10).

Runs the *real* :class:`~repro.distributed.sharded.ShardedTrainer` at several
worker counts on the same seeded workload and reports, per cluster size:

* **wall-clock** epoch time — what this machine actually delivered.  On a
  box with fewer cores than workers this cannot scale (the workers time-slice
  one core), so it is recorded but only gated when ``meta.cores`` covers the
  largest cluster (see ``scripts/bench_check.py``).
* **critical-path** time — ``serial + max(worker compute) + max(shard
  apply)`` summed over steps, from the driver's per-step timings.  This is
  the synchronous-step wall-clock a machine with enough cores would see
  (identical in shape to what :class:`DistributedTrainingSimulator`
  reconstructs from shard measurements), and is the portable scaling gate.

The simulator's Fig 10 predictions for the same worker counts are written
next to the measurements, so the analytic curve and the running system can
be compared in one report (``benchmarks/results/BENCH_PR9.json``).
"""

from __future__ import annotations

import numpy as np

__all__ = ["bench_sharded_scaling", "sharded_stages"]


def _fresh_model(dataset, seed: int):
    from repro.core import FVAE, FVAEConfig

    config = FVAEConfig(latent_dim=16, encoder_hidden=[32],
                        decoder_hidden=[32], input_dropout=0.0,
                        feature_dropout=0.0, seed=seed)
    model = FVAE(dataset.schema, config)
    model.initialize_from_dataset(dataset)
    return model


def bench_sharded_scaling(seed: int, n_users: int, epochs: int,
                          batch_size: int,
                          worker_counts: tuple[int, ...] = (1, 2, 4),
                          ) -> list[dict]:
    """Measured sharded-PS scaling plus the simulator's predicted curve."""
    from repro.data import make_kd_like
    from repro.distributed import DistributedTrainingSimulator
    from repro.distributed.sharded import ShardedTrainer

    dataset = make_kd_like(n_users=n_users, seed=seed).dataset
    records: list[dict] = []
    wall: dict[int, float] = {}
    critical: dict[int, float] = {}
    for w in worker_counts:
        model = _fresh_model(dataset, seed)
        trainer = ShardedTrainer(model, n_workers=w, lr=1e-3)
        history = trainer.fit(dataset, epochs=epochs, batch_size=batch_size,
                              rng=seed)
        wall[w] = sum(r.epoch_time for r in history.epochs)
        critical[w] = sum(t["serial"] + t["compute_max"] + t["apply_max"]
                          for t in trainer.step_timings)
        records.append({
            "op": f"sharded_epoch_w{w}",
            "n_workers": w,
            "wall_seconds": wall[w],
            "critical_path_seconds": critical[w],
            "users_per_sec": n_users * epochs / wall[w] if wall[w] > 0
            else float("inf"),
        })

    base = worker_counts[0]
    for w in worker_counts[1:]:
        records.append({"op": f"sharded_wall_speedup_w{w}",
                        "ratio": wall[base] / wall[w] if wall[w] > 0
                        else float("inf")})
        records.append({"op": f"sharded_critical_path_speedup_w{w}",
                        "ratio": critical[base] / critical[w]
                        if critical[w] > 0 else float("inf")})

    simulator = DistributedTrainingSimulator(
        lambda: _fresh_model(dataset, seed), dataset)
    curve = simulator.speedup_curve(list(worker_counts), epochs=1,
                                    batch_size=batch_size, rng=seed)
    for w in worker_counts:
        records.append({"op": f"simulated_speedup_w{w}",
                        "ratio": float(curve[w])})
    return records


def sharded_stages(rng: np.random.Generator, quick: bool,
                   seed: int) -> list[tuple[str, object]]:
    """Stage list for ``run_bench(suite="sharded")``."""
    del rng  # the stage seeds its own dataset/model RNG for reproducibility
    # Large batches on purpose: the per-step worker cost has a fixed term
    # proportional to the candidate-set size (capped by the vocab), and the
    # divisible term must dominate for parallelism to pay.
    n_users = 1024 if quick else 3072
    epochs = 1 if quick else 2
    batch_size = 512
    return [
        ("sharded_scaling",
         lambda: bench_sharded_scaling(seed, n_users, epochs, batch_size)),
    ]
