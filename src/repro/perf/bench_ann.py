"""ANN + quantization benchmarks: ``python -m repro bench --suite ann``.

Measures the two claims the quantized serving tier makes (ROADMAP item 1,
after FastVAE):

* **memory** — a :class:`~repro.lookalike.quant.QuantizedEmbeddingStore`
  holds the same logical matrix in a fraction of the float64 bytes
  (``ann_int8_memory_reduction`` / ``ann_pq_memory_reduction``, gated at
  4x / 8x) while keeping exact-scan recall@100 against the float64 ground
  truth (``ann_*_recall_at_100``, int8 gated at 0.95);
* **retrieval** — the recall@k-vs-QPS tradeoff curve: exact scan, LSH at
  several table/bit settings, IVF over an ``nprobe`` sweep (exact and ADC
  rescoring), one record per operating point (``ann_curve_*``), plus the
  matched-candidate-budget comparison ``ann_ivf_vs_lsh_recall`` (IVF must
  reach at-least-LSH recall when both examine a similar number of
  candidates; gated at 1.0).

Also records the quantized-snapshot cold start (mmap vs eager, the PR-5
pattern on uint8 codes) and the codebook-sampler ablation (cell coverage of
kept negatives vs the uniform sampler — the FastVAE training-side idea,
off by default in training).

Recall and memory ratios are deterministic given the seed and workload
size; QPS is machine-dependent and recorded for the curve but never gated.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

__all__ = ["ann_stages"]


def _time_op(fn, repeats, warmup=2):
    from repro.perf.bench import _time_op as timer
    return timer(fn, repeats, warmup=warmup)


def _clustered(rng: np.random.Generator, n: int, dim: int,
               n_clusters: int = 32, spread: float = 0.35) -> np.ndarray:
    """Gaussian-mixture embeddings: the shape real user embeddings take."""
    centers = rng.normal(size=(n_clusters, dim))
    assign = rng.integers(0, n_clusters, size=n)
    return centers[assign] + rng.normal(scale=spread, size=(n, dim))


def _recall(approx: list[np.ndarray], exact: np.ndarray) -> float:
    hits = sum(np.isin(exact[q], approx[q]).sum()
               for q in range(exact.shape[0]))
    return float(hits / exact.size)


def bench_quant_memory(rng: np.random.Generator, n: int, dim: int,
                       k: int, n_queries: int) -> list[dict]:
    """Memory reduction + exact-scan recall of the quantized stores."""
    from repro.lookalike import QuantizedEmbeddingStore, exact_top_k

    matrix = _clustered(rng, n, dim)
    queries = _clustered(rng, n_queries, dim)
    float_bytes = matrix.nbytes
    truth = exact_top_k(matrix, queries, k)

    # The gated PQ configuration is residual-coded (coarse centroid + PQ of
    # the residual): one extra byte per vector buys back most of the recall
    # plain PQ gives up.  The plain (non-residual) configuration — the one
    # IVF ADC rescoring uses — is recorded too, ungated, for honesty.
    configs = [
        ("int8", {}),
        ("pq", {"n_subvectors": 32, "n_coarse": 64}),
        ("pq_plain", {"n_subvectors": 8}),
    ]
    results: list[dict] = []
    for label, kwargs in configs:
        mode = "pq" if label.startswith("pq") else label
        store = QuantizedEmbeddingStore(dim, mode=mode, seed=0, **kwargs)
        store.put_many(np.arange(n), matrix)
        reduction = float_bytes / store.nbytes
        # Recall of the exact scan over *dequantized* rows — what serving
        # ranks with once the float matrix is gone.
        approx = exact_top_k(store.as_matrix()[1], queries, k)
        recall = _recall(list(approx), truth)
        results.extend([
            {"op": f"ann_{label}_memory_reduction", "ratio": float(reduction),
             "n": n, "dim": dim, "store_bytes": int(store.nbytes),
             "float64_bytes": int(float_bytes), **kwargs},
            {"op": f"ann_{label}_recall_at_{k}", "recall": recall,
             "k": k, "n": n, "n_queries": n_queries, **kwargs},
        ])
    return results


def bench_recall_qps_curve(rng: np.random.Generator, n: int, dim: int,
                           k: int, n_queries: int, n_lists: int,
                           nprobes: tuple[int, ...],
                           repeats: int) -> list[dict]:
    """One record per operating point: recall@k, QPS, candidate budget."""
    from repro.lookalike import (IVFIndex, LSHIndex, PQQuantizer,
                                 exact_top_k)

    vectors = _clustered(rng, n, dim)
    queries = _clustered(rng, n_queries, dim)
    truth = exact_top_k(vectors, queries, k)

    def point(op: str, index, kind: str, **extra) -> dict:
        approx = index.query_batch(queries, k, fallback_to_exact=False)
        recall = _recall(approx, truth)
        timing = _time_op(
            lambda: index.query_batch(queries, k, fallback_to_exact=False),
            repeats)
        cand = index.candidates_batch(queries)
        avg_candidates = float(np.mean([c.size for c in cand]))
        return {"op": op, "index": kind, "recall": recall,
                "qps": float(n_queries / (timing["p50_ms"] / 1e3)),
                "p50_ms": timing["p50_ms"], "p95_ms": timing["p95_ms"],
                "avg_candidates": avg_candidates, "k": k, "n": n, **extra}

    results: list[dict] = []
    exact_timing = _time_op(lambda: exact_top_k(vectors, queries, k), repeats)
    results.append({
        "op": "ann_curve_exact", "index": "exact", "recall": 1.0,
        "qps": float(n_queries / (exact_timing["p50_ms"] / 1e3)),
        "p50_ms": exact_timing["p50_ms"], "p95_ms": exact_timing["p95_ms"],
        "avg_candidates": float(n), "k": k, "n": n})

    for n_tables, n_bits in ((4, 8), (8, 8), (8, 6)):
        index = LSHIndex(dim, n_tables=n_tables, n_bits=n_bits, seed=0)
        index.fit(vectors)
        results.append(point(f"ann_curve_lsh_t{n_tables}_b{n_bits}", index,
                             "lsh", n_tables=n_tables, n_bits=n_bits))

    for nprobe in nprobes:
        index = IVFIndex(dim, n_lists=n_lists, nprobe=nprobe, seed=0)
        index.fit(vectors)
        results.append(point(f"ann_curve_ivf_p{nprobe}", index, "ivf",
                             n_lists=n_lists, nprobe=nprobe))

    # ADC operating point: IVF probing + PQ-code rescoring, no float reads.
    adc = IVFIndex(dim, n_lists=n_lists, nprobe=max(nprobes), seed=0,
                   quantizer=PQQuantizer(dim, n_subvectors=8, seed=0))
    adc.fit(vectors)
    results.append(point(f"ann_curve_ivf_adc_p{max(nprobes)}", adc, "ivf_adc",
                         n_lists=n_lists, nprobe=max(nprobes)))
    return results


def bench_ivf_vs_lsh(rng: np.random.Generator, n: int, dim: int, k: int,
                     n_queries: int, n_lists: int) -> list[dict]:
    """Recall at a matched candidate budget: IVF vs LSH.

    The LSH configuration fixes the budget (its mean candidate count); IVF
    gets the ``nprobe`` whose expected cell coverage matches it.  The gate
    is the recall ratio at that equal budget — the structured coarse
    quantizer must not lose to hashing when both do the same amount of
    rescoring work.
    """
    from repro.lookalike import IVFIndex, LSHIndex, exact_top_k

    vectors = _clustered(rng, n, dim)
    queries = _clustered(rng, n_queries, dim)
    truth = exact_top_k(vectors, queries, k)

    lsh = LSHIndex(dim, n_tables=8, n_bits=8, seed=0).fit(vectors)
    lsh_cand = lsh.candidates_batch(queries)
    budget = float(np.mean([c.size for c in lsh_cand]))
    lsh_recall = _recall(lsh.query_batch(queries, k, fallback_to_exact=False),
                         truth)

    nprobe = int(np.clip(round(budget / (n / n_lists)), 1, n_lists))
    ivf = IVFIndex(dim, n_lists=n_lists, nprobe=nprobe, seed=0).fit(vectors)
    ivf_cand = ivf.candidates_batch(queries)
    ivf_budget = float(np.mean([c.size for c in ivf_cand]))
    ivf_recall = _recall(ivf.query_batch(queries, k, fallback_to_exact=False),
                         truth)

    return [{"op": "ann_ivf_vs_lsh_recall",
             "ratio": float(ivf_recall / lsh_recall) if lsh_recall else float("inf"),
             "ivf_recall": ivf_recall, "lsh_recall": lsh_recall,
             "lsh_avg_candidates": budget, "ivf_avg_candidates": ivf_budget,
             "nprobe": nprobe, "n_lists": n_lists, "k": k, "n": n}]


def bench_quant_cold_start(rng: np.random.Generator, n: int, dim: int,
                           repeats: int) -> list[dict]:
    """Quantized-snapshot load: eager deserialise vs zero-copy code mmap."""
    from repro.lookalike import QuantizedEmbeddingStore

    store = QuantizedEmbeddingStore(dim, mode="int8", seed=0)
    store.put_many(np.arange(n), rng.normal(size=(n, dim)))
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "quant_snapshot.npz"
        store.save_snapshot(path)
        eager = _time_op(lambda: QuantizedEmbeddingStore.load(path),
                         repeats, warmup=1)
        mapped = _time_op(lambda: QuantizedEmbeddingStore.load(path, mmap=True),
                          repeats, warmup=1)
    return [{"op": "quant_cold_start_eager_load", "n_keys": n, **eager},
            {"op": "quant_cold_start_mmap_load", "n_keys": n, **mapped},
            {"op": "quant_cold_start_mmap_speedup",
             "ratio": eager["p50_ms"] / mapped["p50_ms"]}]


def bench_sampler_ablation(rng: np.random.Generator, n_features: int,
                           dim: int, repeats: int) -> list[dict]:
    """Codebook vs uniform negative sampling: cell coverage of the kept set.

    Draws a skewed candidate set (popular features dominate) and measures
    how many coarse-quantizer cells the kept negatives span.  Higher
    coverage = negatives spread across embedding space instead of piling
    into the densest cluster — FastVAE's motivation for codebook sampling.
    Ablation record only; nothing is gated and training defaults are
    untouched.
    """
    from repro.sampling import CodebookSampler, UniformSampler

    embeddings = _clustered(rng, n_features, dim, n_clusters=16)
    sampler = CodebookSampler(embeddings, n_cells=16, seed=0)
    uniform = UniformSampler()
    candidates = np.arange(n_features)
    # Zipf-ish in-batch frequencies: rank r appears ~ 1/(r+1) times.
    frequencies = np.maximum(1, (n_features / (candidates + 1.0))).astype(
        np.int64)
    rate = 0.1

    def coverage(drawn: np.ndarray) -> float:
        return np.unique(sampler._cell_of[drawn]).size / sampler.n_cells

    cov = {"codebook": [], "uniform": []}
    for trial in range(10):
        trial_rng = np.random.default_rng(trial)
        cov["codebook"].append(coverage(
            sampler.sample(candidates, frequencies, rate, trial_rng)))
        cov["uniform"].append(coverage(
            uniform.sample(candidates, frequencies, rate,
                           np.random.default_rng(trial))))
    timing = _time_op(
        lambda: sampler.sample(candidates, frequencies, rate,
                               np.random.default_rng(0)), repeats)
    return [{"op": "sampler_codebook_cell_coverage",
             "value": float(np.mean(cov["codebook"])),
             "uniform_cell_coverage": float(np.mean(cov["uniform"])),
             "rate": rate, "n_features": n_features, **timing}]


def ann_stages(rng: np.random.Generator, quick: bool, seed: int,
               repeats: int) -> list[tuple[str, object]]:
    """Stage list for ``run_bench(suite="ann")``."""
    dim = 64
    k = 100
    n_memory = 8_000 if quick else 50_000
    n_curve = 2_000 if quick else 10_000
    n_queries = 50 if quick else 100
    n_lists = 32 if quick else 64
    nprobes = (1, 2, 4, 8, 16) if quick else (1, 2, 4, 8, 16, 32)
    return [
        ("quant_memory",
         lambda: bench_quant_memory(rng, n_memory, dim, k, n_queries)),
        ("recall_qps_curve",
         lambda: bench_recall_qps_curve(rng, n_curve, dim, k, n_queries,
                                        n_lists, nprobes, repeats)),
        ("ivf_vs_lsh",
         lambda: bench_ivf_vs_lsh(rng, n_curve, dim, k, n_queries, n_lists)),
        ("quant_cold_start",
         lambda: bench_quant_cold_start(rng, n_memory, dim, repeats)),
        ("sampler_ablation",
         lambda: bench_sampler_ablation(rng, 2_000 if quick else 5_000, 16,
                                        repeats)),
    ]
