"""Serving-path benchmarks: ``python -m repro bench --suite serving``.

Times every lookup-shaped operation the serving fast path vectorises,
batch vs scalar on the same data in the same process:

* columnar ``EmbeddingStore`` — ``get_many`` vs a per-key ``get`` loop;
* ``ServingProxy`` — ``get_embeddings_batch`` vs a ``get_embedding`` loop
  over 10k warm users (the CI-gated ``serving_batch_speedup`` ratio);
* ``LSHIndex`` — ``query_batch`` vs looped ``query`` (the CI-gated
  ``lsh_batch_speedup`` ratio) with batch p50/p95 latency;
* encoder forward — inference-mode raw arrays vs the eval Tensor path;
* cold start — ``EmbeddingStore.load`` of an uncompressed snapshot,
  mmap (zero-copy) vs eager.

Absolute milliseconds are machine-dependent; the speedup *ratios* are
same-machine by construction and are what ``scripts/bench_check.py`` gates.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

__all__ = ["serving_stages"]


def _time_op(fn, repeats, warmup=2):
    from repro.perf.bench import _time_op as timer
    return timer(fn, repeats, warmup=warmup)


def bench_store_lookup(rng: np.random.Generator, n_keys: int, dim: int,
                       repeats: int) -> list[dict]:
    from repro.lookalike import EmbeddingStore

    store = EmbeddingStore(dim=dim)
    keys = [f"u{i}" for i in range(n_keys)]
    store.put_many(keys, rng.normal(size=(n_keys, dim)))

    def scalar():
        for key in keys:
            store.get(key)

    def batch():
        store.get_many(keys)

    s = _time_op(scalar, repeats)
    b = _time_op(batch, repeats)
    return [{"op": "store_get_scalar_loop", "n_keys": n_keys, **s},
            {"op": "store_get_many", "n_keys": n_keys, **b},
            {"op": "store_batch_speedup",
             "ratio": s["p50_ms"] / b["p50_ms"]}]


def bench_proxy_lookup(rng: np.random.Generator, n_users: int, dim: int,
                       repeats: int) -> list[dict]:
    """The 10k-user lookup benchmark behind ``serving_batch_speedup``.

    Both proxies are warmed first, so the measured path is the steady-state
    cache-hit path — the one that carries almost all production traffic.
    """
    from repro.lookalike import EmbeddingStore, ServingProxy

    keys = [f"u{i}" for i in range(n_users)]
    matrix = rng.normal(size=(n_users, dim))

    def make_proxy():
        store = EmbeddingStore(dim=dim)
        store.put_many(keys, matrix)
        return ServingProxy(store, cache_capacity=n_users)

    scalar_proxy = make_proxy()
    batch_proxy = make_proxy()
    for key in keys:
        scalar_proxy.get_embedding(key)          # warm the scalar cache
    batch_proxy.get_embeddings_batch(keys)       # warm the batch cache

    def scalar():
        for key in keys:
            scalar_proxy.get_embedding(key)

    def batch():
        batch_proxy.get_embeddings_batch(keys)

    s = _time_op(scalar, repeats)
    b = _time_op(batch, repeats)
    qps = n_users / (b["p50_ms"] / 1e3)
    return [{"op": "proxy_get_scalar_loop", "n_users": n_users, **s},
            {"op": "proxy_get_embeddings_batch", "n_users": n_users, **b,
             "lookups_per_sec": float(qps)},
            {"op": "serving_batch_speedup",
             "ratio": s["p50_ms"] / b["p50_ms"]}]


def bench_lsh_query(rng: np.random.Generator, n_vectors: int,
                    n_queries: int, dim: int, repeats: int) -> list[dict]:
    from repro.lookalike import LSHIndex

    vectors = rng.normal(size=(n_vectors, dim))
    index = LSHIndex(dim=dim, n_tables=8, n_bits=10, seed=0).fit(vectors)
    queries = vectors[:n_queries] + rng.normal(0, 0.05,
                                               size=(n_queries, dim))
    k = 10

    def scalar():
        for q in queries:
            index.query(q, k)

    def batch():
        index.query_batch(queries, k)

    s = _time_op(scalar, repeats)
    b = _time_op(batch, repeats)
    return [{"op": "lsh_query_scalar_loop", "n_queries": n_queries, **s},
            {"op": "lsh_query_batch", "n_queries": n_queries, **b},
            {"op": "lsh_batch_speedup",
             "ratio": s["p50_ms"] / b["p50_ms"]}]


def bench_encoder_inference(seed: int, n_users: int,
                            repeats: int) -> list[dict]:
    """Eval Tensor forward vs the inference-mode raw-array forward.

    Measured at two shapes: the micro-batch the request batcher actually
    flushes (64 users — where Tensor wrapping and per-op allocation are a
    visible fraction of the forward) and a bulk batch (512 users — where
    matmuls dominate and the two paths converge).  The primary
    ``encoder_inference_speedup`` ratio is the micro-batch one because that
    is the serving shape.
    """
    from repro.core import FVAE, FVAEConfig
    from repro.data import make_kd_like

    data = make_kd_like(n_users=n_users, seed=seed)
    config = FVAEConfig(latent_dim=64, encoder_hidden=[256],
                        decoder_hidden=[256], seed=seed)
    model = FVAE(data.dataset.schema, config)
    model.fit(data.dataset, epochs=1, batch_size=512)

    results: list[dict] = []
    ratios: dict[int, float] = {}
    for batch_size in (64, 512):
        batch = data.dataset.batch(np.arange(min(batch_size, n_users)))

        def tensor_fwd():
            model.encode_batch(batch, inference=False)

        def array_fwd():
            model.encode_batch(batch, inference=True)

        t = _time_op(tensor_fwd, repeats)
        a = _time_op(array_fwd, repeats)
        ratios[batch_size] = t["p50_ms"] / a["p50_ms"]
        results.extend([
            {"op": f"encoder_eval_tensor_fwd_b{batch_size}", **t},
            {"op": f"encoder_inference_fwd_b{batch_size}", **a},
        ])
    results.append({"op": "encoder_inference_speedup",
                    "ratio": ratios[64], "batch_size": 64})
    results.append({"op": "encoder_inference_bulk_speedup",
                    "ratio": ratios[512], "batch_size": 512})
    return results


def bench_cold_start(rng: np.random.Generator, n_keys: int, dim: int,
                     repeats: int) -> list[dict]:
    """Snapshot load time: eager deserialise vs zero-copy mmap adoption."""
    from repro.lookalike import EmbeddingStore

    store = EmbeddingStore(dim=dim)
    keys = [f"u{i}" for i in range(n_keys)]
    store.put_many(keys, rng.normal(size=(n_keys, dim)))
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "snapshot.npz"
        store.save_snapshot(path)

        eager = _time_op(lambda: EmbeddingStore.load(path), repeats,
                         warmup=1)
        mapped = _time_op(lambda: EmbeddingStore.load(path, mmap=True),
                          repeats, warmup=1)
    return [{"op": "cold_start_eager_load", "n_keys": n_keys, **eager},
            {"op": "cold_start_mmap_load", "n_keys": n_keys, **mapped},
            {"op": "cold_start_mmap_speedup",
             "ratio": eager["p50_ms"] / mapped["p50_ms"]}]


def serving_stages(rng: np.random.Generator, quick: bool, seed: int,
                   repeats: int) -> list[tuple[str, object]]:
    """Stage list for ``run_bench(suite="serving")``."""
    n_lookup = 10_000                      # the gated 10k-user benchmark
    n_vectors = 2_000 if quick else 10_000
    n_queries = 64 if quick else 256
    n_encoder_users = 1_000 if quick else 2_000
    dim = 64
    return [
        ("store_lookup",
         lambda: bench_store_lookup(rng, n_lookup, dim, repeats)),
        ("proxy_lookup",
         lambda: bench_proxy_lookup(rng, n_lookup, dim, repeats)),
        ("lsh_query",
         lambda: bench_lsh_query(rng, n_vectors, n_queries, dim, repeats)),
        ("encoder_inference",
         lambda: bench_encoder_inference(seed, n_encoder_users, repeats)),
        ("cold_start",
         lambda: bench_cold_start(rng, n_lookup, dim, repeats)),
    ]
