"""repro — reproduction of "Field-aware Variational Autoencoders for
Billion-scale User Representation Learning" (ICDE 2022).

Public API tour:

* :mod:`repro.core` — the FVAE model, config, and trainer.
* :mod:`repro.data` — field schemas, sparse multi-field datasets, synthetic
  generators, and the KD/QB/SC-like presets.
* :mod:`repro.baselines` — PCA, LDA, Item2Vec, Job2Vec, Mult-DAE, Mult-VAE,
  RecVAE.
* :mod:`repro.tasks` — reconstruction and tag-prediction evaluation.
* :mod:`repro.lookalike` — embedding store, serving, audience expansion, and
  the simulated online A/B test.
* :mod:`repro.nn` — the NumPy autograd substrate everything runs on.
* :mod:`repro.obs` — telemetry: metrics registry, span tracer, JSONL and
  Prometheus exporters (``with obs.session() as t: model.fit(...)``).
* :mod:`repro.hashing`, :mod:`repro.sampling`, :mod:`repro.metrics`,
  :mod:`repro.distributed`, :mod:`repro.viz` — supporting subsystems.

Quickstart::

    from repro import FVAE, FVAEConfig, make_sc_like, evaluate_tag_prediction

    syn = make_sc_like(n_users=4000)
    train, test = syn.dataset.split([0.8, 0.2], rng=0)
    model = FVAE(train.schema, FVAEConfig(latent_dim=64)).fit(train, epochs=20)
    print(evaluate_tag_prediction(model, test))
"""

from repro import obs
from repro.core import FVAE, FVAEConfig, Trainer
from repro.data import (FieldSchema, FieldSpec, MultiFieldDataset, get_dataset,
                        make_kd_like, make_qb_like, make_sc_like)
from repro.lookalike import LookalikeSystem, OnlineABTest
from repro.tasks import evaluate_reconstruction, evaluate_tag_prediction

__version__ = "1.0.0"

__all__ = [
    "FVAE", "FVAEConfig", "Trainer",
    "FieldSpec", "FieldSchema", "MultiFieldDataset",
    "make_sc_like", "make_kd_like", "make_qb_like", "get_dataset",
    "evaluate_reconstruction", "evaluate_tag_prediction",
    "LookalikeSystem", "OnlineABTest", "obs",
    "__version__",
]
