"""Command-line interface: ``python -m repro <command>``.

Commands mirror the deployment workflow of §IV-D at example scale:

* ``stats``        — generate a dataset preset and print its Table-I row
* ``train``        — train an FVAE on a preset and save the model archive
* ``evaluate``     — tag prediction / reconstruction with a saved model
* ``embed``        — write user embeddings from a saved model to .npz
* ``benchmark``    — quick FVAE-vs-Mult-VAE throughput comparison
* ``bench``        — hot-path microbenchmarks → benchmarks/results/BENCH_*.json
* ``lookalike``    — audience expansion over synthetic embeddings with a
  selectable index (``--index none|lsh|ivf``) and quantized store
  (``--quant none|int8|pq``); reports recall vs the exact configuration
* ``faults``       — fault-injected distributed training overhead table
* ``report``       — render a telemetry JSONL dump (``train --telemetry``)
* ``check``        — correctness verification: gradcheck coverage sweep,
  differential oracles, and golden-digest comparison (``repro.check``)
* ``trace``        — request-scoped traces from a live serving workload
  (text summary or Chrome ``chrome://tracing`` JSON export)
* ``slo``          — evaluate latency/availability SLOs over a recorded
  timeline or a live workload; exit code is the verdict
* ``profile``      — sampling profiler over a serving workload
  (collapsed-stack/flamegraph output)
* ``top``          — live serving dashboard frames (QPS, percentiles,
  cache hit rate, breaker states, SLO budget)
* ``loadtest``     — replay a seeded heavy-tailed traffic scenario through
  the overload-safe serving stack on a virtual clock; exit code is the
  gate verdict
* ``chaos``        — the acceptance chaos run: bursty traffic against a
  scripted fault schedule (store failures, outage window, stragglers,
  corrupted rows), scored against the SLO engine

``train`` grows crash-safety flags: ``--checkpoint-dir`` /
``--checkpoint-every`` write atomic checkpoints during training and
``--resume`` continues bit-exactly from the latest one after a kill.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Field-aware VAE reproduction (ICDE 2022) command line")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_dataset_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--dataset", choices=("sc", "kd", "qb"), default="sc",
                       help="dataset preset (default: sc)")
        p.add_argument("--users", type=int, default=2000,
                       help="number of users to generate (default: 2000)")
        p.add_argument("--seed", type=int, default=0)

    p_stats = sub.add_parser("stats", help="print dataset statistics (Table I)")
    add_dataset_args(p_stats)

    p_train = sub.add_parser("train", help="train an FVAE and save it")
    add_dataset_args(p_train)
    p_train.add_argument("--output", required=True, help="model .npz path")
    p_train.add_argument("--epochs", type=int, default=10)
    p_train.add_argument("--batch-size", type=int, default=256)
    p_train.add_argument("--latent-dim", type=int, default=32)
    p_train.add_argument("--lr", type=float, default=2e-3)
    p_train.add_argument("--sampling-rate", type=float, default=1.0)
    p_train.add_argument("--beta", type=float, default=0.2)
    p_train.add_argument("--telemetry", default=None, metavar="PATH",
                         help="record training telemetry and write a JSONL "
                              "event dump to PATH (render with 'repro report')")
    p_train.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                         help="write crash-safe checkpoints to DIR during "
                              "training")
    p_train.add_argument("--checkpoint-every", type=int, default=0,
                         metavar="STEPS",
                         help="also checkpoint every STEPS batches "
                              "(0: epoch boundaries only)")
    p_train.add_argument("--resume", action="store_true",
                         help="resume from the latest valid checkpoint in "
                              "--checkpoint-dir (fresh start when none)")
    p_train.add_argument("--prefetch", type=int, default=0, metavar="DEPTH",
                         help="prepare batches on a background thread, DEPTH "
                              "deep (0: synchronous; training stays "
                              "bit-identical)")

    p_eval = sub.add_parser("evaluate", help="evaluate a saved model")
    add_dataset_args(p_eval)
    p_eval.add_argument("--model", required=True, help="model .npz path")
    p_eval.add_argument("--task", choices=("tags", "reconstruction"),
                        default="tags")

    p_embed = sub.add_parser("embed", help="export user embeddings")
    add_dataset_args(p_embed)
    p_embed.add_argument("--model", required=True)
    p_embed.add_argument("--output", required=True, help="embeddings .npz path")

    p_bench = sub.add_parser("benchmark",
                             help="FVAE vs Mult-VAE training throughput")
    add_dataset_args(p_bench)
    p_bench.add_argument("--epochs", type=int, default=2)

    p_microbench = sub.add_parser(
        "bench", help="hot-path microbenchmarks (fused softmax, embedding "
                      "bag, sparse Adam, epoch throughput)")
    p_microbench.add_argument("--quick", action="store_true",
                              help="fewer repeats / smaller preset (CI smoke)")
    p_microbench.add_argument("--out", default=None, metavar="PATH",
                              help="output JSON path (default: "
                                   "benchmarks/results/BENCH_PR8.json for "
                                   "training, BENCH_PR5.json for serving, "
                                   "BENCH_PR9.json for sharded, "
                                   "BENCH_PR10.json for ann)")
    p_microbench.add_argument("--users", type=int, default=None,
                              help="override the epoch-throughput preset size")
    p_microbench.add_argument("--seed", type=int, default=0)
    p_microbench.add_argument("--suite",
                              choices=("training", "serving", "sharded",
                                       "ann"),
                              default="training",
                              help="training: PR 3 hot-path stages; serving: "
                                   "batched lookup / LSH / inference-forward "
                                   "/ cold-start stages; sharded: real "
                                   "multi-process PS scaling vs simulator; "
                                   "ann: quantized stores + IVF recall/QPS "
                                   "vs exact scan")

    p_lookalike = sub.add_parser(
        "lookalike", help="audience expansion over synthetic clustered "
                          "embeddings: exact / LSH / IVF retrieval over a "
                          "float64, int8 or product-quantized store")
    p_lookalike.add_argument("--users", type=int, default=5000,
                             help="number of users to embed (default: 5000)")
    p_lookalike.add_argument("--dim", type=int, default=32,
                             help="embedding dimension (default: 32)")
    p_lookalike.add_argument("--seed", type=int, default=0)
    p_lookalike.add_argument("--index", choices=("none", "lsh", "ivf"),
                             default="none",
                             help="retrieval index (none: exact scan)")
    p_lookalike.add_argument("--quant", choices=("none", "int8", "pq"),
                             default="none",
                             help="embedding store quantization")
    p_lookalike.add_argument("--k", type=int, default=100,
                             help="audience size to expand to (default: 100)")
    p_lookalike.add_argument("--seeds", type=int, default=20,
                             help="seed-audience size (default: 20)")
    p_lookalike.add_argument("--nprobe", type=int, default=8,
                             help="IVF lists probed per query (default: 8)")
    p_lookalike.add_argument("--telemetry", default=None, metavar="PATH",
                             help="write a telemetry JSONL dump to PATH "
                                  "(render with 'repro report')")

    p_faults = sub.add_parser(
        "faults", help="fault-injected distributed training: recovery "
                       "overhead vs crash rate")
    p_faults.add_argument("--users", type=int, default=1500)
    p_faults.add_argument("--seed", type=int, default=0)
    p_faults.add_argument("--workers", type=int, default=6)
    p_faults.add_argument("--crash-rates", default="0,0.02,0.05,0.1",
                          help="comma-separated per worker-step crash "
                               "probabilities")
    p_faults.add_argument("--checkpoint-interval", type=int, default=10,
                          metavar="STEPS",
                          help="steps between checkpoints for the "
                               "checkpoint_restart strategy")

    p_check = sub.add_parser(
        "check", help="correctness verification: op-coverage gradchecks, "
                      "differential oracles, golden-run digests")
    p_check.add_argument("--quick", action="store_true",
                         help="small golden preset + fastest dataset digest "
                              "only (CI smoke; gradchecks and oracles always "
                              "run in full)")
    p_check.add_argument("--update-golden", action="store_true",
                         help="regenerate benchmarks/golden/ baselines "
                              "instead of checking against them")
    p_check.add_argument("--seed", type=int, default=0,
                         help="base seed for gradcheck cases and digests")
    p_check.add_argument("--oracle-seeds", type=int, default=3,
                         metavar="N", help="seeds per differential oracle "
                                           "(default: 3)")
    p_check.add_argument("--golden-dir", default=None, metavar="DIR",
                         help="override the golden baseline directory")

    p_report = sub.add_parser("report",
                              help="render a telemetry JSONL dump as tables")
    p_report.add_argument("--input", required=True,
                          help="JSONL file written by 'train --telemetry' "
                               "or Telemetry.dump_jsonl")
    p_report.add_argument("--format", choices=("table", "prometheus"),
                          default="table",
                          help="summary tables (default) or a Prometheus-"
                               "style text snapshot")

    def add_workload_args(p: argparse.ArgumentParser,
                          requests: int = 400) -> None:
        p.add_argument("--requests", type=int, default=requests,
                       help=f"requests to drive (default: {requests})")
        p.add_argument("--threads", type=int, default=4,
                       help="concurrent client threads (default: 4)")
        p.add_argument("--failure-rate", type=float, default=0.0,
                       help="injected store failure probability (default: 0)")
        p.add_argument("--seed", type=int, default=0)

    p_trace = sub.add_parser(
        "trace", help="request-scoped traces from a live serving workload")
    add_workload_args(p_trace)
    p_trace.add_argument("--export", choices=("summary", "chrome"),
                         default="summary",
                         help="text summary (default) or Chrome trace-event "
                              "JSON for chrome://tracing / Perfetto")
    p_trace.add_argument("--out", default=None, metavar="PATH",
                         help="output path (required for --export chrome)")
    p_trace.add_argument("--limit", type=int, default=3,
                         help="traces rendered per retention pool in the "
                              "summary (default: 3)")

    p_slo = sub.add_parser(
        "slo", help="evaluate SLOs over a timeline or a live workload")
    add_workload_args(p_slo)
    p_slo.add_argument("--objective", action="append", default=None,
                       metavar="SPEC",
                       help="declarative objective, repeatable — e.g. "
                            "'p99 latency <= 50ms' or "
                            "'availability >= 99.9%%' (defaults: both)")
    p_slo.add_argument("--window", type=float, default=300.0,
                       help="rolling window in seconds (default: 300)")
    p_slo.add_argument("--timeline", default=None, metavar="PATH",
                       help="JSONL of recorded outcomes ({'ts': s, "
                            "'latency_ms': x, 'ok': bool} per line) "
                            "evaluated on a deterministic clock instead of "
                            "driving a live workload")

    p_profile = sub.add_parser(
        "profile", help="sampling profiler over a serving workload")
    add_workload_args(p_profile, requests=2000)
    p_profile.add_argument("--interval-ms", type=float, default=5.0,
                          help="sampling interval (default: 5ms ≈ 200 Hz)")
    p_profile.add_argument("--out", default=None, metavar="PATH",
                          help="write collapsed stacks (flamegraph.pl / "
                               "speedscope input) to PATH")
    p_profile.add_argument("--top", type=int, default=15,
                          help="rows in the printed top-functions table")

    p_top = sub.add_parser(
        "top", help="live serving dashboard (QPS, percentiles, SLO budget)")
    add_workload_args(p_top, requests=2000)
    p_top.add_argument("--frames", type=int, default=3,
                       help="dashboard frames to render (default: 3)")
    p_top.add_argument("--interval", type=float, default=0.5,
                       help="seconds between frames (default: 0.5)")

    def add_loadtest_args(p: argparse.ArgumentParser, duration: float,
                          rate: float) -> None:
        p.add_argument("--duration", type=float, default=duration,
                       help=f"virtual seconds of traffic "
                            f"(default: {duration:g})")
        p.add_argument("--rate", type=float, default=rate,
                       help=f"baseline arrival rate, requests/s "
                            f"(default: {rate:g})")
        p.add_argument("--users", type=int, default=512,
                       help="known users in the store (default: 512)")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--budget-ms", type=float, default=50.0,
                       help="per-request deadline budget in ms; 0 disables "
                            "deadlines (default: 50)")
        p.add_argument("--policy", choices=("reject", "drop_oldest",
                                            "degrade"), default="reject",
                       help="admission-control shed policy (default: reject)")
        p.add_argument("--max-queue", type=int, default=256,
                       help="bounded batcher queue depth (default: 256)")
        p.add_argument("--no-throttle", action="store_true",
                       help="disable the SLO-derived adaptive throttle")
        p.add_argument("--shed-limit", type=float, default=0.2,
                       help="max tolerated shed fraction for the gate "
                            "(default: 0.2)")

    p_loadtest = sub.add_parser(
        "loadtest", help="replay a seeded traffic scenario through the "
                         "serving stack on a virtual clock")
    add_loadtest_args(p_loadtest, duration=10.0, rate=100.0)
    p_loadtest.add_argument("--scenario",
                            choices=("steady", "burst", "hot-keys",
                                     "cold-start"), default="steady",
                            help="traffic shape (default: steady)")
    p_loadtest.add_argument("--failure-rate", type=float, default=0.0,
                            help="background store failure probability "
                                 "(default: 0)")

    p_chaos = sub.add_parser(
        "chaos", help="acceptance chaos run: burst + store failures + "
                      "outage window, scored against SLOs")
    add_loadtest_args(p_chaos, duration=30.0, rate=60.0)
    p_chaos.add_argument("--failure-rate", type=float, default=0.2,
                         help="background store failure probability "
                              "(default: 0.2)")
    p_chaos.add_argument("--burst-multiplier", type=float, default=10.0,
                         help="burst intensity over baseline (default: 10)")
    p_chaos.add_argument("--burst-seconds", type=float, default=2.0,
                         help="burst window length (default: 2)")
    p_chaos.add_argument("--outage-seconds", type=float, default=2.0,
                         help="hard store outage length (default: 2)")

    return parser


def _load_dataset(args):
    from repro.data import get_dataset

    return get_dataset(args.dataset, n_users=args.users, seed=args.seed)


def _cmd_stats(args, out) -> int:
    synthetic = _load_dataset(args)
    stats = synthetic.dataset.stats()
    print(f"{synthetic.name}: {stats}", file=out)
    for name, vocab in stats.per_field_vocab.items():
        print(f"  {name:<6} J={vocab:<10,} N̄={stats.per_field_avg[name]:.2f}",
              file=out)
    return 0


def _cmd_train(args, out) -> int:
    from repro import obs
    from repro.core import FVAE, FVAEConfig, save_fvae

    synthetic = _load_dataset(args)
    config = FVAEConfig(latent_dim=args.latent_dim,
                        encoder_hidden=[4 * args.latent_dim],
                        decoder_hidden=[4 * args.latent_dim],
                        beta=args.beta, sampling_rate=args.sampling_rate,
                        seed=args.seed)
    model = FVAE(synthetic.dataset.schema, config)
    if args.resume and not args.checkpoint_dir:
        print("--resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    fit_kwargs = dict(epochs=args.epochs, batch_size=args.batch_size,
                      lr=args.lr)
    if args.checkpoint_dir:
        fit_kwargs.update(checkpointer=args.checkpoint_dir,
                          checkpoint_every=args.checkpoint_every,
                          resume_from=args.resume)
    if args.prefetch > 0:
        from repro.perf import PrefetchLoader

        fit_kwargs.update(loader=PrefetchLoader(prefetch=args.prefetch))
    if args.telemetry:
        with obs.session() as telemetry:
            model.fit(synthetic.dataset, callbacks=[obs.TelemetryCallback()],
                      **fit_kwargs)
        events = telemetry.dump_jsonl(
            args.telemetry, run_id=f"train-{args.dataset}-seed{args.seed}")
        print(f"telemetry: {events} events written to {args.telemetry}",
              file=out)
    else:
        model.fit(synthetic.dataset, **fit_kwargs)
    save_fvae(model, args.output)
    history = model.history
    print(f"trained {args.epochs} epochs in {history.total_time:.1f}s "
          f"({history.throughput:.0f} users/s); final loss "
          f"{history.final_loss:.4f}", file=out)
    print(f"model saved to {args.output}", file=out)
    return 0


def _cmd_evaluate(args, out) -> int:
    from repro.core import load_fvae
    from repro.tasks import evaluate_reconstruction, evaluate_tag_prediction

    synthetic = _load_dataset(args)
    __, test = synthetic.dataset.split([0.8, 0.2], rng=args.seed)
    model = load_fvae(args.model)
    if args.task == "tags":
        result = evaluate_tag_prediction(model, test, rng=args.seed)
        print(f"tag prediction: AUC={result.auc:.4f} mAP={result.map:.4f} "
              f"({result.n_users} users)", file=out)
    else:
        result = evaluate_reconstruction(model, test)
        print(f"reconstruction overall: AUC={result.overall['auc']:.4f} "
              f"mAP={result.overall['map']:.4f}", file=out)
        for field, metrics in result.per_field.items():
            print(f"  {field:<6} AUC={metrics['auc']:.4f} "
                  f"mAP={metrics['map']:.4f}", file=out)
    return 0


def _cmd_embed(args, out) -> int:
    from repro.core import load_fvae

    synthetic = _load_dataset(args)
    model = load_fvae(args.model)
    embeddings = model.embed_users(synthetic.dataset)
    np.savez_compressed(args.output, embeddings=embeddings,
                        topics=synthetic.topics)
    print(f"wrote {embeddings.shape[0]:,} embeddings of dim "
          f"{embeddings.shape[1]} to {args.output}", file=out)
    return 0


def _cmd_benchmark(args, out) -> int:
    from repro.experiments import run_table5
    from repro.experiments.common import ExperimentScale

    scale = ExperimentScale(n_users=args.users, seed=args.seed)
    result = run_table5(scale=scale, datasets=(args.dataset.upper(),),
                        epochs=args.epochs)
    print(result.to_text(), file=out)
    return 0


def _cmd_bench(args, out) -> int:
    from repro.perf import run_bench
    from repro.perf.bench import (ANN_OUTPUT, DEFAULT_OUTPUT, SERVING_OUTPUT,
                                  SHARDED_OUTPUT, render_report)

    suite = getattr(args, "suite", "training")
    path = args.out or {"training": DEFAULT_OUTPUT,
                        "serving": SERVING_OUTPUT,
                        "sharded": SHARDED_OUTPUT,
                        "ann": ANN_OUTPUT}[suite]
    report = run_bench(quick=args.quick, out=path, users=args.users,
                       seed=args.seed, suite=suite)
    print(render_report(report), file=out)
    print(f"results written to {path}", file=out)
    return 0


def _cmd_lookalike(args, out) -> int:
    from repro import obs
    from repro.lookalike import LookalikeSystem
    from repro.utils.rng import new_rng

    rng = new_rng(args.seed)
    # Clustered corpus so an approximate index has real structure to find.
    n_clusters = max(2, min(32, args.users // 50))
    centers = rng.normal(size=(n_clusters, args.dim))
    assign = rng.integers(0, n_clusters, size=args.users)
    embeddings = centers[assign] + 0.35 * rng.normal(
        size=(args.users, args.dim))
    # Seed audiences are *similar* users — draw them from one cluster so the
    # pooled query lands in real structure instead of near the global mean.
    members = np.flatnonzero(assign == assign[rng.integers(0, args.users)])
    seeds = rng.choice(members, size=min(args.seeds, members.size),
                       replace=False)

    def build_and_expand(quant, index):
        params = {"nprobe": args.nprobe} if index == "ivf" else None
        system = LookalikeSystem(embeddings, quant=quant,
                                 index=None if index == "none" else index,
                                 seed=args.seed, index_params=params)
        return system, system.expand_audience(seeds, args.k)

    def run():
        system, audience = build_and_expand(args.quant, args.index)
        __, exact_audience = build_and_expand("none", "none")
        return system, audience, exact_audience

    if args.telemetry:
        with obs.session() as telemetry:
            system, audience, exact_audience = run()
        events = telemetry.dump_jsonl(
            args.telemetry, run_id=f"lookalike-seed{args.seed}")
    else:
        system, audience, exact_audience = run()
        events = None

    exact_bytes = embeddings.nbytes
    recall = (np.isin(audience, exact_audience).mean()
              if audience.size else 0.0)
    print(f"lookalike: {args.users:,} users dim={args.dim} "
          f"index={args.index} quant={args.quant}", file=out)
    print(f"  serving bytes: {system.serving_bytes:,} "
          f"({exact_bytes / max(system.serving_bytes, 1):.2f}x smaller than "
          f"float64)", file=out)
    print(f"  expanded {seeds.size} seeds to {audience.size} users; "
          f"recall vs exact scan {recall:.3f}", file=out)
    preview = ", ".join(str(u) for u in audience[:10])
    print(f"  top users: [{preview}{', ...' if audience.size > 10 else ''}]",
          file=out)
    if events is not None:
        print(f"telemetry: {events} events written to {args.telemetry}",
              file=out)
    return 0


def _cmd_faults(args, out) -> int:
    from repro.experiments import run_fault_tolerance
    from repro.experiments.common import ExperimentScale

    rates = tuple(float(r) for r in args.crash_rates.split(","))
    scale = ExperimentScale(n_users=args.users, latent_dim=16,
                            seed=args.seed)
    result = run_fault_tolerance(scale=scale, n_workers=args.workers,
                                 crash_rates=rates,
                                 checkpoint_interval=args.checkpoint_interval)
    print(result.to_text(), file=out)
    return 0


def _cmd_report(args, out) -> int:
    import json

    from repro.obs import events_to_prometheus, load_jsonl, render_events

    try:
        events = load_jsonl(args.input)
    except FileNotFoundError:
        print(f"report: no such telemetry dump: {args.input}",
              file=sys.stderr)
        return 2
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        print(f"report: {args.input} is not valid JSONL "
              f"(truncated dump?): {exc}", file=sys.stderr)
        return 2
    if not events:
        print(f"report: {args.input} contains no telemetry events",
              file=sys.stderr)
        return 2
    if args.format == "prometheus":
        print(events_to_prometheus(events), file=out, end="")
    else:
        print(render_events(events), file=out)
    return 0


def _build_workload(args):
    from repro.serve import ServingWorkload

    return ServingWorkload(seed=args.seed, failure_rate=args.failure_rate)


def _cmd_trace(args, out) -> int:
    from repro import obs

    if args.export == "chrome" and not args.out:
        print("trace: --export chrome requires --out", file=sys.stderr)
        return 2
    workload = _build_workload(args)
    with obs.session() as telemetry:
        result = workload.run(requests=args.requests, threads=args.threads)
    store = telemetry.traces
    if args.export == "chrome":
        exported = obs.dump_chrome(store.traces() + store.error_traces()
                                   + store.slowest_traces(), args.out)
        print(f"trace: {exported} events from {store.finished} requests "
              f"written to {args.out}", file=out)
        return 0
    print(f"trace: {result.requests} requests at {result.qps:,.0f} qps — "
          f"{store.finished} traces finished, {len(store.traces())} kept, "
          f"{len(store.error_traces())} errors, "
          f"{len(store.slowest_traces())} slowest", file=out)
    for title, pool in (("slowest", store.slowest_traces()[:args.limit]),
                        ("errors", store.error_traces()[:args.limit])):
        for trace in pool:
            print(f"\n[{title}]", file=out)
            print(trace.render(), file=out, end="")
    return 0


def _load_timeline(path):
    """Recorded SLO samples: one ``{'ts', 'latency_ms', 'ok'}`` per line."""
    import json
    from pathlib import Path

    samples = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        rec = json.loads(line)
        samples.append((float(rec["ts"]),
                        float(rec.get("latency_ms", 0.0)) / 1e3,
                        bool(rec.get("ok", True))))
    return samples


def _cmd_slo(args, out) -> int:
    import json

    from repro.obs import SLOEngine, parse_objective
    from repro.utils.timer import ManualClock

    specs = args.objective or ["p99 latency <= 50ms",
                               "availability >= 99.9%"]
    try:
        objectives = [parse_objective(spec, window_seconds=args.window)
                      for spec in specs]
    except ValueError as exc:
        print(f"slo: {exc}", file=sys.stderr)
        return 2

    if args.timeline:
        try:
            samples = _load_timeline(args.timeline)
        except FileNotFoundError:
            print(f"slo: no such timeline: {args.timeline}", file=sys.stderr)
            return 2
        except (json.JSONDecodeError, KeyError, ValueError) as exc:
            print(f"slo: bad timeline {args.timeline}: {exc}",
                  file=sys.stderr)
            return 2
        if not samples:
            print(f"slo: timeline {args.timeline} is empty", file=sys.stderr)
            return 2
        clock = ManualClock()
        engine = SLOEngine(objectives, clock=clock)
        for ts, latency, ok in samples:
            clock.now = max(clock.now, ts)
            engine.record(latency, ok=ok, ts=ts)
    else:
        engine = SLOEngine(objectives)
        workload = _build_workload(args)
        workload.run(requests=args.requests, threads=args.threads,
                     slo_engine=engine)

    statuses = engine.evaluate()
    print(engine.render(), file=out)
    return 0 if all(s.passed for s in statuses) else 1


def _cmd_profile(args, out) -> int:
    from repro.obs import SamplingProfiler

    workload = _build_workload(args)
    profiler = SamplingProfiler(interval_seconds=args.interval_ms / 1e3)
    with profiler:
        result = workload.run(requests=args.requests, threads=args.threads)
    print(f"profile: {profiler.samples} samples over {result.requests} "
          f"requests ({result.qps:,.0f} qps)", file=out)
    print(profiler.render_top(args.top), file=out)
    if args.out:
        lines = profiler.write_collapsed(args.out)
        print(f"collapsed stacks ({lines} lines) written to {args.out}",
              file=out)
    return 0


def _cmd_top(args, out) -> int:
    import threading
    import time as _time

    from repro import obs
    from repro.obs import Dashboard, SLOEngine, availability_slo, latency_slo

    workload = _build_workload(args)
    engine = SLOEngine([latency_slo("serve-p99", threshold_ms=50.0),
                        availability_slo("serve-avail", 99.0)])
    with obs.session() as telemetry:
        dashboard = Dashboard(telemetry, slo_engine=engine)
        runner = threading.Thread(
            target=lambda: workload.run(requests=args.requests,
                                        threads=args.threads,
                                        slo_engine=engine),
            name="workload")
        runner.start()
        frame = 0
        while frame < args.frames:
            _time.sleep(args.interval if runner.is_alive() else 0.0)
            frame += 1
            print(f"--- frame {frame}/{args.frames} ---", file=out)
            print(dashboard.frame(), file=out)
            print(file=out)
            if not runner.is_alive() and frame < args.frames:
                break  # workload drained; no point rendering idle frames
        runner.join()
    return 0


def _cmd_check(args, out) -> int:
    from repro import check

    if args.update_golden:
        paths = check.update_golden(directory=args.golden_dir,
                                    seed=args.seed)
        for path in paths:
            print(f"golden baseline written: {path}", file=out)
        print("review the diff and commit it only if the change in model, "
              "data, or training semantics is intended", file=out)
        return 0

    failures = 0

    uncovered = check.uncovered_ops()
    for captured in (False, True):
        reports = check.run_gradchecks(seed=args.seed, captured=captured)
        bad = [r for r in reports if not r.passed]
        failures += len(bad)
        label = "gradcheck (captured)" if captured else "gradcheck"
        extra = "" if captured else f", {len(uncovered)} uncovered"
        print(f"{label}: {len(reports)} cases over "
              f"{len(check.required_ops())} ops — "
              f"{len(bad)} failed{extra}", file=out)
        for report in bad:
            print(f"  {report}", file=out)
    failures += len(uncovered)
    for op in sorted(uncovered):
        print(f"  UNCOVERED {op}: register a gradcheck case", file=out)

    seeds = tuple(range(args.seed, args.seed + args.oracle_seeds))
    oracle_reports = check.run_oracles(seeds=seeds)
    bad = [r for r in oracle_reports if not r.passed]
    failures += len(bad)
    print(f"oracles: {len(oracle_reports)} runs "
          f"({len(check.oracle_names())} oracles x {len(seeds)} seeds) "
          f"— {len(bad)} failed", file=out)
    for report in bad:
        print(f"  {report}", file=out)

    mode = "quick" if args.quick else "full"
    problems = check.check_golden(quick=args.quick,
                                  directory=args.golden_dir,
                                  seed=args.seed)
    failures += len(problems)
    print(f"golden ({mode}): {len(problems)} divergences", file=out)
    for problem in problems[:20]:
        print(f"  {problem}", file=out)
    if len(problems) > 20:
        print(f"  ... and {len(problems) - 20} more", file=out)

    problems = check.check_captured_golden(quick=args.quick,
                                           directory=args.golden_dir,
                                           seed=args.seed)
    failures += len(problems)
    print(f"golden captured ({mode}): {len(problems)} divergences", file=out)
    for problem in problems[:20]:
        print(f"  {problem}", file=out)
    if len(problems) > 20:
        print(f"  ... and {len(problems) - 20} more", file=out)

    print("check: PASS" if not failures else f"check: FAIL ({failures})",
          file=out)
    return 0 if not failures else 1


def _loadtest_harness_kwargs(args) -> dict:
    return dict(
        deadline_budget_seconds=(args.budget_ms / 1e3
                                 if args.budget_ms > 0 else None),
        policy=args.policy,
        max_queue=args.max_queue,
        throttle=None if args.no_throttle else "auto",
    )


def _cmd_loadtest(args, out) -> int:
    from repro.loadtest import ServingFaultSchedule, run_loadtest

    schedule = (ServingFaultSchedule(failure_rate=args.failure_rate)
                if args.failure_rate else None)
    result = run_loadtest(scenario=args.scenario, duration=args.duration,
                          rate=args.rate, seed=args.seed, n_users=args.users,
                          schedule=schedule, shed_rate_limit=args.shed_limit,
                          **_loadtest_harness_kwargs(args))
    print(result.render(), file=out)
    return 0 if result.passed else 1


def _cmd_chaos(args, out) -> int:
    from repro.loadtest import run_chaos

    result = run_chaos(duration=args.duration, rate=args.rate,
                       burst_multiplier=args.burst_multiplier,
                       burst_seconds=args.burst_seconds,
                       failure_rate=args.failure_rate,
                       outage_seconds=args.outage_seconds,
                       seed=args.seed, n_users=args.users,
                       shed_rate_limit=args.shed_limit,
                       **_loadtest_harness_kwargs(args))
    print(result.render(), file=out)
    return 0 if result.passed else 1


_COMMANDS = {
    "stats": _cmd_stats,
    "train": _cmd_train,
    "evaluate": _cmd_evaluate,
    "embed": _cmd_embed,
    "benchmark": _cmd_benchmark,
    "bench": _cmd_bench,
    "lookalike": _cmd_lookalike,
    "faults": _cmd_faults,
    "report": _cmd_report,
    "check": _cmd_check,
    "trace": _cmd_trace,
    "slo": _cmd_slo,
    "profile": _cmd_profile,
    "top": _cmd_top,
    "loadtest": _cmd_loadtest,
    "chaos": _cmd_chaos,
}


def main(argv: list[str] | None = None, out=None) -> int:
    """Entry point; returns a process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args, out)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
