"""Command-line interface: ``python -m repro <command>``.

Commands mirror the deployment workflow of §IV-D at example scale:

* ``stats``        — generate a dataset preset and print its Table-I row
* ``train``        — train an FVAE on a preset and save the model archive
* ``evaluate``     — tag prediction / reconstruction with a saved model
* ``embed``        — write user embeddings from a saved model to .npz
* ``benchmark``    — quick FVAE-vs-Mult-VAE throughput comparison
* ``bench``        — hot-path microbenchmarks → benchmarks/results/BENCH_*.json
* ``faults``       — fault-injected distributed training overhead table
* ``report``       — render a telemetry JSONL dump (``train --telemetry``)
* ``check``        — correctness verification: gradcheck coverage sweep,
  differential oracles, and golden-digest comparison (``repro.check``)

``train`` grows crash-safety flags: ``--checkpoint-dir`` /
``--checkpoint-every`` write atomic checkpoints during training and
``--resume`` continues bit-exactly from the latest one after a kill.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Field-aware VAE reproduction (ICDE 2022) command line")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_dataset_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--dataset", choices=("sc", "kd", "qb"), default="sc",
                       help="dataset preset (default: sc)")
        p.add_argument("--users", type=int, default=2000,
                       help="number of users to generate (default: 2000)")
        p.add_argument("--seed", type=int, default=0)

    p_stats = sub.add_parser("stats", help="print dataset statistics (Table I)")
    add_dataset_args(p_stats)

    p_train = sub.add_parser("train", help="train an FVAE and save it")
    add_dataset_args(p_train)
    p_train.add_argument("--output", required=True, help="model .npz path")
    p_train.add_argument("--epochs", type=int, default=10)
    p_train.add_argument("--batch-size", type=int, default=256)
    p_train.add_argument("--latent-dim", type=int, default=32)
    p_train.add_argument("--lr", type=float, default=2e-3)
    p_train.add_argument("--sampling-rate", type=float, default=1.0)
    p_train.add_argument("--beta", type=float, default=0.2)
    p_train.add_argument("--telemetry", default=None, metavar="PATH",
                         help="record training telemetry and write a JSONL "
                              "event dump to PATH (render with 'repro report')")
    p_train.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                         help="write crash-safe checkpoints to DIR during "
                              "training")
    p_train.add_argument("--checkpoint-every", type=int, default=0,
                         metavar="STEPS",
                         help="also checkpoint every STEPS batches "
                              "(0: epoch boundaries only)")
    p_train.add_argument("--resume", action="store_true",
                         help="resume from the latest valid checkpoint in "
                              "--checkpoint-dir (fresh start when none)")
    p_train.add_argument("--prefetch", type=int, default=0, metavar="DEPTH",
                         help="prepare batches on a background thread, DEPTH "
                              "deep (0: synchronous; training stays "
                              "bit-identical)")

    p_eval = sub.add_parser("evaluate", help="evaluate a saved model")
    add_dataset_args(p_eval)
    p_eval.add_argument("--model", required=True, help="model .npz path")
    p_eval.add_argument("--task", choices=("tags", "reconstruction"),
                        default="tags")

    p_embed = sub.add_parser("embed", help="export user embeddings")
    add_dataset_args(p_embed)
    p_embed.add_argument("--model", required=True)
    p_embed.add_argument("--output", required=True, help="embeddings .npz path")

    p_bench = sub.add_parser("benchmark",
                             help="FVAE vs Mult-VAE training throughput")
    add_dataset_args(p_bench)
    p_bench.add_argument("--epochs", type=int, default=2)

    p_microbench = sub.add_parser(
        "bench", help="hot-path microbenchmarks (fused softmax, embedding "
                      "bag, sparse Adam, epoch throughput)")
    p_microbench.add_argument("--quick", action="store_true",
                              help="fewer repeats / smaller preset (CI smoke)")
    p_microbench.add_argument("--out", default=None, metavar="PATH",
                              help="output JSON path (default: "
                                   "benchmarks/results/BENCH_PR3.json for "
                                   "training, BENCH_PR5.json for serving)")
    p_microbench.add_argument("--users", type=int, default=None,
                              help="override the epoch-throughput preset size")
    p_microbench.add_argument("--seed", type=int, default=0)
    p_microbench.add_argument("--suite", choices=("training", "serving"),
                              default="training",
                              help="training: PR 3 hot-path stages; serving: "
                                   "batched lookup / LSH / inference-forward "
                                   "/ cold-start stages")

    p_faults = sub.add_parser(
        "faults", help="fault-injected distributed training: recovery "
                       "overhead vs crash rate")
    p_faults.add_argument("--users", type=int, default=1500)
    p_faults.add_argument("--seed", type=int, default=0)
    p_faults.add_argument("--workers", type=int, default=6)
    p_faults.add_argument("--crash-rates", default="0,0.02,0.05,0.1",
                          help="comma-separated per worker-step crash "
                               "probabilities")
    p_faults.add_argument("--checkpoint-interval", type=int, default=10,
                          metavar="STEPS",
                          help="steps between checkpoints for the "
                               "checkpoint_restart strategy")

    p_check = sub.add_parser(
        "check", help="correctness verification: op-coverage gradchecks, "
                      "differential oracles, golden-run digests")
    p_check.add_argument("--quick", action="store_true",
                         help="small golden preset + fastest dataset digest "
                              "only (CI smoke; gradchecks and oracles always "
                              "run in full)")
    p_check.add_argument("--update-golden", action="store_true",
                         help="regenerate benchmarks/golden/ baselines "
                              "instead of checking against them")
    p_check.add_argument("--seed", type=int, default=0,
                         help="base seed for gradcheck cases and digests")
    p_check.add_argument("--oracle-seeds", type=int, default=3,
                         metavar="N", help="seeds per differential oracle "
                                           "(default: 3)")
    p_check.add_argument("--golden-dir", default=None, metavar="DIR",
                         help="override the golden baseline directory")

    p_report = sub.add_parser("report",
                              help="render a telemetry JSONL dump as tables")
    p_report.add_argument("--input", required=True,
                          help="JSONL file written by 'train --telemetry' "
                               "or Telemetry.dump_jsonl")
    p_report.add_argument("--format", choices=("table", "prometheus"),
                          default="table",
                          help="summary tables (default) or a Prometheus-"
                               "style text snapshot")

    return parser


def _load_dataset(args):
    from repro.data import get_dataset

    return get_dataset(args.dataset, n_users=args.users, seed=args.seed)


def _cmd_stats(args, out) -> int:
    synthetic = _load_dataset(args)
    stats = synthetic.dataset.stats()
    print(f"{synthetic.name}: {stats}", file=out)
    for name, vocab in stats.per_field_vocab.items():
        print(f"  {name:<6} J={vocab:<10,} N̄={stats.per_field_avg[name]:.2f}",
              file=out)
    return 0


def _cmd_train(args, out) -> int:
    from repro import obs
    from repro.core import FVAE, FVAEConfig, save_fvae

    synthetic = _load_dataset(args)
    config = FVAEConfig(latent_dim=args.latent_dim,
                        encoder_hidden=[4 * args.latent_dim],
                        decoder_hidden=[4 * args.latent_dim],
                        beta=args.beta, sampling_rate=args.sampling_rate,
                        seed=args.seed)
    model = FVAE(synthetic.dataset.schema, config)
    if args.resume and not args.checkpoint_dir:
        print("--resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    fit_kwargs = dict(epochs=args.epochs, batch_size=args.batch_size,
                      lr=args.lr)
    if args.checkpoint_dir:
        fit_kwargs.update(checkpointer=args.checkpoint_dir,
                          checkpoint_every=args.checkpoint_every,
                          resume_from=args.resume)
    if args.prefetch > 0:
        from repro.perf import PrefetchLoader

        fit_kwargs.update(loader=PrefetchLoader(prefetch=args.prefetch))
    if args.telemetry:
        with obs.session() as telemetry:
            model.fit(synthetic.dataset, callbacks=[obs.TelemetryCallback()],
                      **fit_kwargs)
        events = telemetry.dump_jsonl(
            args.telemetry, run_id=f"train-{args.dataset}-seed{args.seed}")
        print(f"telemetry: {events} events written to {args.telemetry}",
              file=out)
    else:
        model.fit(synthetic.dataset, **fit_kwargs)
    save_fvae(model, args.output)
    history = model.history
    print(f"trained {args.epochs} epochs in {history.total_time:.1f}s "
          f"({history.throughput:.0f} users/s); final loss "
          f"{history.final_loss:.4f}", file=out)
    print(f"model saved to {args.output}", file=out)
    return 0


def _cmd_evaluate(args, out) -> int:
    from repro.core import load_fvae
    from repro.tasks import evaluate_reconstruction, evaluate_tag_prediction

    synthetic = _load_dataset(args)
    __, test = synthetic.dataset.split([0.8, 0.2], rng=args.seed)
    model = load_fvae(args.model)
    if args.task == "tags":
        result = evaluate_tag_prediction(model, test, rng=args.seed)
        print(f"tag prediction: AUC={result.auc:.4f} mAP={result.map:.4f} "
              f"({result.n_users} users)", file=out)
    else:
        result = evaluate_reconstruction(model, test)
        print(f"reconstruction overall: AUC={result.overall['auc']:.4f} "
              f"mAP={result.overall['map']:.4f}", file=out)
        for field, metrics in result.per_field.items():
            print(f"  {field:<6} AUC={metrics['auc']:.4f} "
                  f"mAP={metrics['map']:.4f}", file=out)
    return 0


def _cmd_embed(args, out) -> int:
    from repro.core import load_fvae

    synthetic = _load_dataset(args)
    model = load_fvae(args.model)
    embeddings = model.embed_users(synthetic.dataset)
    np.savez_compressed(args.output, embeddings=embeddings,
                        topics=synthetic.topics)
    print(f"wrote {embeddings.shape[0]:,} embeddings of dim "
          f"{embeddings.shape[1]} to {args.output}", file=out)
    return 0


def _cmd_benchmark(args, out) -> int:
    from repro.experiments import run_table5
    from repro.experiments.common import ExperimentScale

    scale = ExperimentScale(n_users=args.users, seed=args.seed)
    result = run_table5(scale=scale, datasets=(args.dataset.upper(),),
                        epochs=args.epochs)
    print(result.to_text(), file=out)
    return 0


def _cmd_bench(args, out) -> int:
    from repro.perf import run_bench
    from repro.perf.bench import DEFAULT_OUTPUT, SERVING_OUTPUT, render_report

    suite = getattr(args, "suite", "training")
    path = args.out or (DEFAULT_OUTPUT if suite == "training"
                        else SERVING_OUTPUT)
    report = run_bench(quick=args.quick, out=path, users=args.users,
                       seed=args.seed, suite=suite)
    print(render_report(report), file=out)
    print(f"results written to {path}", file=out)
    return 0


def _cmd_faults(args, out) -> int:
    from repro.experiments import run_fault_tolerance
    from repro.experiments.common import ExperimentScale

    rates = tuple(float(r) for r in args.crash_rates.split(","))
    scale = ExperimentScale(n_users=args.users, latent_dim=16,
                            seed=args.seed)
    result = run_fault_tolerance(scale=scale, n_workers=args.workers,
                                 crash_rates=rates,
                                 checkpoint_interval=args.checkpoint_interval)
    print(result.to_text(), file=out)
    return 0


def _cmd_report(args, out) -> int:
    from repro.obs import events_to_prometheus, load_jsonl, render_events

    events = load_jsonl(args.input)
    if args.format == "prometheus":
        print(events_to_prometheus(events), file=out, end="")
    else:
        print(render_events(events), file=out)
    return 0


def _cmd_check(args, out) -> int:
    from repro import check

    if args.update_golden:
        paths = check.update_golden(directory=args.golden_dir,
                                    seed=args.seed)
        for path in paths:
            print(f"golden baseline written: {path}", file=out)
        print("review the diff and commit it only if the change in model, "
              "data, or training semantics is intended", file=out)
        return 0

    failures = 0

    uncovered = check.uncovered_ops()
    reports = check.run_gradchecks(seed=args.seed)
    bad = [r for r in reports if not r.passed]
    failures += len(uncovered) + len(bad)
    print(f"gradcheck: {len(reports)} cases over "
          f"{len(check.required_ops())} ops — "
          f"{len(bad)} failed, {len(uncovered)} uncovered", file=out)
    for op in sorted(uncovered):
        print(f"  UNCOVERED {op}: register a gradcheck case", file=out)
    for report in bad:
        print(f"  {report}", file=out)

    seeds = tuple(range(args.seed, args.seed + args.oracle_seeds))
    oracle_reports = check.run_oracles(seeds=seeds)
    bad = [r for r in oracle_reports if not r.passed]
    failures += len(bad)
    print(f"oracles: {len(oracle_reports)} runs "
          f"({len(check.oracle_names())} oracles x {len(seeds)} seeds) "
          f"— {len(bad)} failed", file=out)
    for report in bad:
        print(f"  {report}", file=out)

    problems = check.check_golden(quick=args.quick,
                                  directory=args.golden_dir,
                                  seed=args.seed)
    failures += len(problems)
    mode = "quick" if args.quick else "full"
    print(f"golden ({mode}): {len(problems)} divergences", file=out)
    for problem in problems[:20]:
        print(f"  {problem}", file=out)
    if len(problems) > 20:
        print(f"  ... and {len(problems) - 20} more", file=out)

    print("check: PASS" if not failures else f"check: FAIL ({failures})",
          file=out)
    return 0 if not failures else 1


_COMMANDS = {
    "stats": _cmd_stats,
    "train": _cmd_train,
    "evaluate": _cmd_evaluate,
    "embed": _cmd_embed,
    "benchmark": _cmd_benchmark,
    "bench": _cmd_bench,
    "faults": _cmd_faults,
    "report": _cmd_report,
    "check": _cmd_check,
}


def main(argv: list[str] | None = None, out=None) -> int:
    """Entry point; returns a process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args, out)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
