"""Reconstruction task (§V-B1, Table II).

A fitted model scores every feature of every field for held-out users; the
metrics compare those scores against the users' actual profiles.  The paper
reports AUC and mAP both per field and *overall* (all fields concatenated
into one ranking) — the overall number is where single-softmax models
(Mult-VAE) have an edge and the field-aware model intentionally gives it up,
so we report both.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.base import UserRepresentationModel
from repro.data.dataset import MultiFieldDataset
from repro.data.sparse import CSRMatrix
from repro.metrics import mean_ranking_metrics

__all__ = ["ReconstructionResult", "evaluate_reconstruction"]


@dataclass
class ReconstructionResult:
    """Per-field and overall AUC/mAP for one model."""

    model_name: str
    per_field: dict[str, dict[str, float]] = field(default_factory=dict)
    overall: dict[str, float] = field(default_factory=dict)

    def row(self, metric: str) -> dict[str, float]:
        """One table row: ``{"Overall": x, "ch1": …}`` for ``metric``."""
        out = {"Overall": self.overall.get(metric, float("nan"))}
        out.update({name: vals.get(metric, float("nan"))
                    for name, vals in self.per_field.items()})
        return out


def _concat_positives(dataset: MultiFieldDataset) -> CSRMatrix:
    """All fields merged into one CSR over the concatenated ``J`` columns."""
    offsets = dataset.schema.offsets()
    n = dataset.n_users
    counts = np.zeros(n, dtype=np.int64)
    for name in dataset.field_names:
        counts += dataset.field(name).row_nnz()
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    indices = np.empty(indptr[-1], dtype=np.int64)
    cursor = indptr[:-1].copy()
    for name in dataset.field_names:
        csr = dataset.field(name)
        off = offsets[name]
        for i in range(n):
            lo, hi = csr.indptr[i], csr.indptr[i + 1]
            m = hi - lo
            if m:
                indices[cursor[i]:cursor[i] + m] = csr.indices[lo:hi] + off
                cursor[i] += m
    return CSRMatrix(indptr, indices, None, dataset.schema.total_vocab)


def evaluate_reconstruction(model: UserRepresentationModel,
                            eval_dataset: MultiFieldDataset,
                            ) -> ReconstructionResult:
    """Score ``eval_dataset`` with a fitted model and compute Table II metrics.

    The model sees the full profile as input (reconstruction, not fold-in)
    and must rank each user's observed features above the unobserved ones.
    """
    result = ReconstructionResult(model_name=model.name)
    field_scores: dict[str, np.ndarray] = {}
    for name in eval_dataset.field_names:
        scores = model.score_field(eval_dataset, name)
        field_scores[name] = scores
        result.per_field[name] = mean_ranking_metrics(
            scores, eval_dataset.field(name).binarize())
    overall_scores = np.concatenate(
        [field_scores[name] for name in eval_dataset.field_names], axis=1)
    result.overall = mean_ranking_metrics(overall_scores,
                                          _concat_positives(eval_dataset))
    return result
