"""Evaluation tasks from §V: data reconstruction and tag prediction."""

from repro.tasks.reconstruction import ReconstructionResult, evaluate_reconstruction
from repro.tasks.tag_prediction import TagPredictionResult, evaluate_tag_prediction

__all__ = ["evaluate_reconstruction", "ReconstructionResult",
           "evaluate_tag_prediction", "TagPredictionResult"]
