"""Tag-prediction task (§V-B2, Tables III/IV).

The matching-stage task: for held-out users, the channel fields (everything
except the target field) are the *fold-in* input; the model must score the
target field's features.  Observed tags are positives, an equal number of
sampled unobserved tags are negatives, and AUC/mAP are averaged over users —
exactly the protocol of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import UserRepresentationModel
from repro.data.dataset import MultiFieldDataset
from repro.metrics import sampled_negative_metrics

__all__ = ["TagPredictionResult", "evaluate_tag_prediction"]


@dataclass
class TagPredictionResult:
    """AUC/mAP of one model on the tag-prediction task."""

    model_name: str
    auc: float
    map: float
    n_users: int


def evaluate_tag_prediction(model: UserRepresentationModel,
                            eval_dataset: MultiFieldDataset,
                            target_field: str = "tag",
                            rng: int | None = 0,
                            negatives_per_positive: int = 1,
                            ) -> TagPredictionResult:
    """Fold-in evaluation: blank ``target_field``, score it, rank held-out tags.

    Parameters
    ----------
    model:
        A fitted :class:`UserRepresentationModel`.
    eval_dataset:
        Held-out users *including* their true target-field features (used as
        ground truth; the model never sees them).
    target_field:
        The field to predict (``"tag"`` in the paper).
    rng:
        Seed for negative sampling, fixed so model comparisons share negatives.
    """
    if target_field not in eval_dataset.field_names:
        raise KeyError(f"dataset has no field '{target_field}'")
    fold_in = eval_dataset.blank_fields([target_field])
    scores = model.score_field(fold_in, target_field)
    metrics = sampled_negative_metrics(
        scores, eval_dataset.field(target_field).binarize(), rng=rng,
        negatives_per_positive=negatives_per_positive)
    return TagPredictionResult(model_name=model.name, auc=metrics["auc"],
                               map=metrics["map"], n_users=metrics["n_users"])
