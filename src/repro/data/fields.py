"""Field schema: named feature fields with per-field vocabularies.

The paper groups user features into ``K`` fields (e.g. ``ch1``, ``ch2``,
``ch3``, ``tag`` for the Kandian dataset).  A :class:`FieldSpec` describes one
field; a :class:`FieldSchema` is the ordered collection the dataset and models
share.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

__all__ = ["FieldSpec", "FieldSchema"]


@dataclass(frozen=True)
class FieldSpec:
    """Description of one feature field.

    Attributes
    ----------
    name:
        Field identifier, e.g. ``"ch1"`` or ``"tag"``.
    vocab_size:
        Number of distinct features ``J_k`` in this field.
    sample:
        Whether the inter-batch feature sampling of §IV-C3 applies to this
        field during training (the paper enables it for super-sparse fields
        such as topic tags).
    alpha:
        Default reconstruction-loss weight ``α_k`` for this field (Eq. 7).
    """

    name: str
    vocab_size: int
    sample: bool = False
    alpha: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("field name must be non-empty")
        if self.vocab_size <= 0:
            raise ValueError(f"field '{self.name}': vocab_size must be positive")
        if self.alpha < 0:
            raise ValueError(f"field '{self.name}': alpha must be non-negative")


class FieldSchema:
    """Ordered, name-addressable collection of :class:`FieldSpec`."""

    def __init__(self, specs: Sequence[FieldSpec]) -> None:
        if not specs:
            raise ValueError("schema needs at least one field")
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate field names: {names}")
        self._specs: tuple[FieldSpec, ...] = tuple(specs)
        self._by_name: dict[str, FieldSpec] = {s.name: s for s in specs}

    @property
    def names(self) -> list[str]:
        return [s.name for s in self._specs]

    @property
    def total_vocab(self) -> int:
        """Total feature count ``J = Σ J_k`` across fields."""
        return sum(s.vocab_size for s in self._specs)

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[FieldSpec]:
        return iter(self._specs)

    def __getitem__(self, key: str | int) -> FieldSpec:
        if isinstance(key, int):
            return self._specs[key]
        try:
            return self._by_name[key]
        except KeyError:
            raise KeyError(f"unknown field '{key}'; have {self.names}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __eq__(self, other) -> bool:
        return isinstance(other, FieldSchema) and self._specs == other._specs

    def __repr__(self) -> str:
        parts = ", ".join(f"{s.name}(J={s.vocab_size})" for s in self._specs)
        return f"FieldSchema([{parts}])"

    def subset(self, names: Sequence[str]) -> "FieldSchema":
        """Schema restricted to ``names`` (order taken from the argument)."""
        return FieldSchema([self[name] for name in names])

    def alphas(self) -> dict[str, float]:
        return {s.name: s.alpha for s in self._specs}

    def offsets(self) -> dict[str, int]:
        """Start offset of each field in the concatenated ``J``-dim space."""
        out: dict[str, int] = {}
        acc = 0
        for spec in self._specs:
            out[spec.name] = acc
            acc += spec.vocab_size
        return out
