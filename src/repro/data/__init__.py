"""Multi-field user data: schema, sparse storage, batching, and generators."""

from repro.data.dataset import DatasetStats, FieldBatch, MultiFieldDataset, UserBatch
from repro.data.fields import FieldSchema, FieldSpec
from repro.data.loaders import (PAPER_STATS, get_dataset, make_kd_like,
                                make_qb_like, make_sc_like)
from repro.data.sparse import CSRMatrix
from repro.data.synthetic import (SyntheticDataset, TopicFieldConfig,
                                  barabasi_albert_profiles, generate_topic_profiles)

__all__ = [
    "FieldSpec", "FieldSchema", "CSRMatrix",
    "MultiFieldDataset", "UserBatch", "FieldBatch", "DatasetStats",
    "TopicFieldConfig", "SyntheticDataset", "generate_topic_profiles",
    "barabasi_albert_profiles",
    "make_sc_like", "make_kd_like", "make_qb_like", "get_dataset", "PAPER_STATS",
]
