"""Compact CSR storage for sparse multi-hot user rows.

The user feature matrix ``U`` of the paper is extremely sparse
(``N̄ ≪ J``); each field is stored as a CSR block: ``indptr`` (row extents),
``indices`` (per-field feature ids) and optional ``weights``.  The class is
intentionally small — just what the dataset, models, and evaluators need —
with an escape hatch to :mod:`scipy.sparse` for the matrix-factorisation
baselines.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["CSRMatrix"]


class CSRMatrix:
    """A read-only CSR matrix of non-negative feature weights.

    Parameters
    ----------
    indptr:
        ``(n_rows + 1,)`` int64; row ``i`` spans ``indices[indptr[i]:indptr[i+1]]``.
    indices:
        ``(nnz,)`` int64 column (feature) ids, each in ``[0, n_cols)``.
    weights:
        ``(nnz,)`` float64 weights; ``None`` means implicit all-ones.
    n_cols:
        Number of columns (the field vocabulary size ``J_k``).
    """

    __slots__ = ("indptr", "indices", "weights", "n_cols")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray,
                 weights: np.ndarray | None, n_cols: int) -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.weights = None if weights is None else np.asarray(weights, dtype=np.float64)
        self.n_cols = int(n_cols)
        if self.indptr.ndim != 1 or self.indptr.size < 1:
            raise ValueError("indptr must be a 1-D array of length n_rows+1")
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise ValueError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.indices.size and (self.indices.min() < 0 or self.indices.max() >= self.n_cols):
            raise ValueError("column indices out of range")
        if self.weights is not None and self.weights.shape != self.indices.shape:
            raise ValueError("weights must align with indices")

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_rows(cls, rows: Sequence[Iterable[int]], n_cols: int,
                  weights: Sequence[Iterable[float]] | None = None) -> "CSRMatrix":
        """Build from per-row iterables of feature ids (and optional weights)."""
        indptr = np.zeros(len(rows) + 1, dtype=np.int64)
        chunks: list[np.ndarray] = []
        weight_chunks: list[np.ndarray] = []
        for i, row in enumerate(rows):
            ids = np.asarray(list(row), dtype=np.int64)
            chunks.append(ids)
            indptr[i + 1] = indptr[i] + ids.size
            if weights is not None:
                w = np.asarray(list(weights[i]), dtype=np.float64)
                if w.size != ids.size:
                    raise ValueError(f"row {i}: {w.size} weights for {ids.size} ids")
                weight_chunks.append(w)
        indices = np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
        w_all = np.concatenate(weight_chunks) if weights is not None and weight_chunks \
            else (None if weights is None else np.empty(0))
        return cls(indptr, indices, w_all, n_cols)

    @classmethod
    def empty(cls, n_rows: int, n_cols: int) -> "CSRMatrix":
        return cls(np.zeros(n_rows + 1, dtype=np.int64),
                   np.empty(0, dtype=np.int64), None, n_cols)

    # -- introspection ---------------------------------------------------------

    @property
    def n_rows(self) -> int:
        return self.indptr.size - 1

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n_rows, self.n_cols)

    @property
    def nnz(self) -> int:
        return self.indices.size

    def row_nnz(self) -> np.ndarray:
        """Number of stored features per row (``N_i^k`` in the paper)."""
        return np.diff(self.indptr)

    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(ids, weights)`` for row ``i`` (weights default to ones)."""
        lo, hi = self.indptr[i], self.indptr[i + 1]
        ids = self.indices[lo:hi]
        w = np.ones(ids.size) if self.weights is None else self.weights[lo:hi]
        return ids, w

    def __len__(self) -> int:
        return self.n_rows

    def __repr__(self) -> str:
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"

    # -- transforms ------------------------------------------------------------

    def row_range(self, start: int, stop: int,
                  ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """Zero-copy slice of the contiguous row block ``[start, stop)``.

        Returns ``(offsets, indices, weights)`` where ``offsets`` is rebased
        to start at 0 — exactly the arrays ``take_rows(np.arange(start,
        stop))`` would produce, but as views into the parent storage (no
        gather).  This is the fast path for batching a pre-shuffled dataset.
        """
        if not 0 <= start <= stop <= self.n_rows:
            raise ValueError(f"row range [{start}, {stop}) out of bounds "
                             f"for {self.n_rows} rows")
        lo, hi = self.indptr[start], self.indptr[stop]
        offsets = self.indptr[start:stop + 1] - lo
        weights = None if self.weights is None else self.weights[lo:hi]
        return offsets, self.indices[lo:hi], weights

    def take_rows(self, row_idx: np.ndarray) -> "CSRMatrix":
        """Return a new CSR containing only ``row_idx`` (in the given order)."""
        row_idx = np.asarray(row_idx, dtype=np.int64)
        counts = self.indptr[row_idx + 1] - self.indptr[row_idx]
        new_indptr = np.zeros(row_idx.size + 1, dtype=np.int64)
        np.cumsum(counts, out=new_indptr[1:])
        gather = _span_gather(self.indptr[row_idx], counts)
        indices = self.indices[gather]
        weights = None if self.weights is None else self.weights[gather]
        return CSRMatrix(new_indptr, indices, weights, self.n_cols)

    def binarize(self) -> "CSRMatrix":
        """Drop weights, keeping the multi-hot structure only."""
        return CSRMatrix(self.indptr, self.indices, None, self.n_cols)

    def to_dense(self, binary: bool = False) -> np.ndarray:
        """Materialise as a dense ``(n_rows, n_cols)`` array. Eval-scale only."""
        out = np.zeros(self.shape)
        rows = np.repeat(np.arange(self.n_rows), self.row_nnz())
        vals = np.ones(self.nnz) if (binary or self.weights is None) else self.weights
        np.add.at(out, (rows, self.indices), vals)
        if binary:
            out = (out > 0).astype(np.float64)
        return out

    def to_scipy(self):
        """Convert to :class:`scipy.sparse.csr_matrix` (for SVD/LDA baselines)."""
        from scipy import sparse

        data = np.ones(self.nnz) if self.weights is None else self.weights
        return sparse.csr_matrix((data, self.indices.copy(), self.indptr.copy()),
                                 shape=self.shape)

    def column_counts(self) -> np.ndarray:
        """Per-feature occurrence counts across all rows (popularity)."""
        return np.bincount(self.indices, minlength=self.n_cols).astype(np.int64)


def _span_gather(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Indices covering ``[starts[i], starts[i]+counts[i])`` for every span."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # classic vectorised multi-range trick
    out = np.ones(total, dtype=np.int64)
    ends = np.cumsum(counts)
    nonzero = counts > 0
    first_pos = np.concatenate(([0], ends[:-1]))[nonzero]
    out[first_pos] = starts[nonzero]
    out[first_pos[1:]] -= (starts[nonzero][:-1] + counts[nonzero][:-1] - 1)
    return np.cumsum(out)
