"""Multi-field user dataset: the feature matrix ``U`` of the paper.

A :class:`MultiFieldDataset` stores one CSR block per field, keyed by a shared
:class:`~repro.data.fields.FieldSchema`.  It provides the access patterns all
models and tasks need: batch iteration over sparse rows, user subsetting,
field projection (for fold-in tag prediction), splitting, and the summary
statistics reported in Table I.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.data.fields import FieldSchema, FieldSpec
from repro.data.sparse import CSRMatrix
from repro.utils.rng import new_rng

__all__ = ["FieldBatch", "UserBatch", "MultiFieldDataset", "DatasetStats"]


@dataclass
class FieldBatch:
    """Sparse rows of one field for a batch of users.

    ``indices`` is the flat concatenation of per-user feature ids; user ``i``
    of the batch owns ``indices[offsets[i]:offsets[i+1]]``.

    The derived arrays every forward pass needs — the user-id-per-index
    segment array and the sorted unique feature set — are deterministic per
    batch, so they are computed lazily once and cached (``embedding_bag``,
    candidate selection, and ``dense_targets`` all reuse them instead of
    rebuilding ``np.repeat``/``np.unique`` results each call).
    """

    indices: np.ndarray
    offsets: np.ndarray
    weights: np.ndarray | None
    vocab_size: int
    _segment: np.ndarray | None = field(default=None, repr=False, compare=False)
    _unique: tuple[np.ndarray, np.ndarray] | None = field(
        default=None, repr=False, compare=False)

    @property
    def n_users(self) -> int:
        return self.offsets.size - 1

    def counts(self) -> np.ndarray:
        """Features per user in this batch (``N_i^k``)."""
        return np.diff(self.offsets)

    def segment_ids(self) -> np.ndarray:
        """Batch-user index owning each flat index (cached ``np.repeat``)."""
        if self._segment is None or self._segment.size != self.indices.size:
            self._segment = np.repeat(np.arange(self.n_users), self.counts())
        return self._segment

    def unique_with_counts(self) -> tuple[np.ndarray, np.ndarray]:
        """Cached ``np.unique(indices, return_counts=True)``."""
        if self._unique is None:
            self._unique = np.unique(self.indices, return_counts=True)
        return self._unique

    def unique_features(self) -> np.ndarray:
        """Sorted distinct feature ids present in the batch.

        This is the candidate set of the *batched softmax* (§IV-C2).
        """
        return self.unique_with_counts()[0]

    def warm_caches(self) -> "FieldBatch":
        """Populate the lazy caches eagerly (prefetch-thread hook)."""
        self.segment_ids()
        self.unique_with_counts()
        return self

    def dense_targets(self, columns: np.ndarray) -> np.ndarray:
        """Counts restricted to ``columns`` as a dense ``(B, len(columns))`` array.

        Features outside ``columns`` are dropped — exactly the behaviour of the
        batched softmax with feature sampling, where removed candidates do not
        contribute to the multinomial likelihood.
        """
        columns = np.asarray(columns, dtype=np.int64)
        pos = np.searchsorted(columns, self.indices)
        pos = np.clip(pos, 0, max(columns.size - 1, 0))
        keep = columns.size > 0
        inside = (columns[pos] == self.indices) if keep else np.zeros(self.indices.size, bool)
        out = np.zeros((self.n_users, columns.size))
        if not inside.any():
            return out
        row_of = self.segment_ids()
        vals = np.ones(self.indices.size) if self.weights is None else self.weights
        np.add.at(out, (row_of[inside], pos[inside]), vals[inside])
        return out


@dataclass
class UserBatch:
    """A batch of users with one :class:`FieldBatch` per field."""

    user_ids: np.ndarray
    fields: dict[str, FieldBatch]

    @property
    def n_users(self) -> int:
        return self.user_ids.size

    def __getitem__(self, field: str) -> FieldBatch:
        return self.fields[field]


@dataclass(frozen=True)
class DatasetStats:
    """The Table I summary row for a dataset."""

    n_users: int
    n_fields: int
    avg_features: float           # N̄: mean observed features per user
    total_vocab: int              # J = Σ J_k
    per_field_vocab: dict[str, int]
    per_field_avg: dict[str, float]

    def __str__(self) -> str:
        return (f"users={self.n_users:,} fields={self.n_fields} "
                f"N̄={self.avg_features:.2f} J={self.total_vocab:,}")


class MultiFieldDataset:
    """Sparse multi-field user feature matrix.

    Parameters
    ----------
    schema:
        Field schema; ``fields[name].n_cols`` must equal the spec vocab size.
    fields:
        Mapping ``field name -> CSRMatrix`` with a common row count.
    """

    def __init__(self, schema: FieldSchema, fields: Mapping[str, CSRMatrix]) -> None:
        missing = [name for name in schema.names if name not in fields]
        if missing:
            raise ValueError(f"missing CSR blocks for fields: {missing}")
        n_rows = {name: fields[name].n_rows for name in schema.names}
        if len(set(n_rows.values())) != 1:
            raise ValueError(f"inconsistent user counts across fields: {n_rows}")
        for spec in schema:
            if fields[spec.name].n_cols != spec.vocab_size:
                raise ValueError(
                    f"field '{spec.name}': CSR has {fields[spec.name].n_cols} columns, "
                    f"schema says {spec.vocab_size}")
        self.schema = schema
        self._fields: dict[str, CSRMatrix] = {name: fields[name] for name in schema.names}

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_user_lists(cls, schema: FieldSchema,
                        rows: Mapping[str, Sequence[Sequence[int]]],
                        weights: Mapping[str, Sequence[Sequence[float]]] | None = None,
                        ) -> "MultiFieldDataset":
        """Build from per-field lists of per-user feature-id lists."""
        blocks = {}
        for spec in schema:
            w = None if weights is None or spec.name not in weights else weights[spec.name]
            blocks[spec.name] = CSRMatrix.from_rows(rows[spec.name], spec.vocab_size, w)
        return cls(schema, blocks)

    # -- introspection ----------------------------------------------------------

    @property
    def n_users(self) -> int:
        return self._fields[self.schema.names[0]].n_rows

    @property
    def field_names(self) -> list[str]:
        return self.schema.names

    def field(self, name: str) -> CSRMatrix:
        try:
            return self._fields[name]
        except KeyError:
            raise KeyError(f"unknown field '{name}'; have {self.field_names}") from None

    def __len__(self) -> int:
        return self.n_users

    def __repr__(self) -> str:
        return f"MultiFieldDataset(users={self.n_users}, fields={self.field_names})"

    def stats(self) -> DatasetStats:
        per_field_vocab = {s.name: s.vocab_size for s in self.schema}
        per_field_avg = {name: (csr.nnz / max(csr.n_rows, 1))
                         for name, csr in self._fields.items()}
        total_nnz = sum(csr.nnz for csr in self._fields.values())
        return DatasetStats(
            n_users=self.n_users,
            n_fields=len(self.schema),
            avg_features=total_nnz / max(self.n_users, 1),
            total_vocab=self.schema.total_vocab,
            per_field_vocab=per_field_vocab,
            per_field_avg=per_field_avg,
        )

    def feature_popularity(self, field: str) -> np.ndarray:
        """Occurrence count of every feature in ``field`` (power-law shaped)."""
        return self.field(field).column_counts()

    # -- batching ----------------------------------------------------------------

    def batch(self, user_idx: np.ndarray) -> UserBatch:
        """Materialise a :class:`UserBatch` for the given user indices."""
        user_idx = np.asarray(user_idx, dtype=np.int64)
        fields = {}
        for name, csr in self._fields.items():
            sub = csr.take_rows(user_idx)
            fields[name] = FieldBatch(indices=sub.indices, offsets=sub.indptr,
                                      weights=sub.weights, vocab_size=sub.n_cols)
        return UserBatch(user_ids=user_idx, fields=fields)

    def iter_batches(self, batch_size: int, shuffle: bool = True,
                     rng: np.random.Generator | int | None = None,
                     ) -> Iterator[UserBatch]:
        """Yield batches covering every user once (the inner loop of Alg. 1)."""
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive: {batch_size}")
        order = np.arange(self.n_users)
        if shuffle:
            new_rng(rng).shuffle(order)
        for start in range(0, self.n_users, batch_size):
            yield self.batch(order[start:start + batch_size])

    # -- restructuring -------------------------------------------------------------

    def subset(self, user_idx: np.ndarray) -> "MultiFieldDataset":
        """Dataset restricted to (and reordered by) ``user_idx``."""
        user_idx = np.asarray(user_idx, dtype=np.int64)
        return MultiFieldDataset(
            self.schema,
            {name: csr.take_rows(user_idx) for name, csr in self._fields.items()})

    def project_fields(self, names: Sequence[str]) -> "MultiFieldDataset":
        """Keep only ``names`` — e.g. drop ``tag`` for fold-in prediction."""
        return MultiFieldDataset(self.schema.subset(names),
                                 {n: self._fields[n] for n in names})

    def blank_fields(self, names: Sequence[str]) -> "MultiFieldDataset":
        """Keep the schema but empty out the rows of ``names``.

        Unlike :meth:`project_fields` the field still exists (models keep
        their shapes); its rows just contain no features.  This is the fold-in
        encoding used at tag-prediction time.
        """
        blocks = dict(self._fields)
        for name in names:
            spec: FieldSpec = self.schema[name]
            blocks[name] = CSRMatrix.empty(self.n_users, spec.vocab_size)
        return MultiFieldDataset(self.schema, blocks)

    def split(self, fractions: Sequence[float],
              rng: np.random.Generator | int | None = None,
              ) -> list["MultiFieldDataset"]:
        """Random disjoint user splits with the given fractions (sum ≤ 1)."""
        if any(f <= 0 for f in fractions):
            raise ValueError(f"fractions must be positive: {fractions}")
        if sum(fractions) > 1.0 + 1e-9:
            raise ValueError(f"fractions sum to more than 1: {fractions}")
        order = np.arange(self.n_users)
        new_rng(rng).shuffle(order)
        out = []
        start = 0
        for frac in fractions:
            count = int(round(frac * self.n_users))
            out.append(self.subset(order[start:start + count]))
            start += count
        return out

    def to_dense(self, binary: bool = True) -> np.ndarray:
        """Concatenate all fields into a dense ``(N, J)`` matrix (eval scale)."""
        return np.concatenate(
            [self._fields[name].to_dense(binary=binary) for name in self.field_names],
            axis=1)

    def to_scipy(self, binary: bool = True):
        """Concatenate all fields into one ``scipy.sparse.csr_matrix``."""
        from scipy import sparse

        blocks = []
        for name in self.field_names:
            mat = self._fields[name].to_scipy()
            if binary:
                mat.data = np.ones_like(mat.data)
            blocks.append(mat)
        return sparse.hstack(blocks, format="csr")
