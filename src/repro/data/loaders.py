"""Named dataset presets mirroring the paper's KD / QB / SC datasets.

The paper's datasets (Table I) are Tencent production data and unavailable;
these presets generate synthetic analogues with the same *shape*: four fields
(three channel hierarchies of increasing granularity plus a huge sparse tag
field), power-law popularity, ``N̄ ≪ J``, and a *super-sparse* tag field
(few observed tags against a huge vocabulary — the regime that motivates the
paper's feature sampling).  ``scale`` shrinks or grows the
preset uniformly so tests, examples, and benchmarks can pick their size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.synthetic import SyntheticDataset, TopicFieldConfig, generate_topic_profiles

__all__ = ["PAPER_STATS", "PaperDatasetStats", "make_sc_like", "make_kd_like",
           "make_qb_like", "get_dataset"]


@dataclass(frozen=True)
class PaperDatasetStats:
    """Numbers reported in the paper's Table I (for EXPERIMENTS.md diffs)."""

    name: str
    n_users: float
    n_fields: int
    avg_features: float
    total_vocab: float


PAPER_STATS = {
    "KD": PaperDatasetStats("KD", 0.65e9, 4, 193.68, 1.32e9),
    "QB": PaperDatasetStats("QB", 0.33e9, 4, 123.69, 0.52e9),
    "SC": PaperDatasetStats("SC", 1e6, 4, 211.16, 130_159),
}

_CHANNEL_FIELDS = ("ch1", "ch2", "ch3")
TAG_FIELD = "tag"


def _four_field_config(vocabs: tuple[int, int, int, int],
                       avgs: tuple[float, float, float, float],
                       exponents: tuple[float, float, float, float],
                       ) -> list[TopicFieldConfig]:
    names = (*_CHANNEL_FIELDS, TAG_FIELD)
    return [
        TopicFieldConfig(name, vocab, avg, exponent, sample=(name == TAG_FIELD))
        for name, vocab, avg, exponent in zip(names, vocabs, avgs, exponents)
    ]


def make_sc_like(n_users: int = 4000, scale: float = 1.0,
                 n_topics: int = 8, seed: int | np.random.Generator | None = 0,
                 ) -> SyntheticDataset:
    """Short-Content-like dataset: million-scale analogue (here: thousands).

    SC is the paper's smallest dataset (1M users, J≈130k); the default preset
    is ~4k users / J≈5.4k, preserving the sparsity ratio N̄/J.
    """
    s = max(scale, 1e-3)
    vocabs = (max(int(32 * s), 8), max(int(256 * s), 16),
              max(int(1024 * s), 32), max(int(4096 * s), 64))
    return generate_topic_profiles(
        n_users=int(n_users * s) if scale != 1.0 else n_users,
        fields=_four_field_config(vocabs, (6.0, 10.0, 16.0, 8.0),
                                  (1.0, 1.0, 1.0, 1.0)),
        n_topics=n_topics, topic_purity=0.85, field_emphasis_sigma=0.8,
        n_personas=max(n_users // 20, 16), personal_blend=0.45,
        seed=seed, name="SC-like")


def make_kd_like(n_users: int = 20000, scale: float = 1.0,
                 n_topics: int = 12, seed: int | np.random.Generator | None = 0,
                 ) -> SyntheticDataset:
    """Kandian-like dataset: billion-scale analogue (largest preset).

    KD is the paper's largest dataset (0.65B users, J≈1.32B); the preset keeps
    the *relative* field imbalance (tags dominate J) and heavier profiles.
    """
    s = max(scale, 1e-3)
    vocabs = (max(int(64 * s), 8), max(int(512 * s), 16),
              max(int(4096 * s), 32), max(int(30000 * s), 64))
    return generate_topic_profiles(
        n_users=int(n_users * s) if scale != 1.0 else n_users,
        fields=_four_field_config(vocabs, (8.0, 16.0, 28.0, 20.0),
                                  (1.0, 1.0, 1.0, 1.0)),
        n_topics=n_topics, topic_purity=0.85, field_emphasis_sigma=0.8,
        n_personas=max(n_users // 20, 16), personal_blend=0.45,
        seed=seed, name="KD-like")


def make_qb_like(n_users: int = 12000, scale: float = 1.0,
                 n_topics: int = 10, seed: int | np.random.Generator | None = 0,
                 ) -> SyntheticDataset:
    """QQ-Browser-like dataset: the paper's mid-size billion-scale dataset."""
    s = max(scale, 1e-3)
    vocabs = (max(int(48 * s), 8), max(int(384 * s), 16),
              max(int(2048 * s), 32), max(int(12000 * s), 64))
    return generate_topic_profiles(
        n_users=int(n_users * s) if scale != 1.0 else n_users,
        fields=_four_field_config(vocabs, (6.0, 12.0, 22.0, 14.0),
                                  (1.0, 1.0, 1.0, 1.0)),
        n_topics=n_topics, topic_purity=0.85, field_emphasis_sigma=0.8,
        n_personas=max(n_users // 20, 16), personal_blend=0.45,
        seed=seed, name="QB-like")


_REGISTRY = {"sc": make_sc_like, "kd": make_kd_like, "qb": make_qb_like}


def get_dataset(name: str, **kwargs) -> SyntheticDataset:
    """Load a preset by name (``"sc"``, ``"kd"``, ``"qb"``, case-insensitive)."""
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(f"unknown dataset '{name}'; available: {sorted(_REGISTRY)}")
    return _REGISTRY[key](**kwargs)
