"""Synthetic multi-field user-profile generators.

The paper evaluates on proprietary Tencent datasets (KD, QB, SC).  Those are
not available, so this module generates profiles that match their *relevant
statistics*:

* a latent-topic model ties fields together (users mostly draw features
  popular within their topic), so fold-in tag prediction is learnable and the
  t-SNE case study (Fig 4) has ground-truth topic labels;
* within-topic feature popularity is power-law, giving the long-tail
  marginals that motivate the batched softmax and feature sampling;
* fields have very different vocabulary sizes (channel hierarchies are small,
  tags are huge), reproducing the multi-field imbalance the α weights target.

For the scalability study (Fig 9) the paper generates random samples with the
Barabási–Albert preferential-attachment model; :func:`barabasi_albert_profiles`
implements a bipartite chunked variant of it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import MultiFieldDataset
from repro.data.fields import FieldSchema, FieldSpec
from repro.data.sparse import CSRMatrix
from repro.utils.rng import new_rng

__all__ = [
    "TopicFieldConfig", "SyntheticDataset", "generate_topic_profiles",
    "barabasi_albert_profiles",
]


@dataclass(frozen=True)
class TopicFieldConfig:
    """Configuration of one generated field.

    Attributes
    ----------
    name: field name.
    vocab_size: number of distinct features ``J_k``.
    avg_per_user: Poisson mean of the number of feature draws per user.
    exponent: power-law exponent of within-topic feature popularity.
    sample: mark the field for training-time feature sampling (§IV-C3).
    """

    name: str
    vocab_size: int
    avg_per_user: float
    exponent: float = 1.1
    sample: bool = False


@dataclass
class SyntheticDataset:
    """A generated dataset plus its ground truth."""

    dataset: MultiFieldDataset
    topics: np.ndarray            # (N,) primary topic of each user
    theta: np.ndarray             # (N, T) topic mixture of each user
    name: str = "synthetic"
    personas: np.ndarray | None = None   # (N,) fine-grained persona ids

    @property
    def n_topics(self) -> int:
        return self.theta.shape[1]


def _power_law_cdf(vocab_size: int, exponent: float) -> np.ndarray:
    """Cumulative distribution of ``p_j ∝ (j+1)^{-exponent}`` over ranks."""
    weights = (np.arange(1, vocab_size + 1)) ** (-exponent)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    return cdf


def _sample_topics_per_draw(theta: np.ndarray, user_of_draw: np.ndarray,
                            rng: np.random.Generator) -> np.ndarray:
    """Draw one topic per event from each owning user's mixture."""
    cum = np.cumsum(theta, axis=1)
    u = rng.random(user_of_draw.size)
    # topic = first index whose cumulative mass exceeds u
    return (u[:, None] > cum[user_of_draw]).sum(axis=1).clip(max=theta.shape[1] - 1)


def generate_topic_profiles(n_users: int,
                            fields: list[TopicFieldConfig],
                            n_topics: int = 8,
                            topic_purity: float = 0.85,
                            field_emphasis_sigma: float = 0.0,
                            n_personas: int = 0,
                            personal_blend: float = 0.0,
                            persona_pool_size: int = 8,
                            seed: int | np.random.Generator | None = 0,
                            name: str = "synthetic") -> SyntheticDataset:
    """Generate correlated multi-field user profiles from a latent topic model.

    Each user gets a primary topic and a mixture ``θ_i`` concentrated on it
    (``topic_purity`` controls how concentrated).  Every feature draw first
    picks a topic from ``θ_i`` and then a feature from that topic's power-law
    distribution (a topic-specific permutation of the global popularity
    ranking), so features co-occurring within a topic are correlated across
    fields.

    ``field_emphasis_sigma > 0`` gives every user a log-normal activity
    multiplier *per field*: some users are tag-heavy, others channel-heavy.
    This is the cross-field "ordering bias" of real multi-source profiles the
    paper targets — a single softmax over all fields must spend capacity
    modelling each user's field shares, while per-field multinomials are
    invariant to them.

    ``n_personas > 0`` adds fine-grained user structure *beyond* topics: every
    user belongs to one of ``n_personas`` personas, each owning a small pool
    of favourite features per field, and a ``personal_blend`` fraction of
    draws comes from that pool.  The same persona drives every field, so a
    user's channels reveal which specific tags they favour — structure far
    finer than the topic count, which mixture models (LDA) cannot represent
    but a non-linear encoder can.  Real profiles have exactly this long-tail
    idiosyncrasy; without it, synthetic data degenerates into a pure LDA
    generative process and unrealistically crowns LDA.
    """
    if n_users <= 0:
        raise ValueError(f"n_users must be positive: {n_users}")
    if not 0.0 <= topic_purity <= 1.0:
        raise ValueError(f"topic_purity must be in [0, 1]: {topic_purity}")
    if n_topics <= 0:
        raise ValueError(f"n_topics must be positive: {n_topics}")
    rng = new_rng(seed)

    if not 0.0 <= personal_blend < 1.0:
        raise ValueError(f"personal_blend must be in [0, 1): {personal_blend}")
    if personal_blend > 0.0 and n_personas <= 0:
        raise ValueError("personal_blend requires n_personas > 0")

    # -- users: primary topic + mixture ---------------------------------------
    primary = rng.integers(0, n_topics, size=n_users)
    base = rng.dirichlet(np.ones(n_topics), size=n_users)
    theta = (1.0 - topic_purity) * base
    theta[np.arange(n_users), primary] += topic_purity
    theta /= theta.sum(axis=1, keepdims=True)
    persona = rng.integers(0, n_personas, size=n_users) if n_personas > 0 \
        else None

    # -- fields -----------------------------------------------------------------
    blocks: dict[str, CSRMatrix] = {}
    specs: list[FieldSpec] = []
    background_blend = 0.1  # shared head mass every topic draws from
    for cfg in fields:
        if cfg.vocab_size <= 0 or cfg.avg_per_user <= 0:
            raise ValueError(f"field '{cfg.name}': vocab and avg_per_user must be positive")
        # Topic-specific vocabulary blocks: each topic owns a contiguous slice
        # of a global permutation, so topic membership concentrates a user's
        # features on ~1/T of the vocabulary — a strong signal — while the
        # within-block power law stays moderate (a weak popularity shortcut).
        global_perm = rng.permutation(cfg.vocab_size)
        block_size = max(cfg.vocab_size // n_topics, min(cfg.vocab_size, 8))
        # evenly spaced starts cover the vocabulary uniformly, keeping the
        # global popularity curve (and thus the popularity shortcut) mild
        block_starts = (np.arange(n_topics) * cfg.vocab_size) // n_topics
        block_cdf = _power_law_cdf(block_size, cfg.exponent)
        global_cdf = _power_law_cdf(cfg.vocab_size, cfg.exponent)

        rate = np.full(n_users, cfg.avg_per_user)
        if field_emphasis_sigma > 0:
            rate = rate * rng.lognormal(0.0, field_emphasis_sigma, size=n_users)
        n_draws = np.maximum(rng.poisson(rate), 1)
        user_of_draw = np.repeat(np.arange(n_users), n_draws)
        topic_of_draw = _sample_topics_per_draw(theta, user_of_draw, rng)
        n_total = user_of_draw.size

        ranks = np.minimum(np.searchsorted(block_cdf, rng.random(n_total),
                                           side="right"), block_size - 1)
        positions = (block_starts[topic_of_draw] + ranks) % cfg.vocab_size
        features = global_perm[positions]

        background = rng.random(n_total) < background_blend
        n_background = int(background.sum())
        if n_background:
            bg_ranks = np.minimum(
                np.searchsorted(global_cdf, rng.random(n_background),
                                side="right"), cfg.vocab_size - 1)
            features[background] = global_perm[bg_ranks]

        if persona is not None and personal_blend > 0.0:
            # Persona feature pools drawn from the persona's own topic block,
            # so personal favourites stay topically coherent but are far
            # finer-grained than any topic-level model can represent.
            pool_size = min(persona_pool_size, cfg.vocab_size)
            persona_topic = rng.integers(0, n_topics, size=n_personas)
            pool_ranks = np.minimum(
                np.searchsorted(block_cdf, rng.random((n_personas, pool_size)),
                                side="right"), block_size - 1)
            pool_positions = (block_starts[persona_topic][:, None]
                              + pool_ranks) % cfg.vocab_size
            pools = global_perm[pool_positions]          # (P, pool_size)
            from_pool = rng.random(n_total) < personal_blend
            n_pool_draws = int(from_pool.sum())
            if n_pool_draws:
                pick = rng.integers(0, pool_size, size=n_pool_draws)
                features[from_pool] = pools[
                    persona[user_of_draw[from_pool]], pick]

        blocks[cfg.name] = _pairs_to_csr(user_of_draw, features, n_users, cfg.vocab_size)
        specs.append(FieldSpec(cfg.name, cfg.vocab_size, sample=cfg.sample))

    dataset = MultiFieldDataset(FieldSchema(specs), blocks)
    return SyntheticDataset(dataset=dataset, topics=primary, theta=theta,
                            name=name, personas=persona)


def _pairs_to_csr(users: np.ndarray, features: np.ndarray,
                  n_users: int, vocab_size: int) -> CSRMatrix:
    """Deduplicate (user, feature) pairs into CSR with counts as weights."""
    key = users.astype(np.int64) * vocab_size + features
    unique_key, counts = np.unique(key, return_counts=True)
    u = unique_key // vocab_size
    f = unique_key % vocab_size
    indptr = np.zeros(n_users + 1, dtype=np.int64)
    np.add.at(indptr, u + 1, 1)
    np.cumsum(indptr, out=indptr)
    return CSRMatrix(indptr, f, counts.astype(np.float64), vocab_size)


def barabasi_albert_profiles(n_users: int,
                             avg_features: float,
                             max_features: int,
                             field_name: str = "feat",
                             chunk_size: int = 256,
                             new_feature_rate: float = 1.0,
                             seed: int | np.random.Generator | None = 0,
                             ) -> MultiFieldDataset:
    """Bipartite preferential-attachment profiles (Fig 9 workload).

    Users arrive one chunk at a time; each draws ``~Poisson(avg_features)``
    features.  A draw either attaches preferentially (proportional to current
    feature degree) or introduces a brand-new feature.  As in the
    Barabási–Albert model, new features arrive at a *constant rate per user*
    (``new_feature_rate``, default 1), so the number of distinct features in
    use grows with the users — independent of the ``max_features`` cap.  That
    cap only bounds the vocabulary dimension, which is exactly the property
    the paper's Fig 9b sweep exercises: runtime must not depend on it.
    """
    if n_users <= 0 or avg_features <= 0 or max_features <= 0:
        raise ValueError("n_users, avg_features and max_features must be positive")
    if new_feature_rate <= 0:
        raise ValueError(f"new_feature_rate must be positive: {new_feature_rate}")
    rng = new_rng(seed)

    # Seed pool with a handful of features so preferential draws are defined.
    seed_features = min(max(int(avg_features), 2), max_features)
    endpoint_pool: list[np.ndarray] = [np.arange(seed_features)]
    pool_size = seed_features
    next_feature = seed_features
    new_feature_prob = min(1.0, new_feature_rate / avg_features)

    indptr = np.zeros(n_users + 1, dtype=np.int64)
    all_rows: list[np.ndarray] = []

    n_draws = np.maximum(rng.poisson(avg_features, size=n_users), 1)
    for start in range(0, n_users, chunk_size):
        stop = min(start + chunk_size, n_users)
        chunk_draws = int(n_draws[start:stop].sum())
        pool = np.concatenate(endpoint_pool) if len(endpoint_pool) > 1 else endpoint_pool[0]
        endpoint_pool = [pool]

        is_new = rng.random(chunk_draws) < new_feature_prob
        n_new = int(is_new.sum())
        remaining = max_features - next_feature
        if n_new > remaining:
            # vocabulary exhausted: turn surplus "new" draws into attachments
            surplus = np.flatnonzero(is_new)[remaining:]
            is_new[surplus] = False
            n_new = remaining
        draws = np.empty(chunk_draws, dtype=np.int64)
        draws[~is_new] = pool[rng.integers(0, pool_size, size=chunk_draws - n_new)]
        if n_new:
            draws[is_new] = np.arange(next_feature, next_feature + n_new)
            next_feature += n_new

        endpoint_pool.append(draws.copy())
        pool_size += chunk_draws

        offset = 0
        for i in range(start, stop):
            row = np.unique(draws[offset:offset + n_draws[i]])
            all_rows.append(row)
            indptr[i + 1] = indptr[i] + row.size
            offset += n_draws[i]

    indices = np.concatenate(all_rows)
    schema = FieldSchema([FieldSpec(field_name, max_features)])
    csr = CSRMatrix(indptr, indices, None, max_features)
    return MultiFieldDataset(schema, {field_name: csr})
