"""Look-alike system: embedding store, serving, audience expansion, A/B harness.

Reproduces the deployment framework of §IV-D (offline embedding store +
online serving cache) and the uploader-recommendation A/B test of §V-F with a
behaviour simulator standing in for live traffic.
"""

from repro.lookalike.ab_test import ABTestReport, OnlineABTest, UploaderBehaviorSimulator
from repro.lookalike.ann import IVFIndex, LSHIndex, exact_top_k
from repro.lookalike.quality import (expansion_lift, expansion_precision,
                                     precision_at_depths)
from repro.lookalike.quant import (Int8Quantizer, PQQuantizer,
                                   QuantizedEmbeddingStore)
from repro.lookalike.serving import ServingProxy, ServingResilience
from repro.lookalike.store import EmbeddingStore, LRUCache
from repro.lookalike.system import LookalikeSystem

__all__ = [
    "EmbeddingStore", "LRUCache", "ServingProxy", "ServingResilience",
    "LookalikeSystem",
    "UploaderBehaviorSimulator", "OnlineABTest", "ABTestReport",
    "expansion_precision", "expansion_lift", "precision_at_depths",
    "LSHIndex", "IVFIndex", "exact_top_k",
    "Int8Quantizer", "PQQuantizer", "QuantizedEmbeddingStore",
]
