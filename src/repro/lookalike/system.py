"""Look-alike recall: average-pooled account embeddings + L2 similarity (§V-F).

The paper's uploader recommendation works in three steps: (1) learn user
representations, (2) build each uploader-account's embedding by average
pooling the embeddings of the users who follow it, (3) recall candidate
accounts for a user by L2 similarity.  :class:`LookalikeSystem` implements
exactly that pipeline over an embedding matrix, plus classic seed-audience
expansion.
"""

from __future__ import annotations

import numpy as np

__all__ = ["LookalikeSystem"]


class LookalikeSystem:
    """Audience expansion / account recall over a user embedding matrix.

    Parameters
    ----------
    user_embeddings:
        ``(N, D)`` matrix; row ``i`` is user ``i``'s representation.
    """

    def __init__(self, user_embeddings: np.ndarray) -> None:
        user_embeddings = np.asarray(user_embeddings, dtype=np.float64)
        if user_embeddings.ndim != 2:
            raise ValueError("user_embeddings must be a 2-D (N, D) matrix")
        self.user_embeddings = user_embeddings
        self._account_embeddings: np.ndarray | None = None

    @property
    def n_users(self) -> int:
        return self.user_embeddings.shape[0]

    @property
    def dim(self) -> int:
        return self.user_embeddings.shape[1]

    # -- account construction ----------------------------------------------------

    def account_embedding(self, follower_ids: np.ndarray) -> np.ndarray:
        """Average pooling over the account's followers (the paper's rule)."""
        follower_ids = np.asarray(follower_ids, dtype=np.int64)
        if follower_ids.size == 0:
            raise ValueError("an account needs at least one follower to embed")
        return self.user_embeddings[follower_ids].mean(axis=0)

    def build_accounts(self, follower_lists: list[np.ndarray]) -> np.ndarray:
        """Stack account embeddings for a list of follower-id arrays.

        Vectorised as one gather over the concatenated follower ids plus
        segment sums (``np.add.reduceat``) — one pass whatever the number of
        accounts.  Segment sums accumulate left-to-right like the per-account
        ``mean``, so results match the per-account loop to float64
        round-off (allclose, not necessarily bit-identical, for accounts
        large enough that ``mean`` switches to pairwise summation).
        """
        lengths = np.array([np.asarray(f).size for f in follower_lists],
                           dtype=np.int64)
        if not lengths.size or (lengths == 0).any():
            raise ValueError("an account needs at least one follower to embed")
        flat = np.concatenate(
            [np.asarray(f, dtype=np.int64).ravel() for f in follower_lists])
        offsets = np.concatenate([[0], np.cumsum(lengths)[:-1]])
        sums = np.add.reduceat(self.user_embeddings[flat], offsets, axis=0)
        self._account_embeddings = sums / lengths[:, None]
        return self._account_embeddings

    # -- recall --------------------------------------------------------------------

    def recall_accounts(self, user_ids: np.ndarray, k: int,
                        account_embeddings: np.ndarray | None = None) -> np.ndarray:
        """Top-``k`` accounts per user by (negative) L2 distance.

        Returns an ``(len(user_ids), k)`` array of account indices, best first.
        """
        accounts = account_embeddings if account_embeddings is not None \
            else self._account_embeddings
        if accounts is None:
            raise RuntimeError("call build_accounts() first or pass account_embeddings")
        if not 0 < k <= accounts.shape[0]:
            raise ValueError(f"k must be in [1, {accounts.shape[0]}]: {k}")
        users = self.user_embeddings[np.asarray(user_ids, dtype=np.int64)]
        d2 = (np.sum(users ** 2, axis=1, keepdims=True)
              - 2.0 * users @ accounts.T
              + np.sum(accounts ** 2, axis=1))
        top = np.argpartition(d2, k - 1, axis=1)[:, :k]
        order = np.take_along_axis(d2, top, axis=1).argsort(axis=1)
        return np.take_along_axis(top, order, axis=1)

    def expand_audience(self, seed_user_ids: np.ndarray, k: int,
                        exclude_seeds: bool = True) -> np.ndarray:
        """Classic look-alike: find the ``k`` users most similar to a seed set.

        The seed set is average-pooled into one query vector and users are
        ranked by L2 distance to it.
        """
        seed_user_ids = np.asarray(seed_user_ids, dtype=np.int64)
        query = self.account_embedding(seed_user_ids)
        d2 = np.sum((self.user_embeddings - query) ** 2, axis=1)
        if exclude_seeds:
            d2[seed_user_ids] = np.inf
        limit = min(k, self.n_users - (seed_user_ids.size if exclude_seeds else 0))
        if limit <= 0:
            return np.empty(0, dtype=np.int64)
        top = np.argpartition(d2, limit - 1)[:limit]
        return top[np.argsort(d2[top])]
