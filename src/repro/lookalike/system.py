"""Look-alike recall: average-pooled account embeddings + L2 similarity (§V-F).

The paper's uploader recommendation works in three steps: (1) learn user
representations, (2) build each uploader-account's embedding by average
pooling the embeddings of the users who follow it, (3) recall candidate
accounts for a user by L2 similarity.  :class:`LookalikeSystem` implements
exactly that pipeline over an embedding matrix, plus classic seed-audience
expansion.

At deployment scale the online module neither stores float64 rows nor scans
them exhaustively; the constructor therefore accepts a quantization mode
(``quant="int8"``/``"pq"`` — the online matrix becomes a
:class:`~repro.lookalike.quant.QuantizedEmbeddingStore` and every online
read sees dequantized rows) and an ANN index (``index="lsh"``/``"ivf"`` —
:meth:`expand_audience` probes the index instead of scanning).  The default
(``quant="none"``, ``index=None``) is the exact path, unchanged bit for
bit; it stays the oracle reference the approximate configurations are
measured against.
"""

from __future__ import annotations

import numpy as np

__all__ = ["LookalikeSystem"]

_QUANT_MODES = ("none", "int8", "pq")
_INDEX_KINDS = (None, "none", "lsh", "ivf")


class LookalikeSystem:
    """Audience expansion / account recall over a user embedding matrix.

    Parameters
    ----------
    user_embeddings:
        ``(N, D)`` matrix; row ``i`` is user ``i``'s representation.
    quant:
        ``"none"`` (exact float64 matrix), ``"int8"`` or ``"pq"``: the
        online side reads through a
        :class:`~repro.lookalike.quant.QuantizedEmbeddingStore` trained on
        the matrix (4–64x memory cut; see :attr:`serving_bytes`).
    index:
        ``None``/``"none"`` (exact scan), ``"lsh"`` or ``"ivf"``: ANN index
        used by :meth:`expand_audience`.  An IVF index over a PQ-quantized
        system shares the store's codebooks for ADC rescoring.
    seed:
        Seed for codebook training and index construction.
    index_params:
        Extra keyword arguments for the index constructor (e.g.
        ``{"n_lists": 128, "nprobe": 16}`` or ``{"n_tables": 12}``).
    """

    def __init__(self, user_embeddings: np.ndarray, *,
                 quant: str = "none", index: str | None = None,
                 seed: int = 0, index_params: dict | None = None) -> None:
        user_embeddings = np.asarray(user_embeddings, dtype=np.float64)
        if user_embeddings.ndim != 2:
            raise ValueError("user_embeddings must be a 2-D (N, D) matrix")
        if quant not in _QUANT_MODES:
            raise ValueError(f"quant must be one of {_QUANT_MODES}: {quant!r}")
        if index not in _INDEX_KINDS:
            raise ValueError(f"index must be one of {_INDEX_KINDS}: {index!r}")
        self.user_embeddings = user_embeddings
        self.quant = quant
        self.index_kind = None if index in (None, "none") else index
        self._account_embeddings: np.ndarray | None = None
        self.store = None
        self.index = None
        if quant != "none":
            from repro.lookalike.quant import QuantizedEmbeddingStore

            store = QuantizedEmbeddingStore(user_embeddings.shape[1],
                                            mode=quant, seed=seed)
            store.put_many(np.arange(user_embeddings.shape[0]),
                           user_embeddings)
            self.store = store
            # Online reads see what serving would serve: dequantized rows.
            self._online = store.as_matrix()[1]
        else:
            self._online = user_embeddings
        if self.index_kind == "lsh":
            from repro.lookalike.ann import LSHIndex

            params = dict(index_params or {})
            params.setdefault("seed", seed)
            self.index = LSHIndex(self.dim, **params).fit(self._online)
        elif self.index_kind == "ivf":
            from repro.lookalike.ann import IVFIndex

            params = dict(index_params or {})
            params.setdefault("seed", seed)
            if quant == "pq":
                params.setdefault("quantizer", self.store.quantizer)
            self.index = IVFIndex(self.dim, **params).fit(self._online)

    @property
    def online_embeddings(self) -> np.ndarray:
        """The matrix the online side ranks against (dequantized if
        quantized; the exact matrix otherwise)."""
        return self._online

    @property
    def serving_bytes(self) -> int:
        """Online-side embedding memory: code bytes when quantized, float64
        matrix bytes otherwise."""
        if self.store is not None:
            return self.store.nbytes
        return int(self.user_embeddings.nbytes)

    @property
    def n_users(self) -> int:
        return self.user_embeddings.shape[0]

    @property
    def dim(self) -> int:
        return self.user_embeddings.shape[1]

    # -- account construction ----------------------------------------------------

    def account_embedding(self, follower_ids: np.ndarray) -> np.ndarray:
        """Average pooling over the account's followers (the paper's rule)."""
        follower_ids = np.asarray(follower_ids, dtype=np.int64)
        if follower_ids.size == 0:
            raise ValueError("an account needs at least one follower to embed")
        return self.user_embeddings[follower_ids].mean(axis=0)

    def build_accounts(self, follower_lists: list[np.ndarray]) -> np.ndarray:
        """Stack account embeddings for a list of follower-id arrays.

        Vectorised as one gather over the concatenated follower ids plus
        segment sums (``np.add.reduceat``) — one pass whatever the number of
        accounts.  Segment sums accumulate left-to-right like the per-account
        ``mean``, so results match the per-account loop to float64
        round-off (allclose, not necessarily bit-identical, for accounts
        large enough that ``mean`` switches to pairwise summation).
        """
        lengths = np.array([np.asarray(f).size for f in follower_lists],
                           dtype=np.int64)
        if not lengths.size or (lengths == 0).any():
            raise ValueError("an account needs at least one follower to embed")
        flat = np.concatenate(
            [np.asarray(f, dtype=np.int64).ravel() for f in follower_lists])
        offsets = np.concatenate([[0], np.cumsum(lengths)[:-1]])
        sums = np.add.reduceat(self.user_embeddings[flat], offsets, axis=0)
        self._account_embeddings = sums / lengths[:, None]
        return self._account_embeddings

    # -- recall --------------------------------------------------------------------

    def recall_accounts(self, user_ids: np.ndarray, k: int,
                        account_embeddings: np.ndarray | None = None) -> np.ndarray:
        """Top-``k`` accounts per user by (negative) L2 distance.

        Returns an ``(len(user_ids), k)`` array of account indices, best first.
        """
        accounts = account_embeddings if account_embeddings is not None \
            else self._account_embeddings
        if accounts is None:
            raise RuntimeError("call build_accounts() first or pass account_embeddings")
        if not 0 < k <= accounts.shape[0]:
            raise ValueError(f"k must be in [1, {accounts.shape[0]}]: {k}")
        users = self.user_embeddings[np.asarray(user_ids, dtype=np.int64)]
        d2 = (np.sum(users ** 2, axis=1, keepdims=True)
              - 2.0 * users @ accounts.T
              + np.sum(accounts ** 2, axis=1))
        top = np.argpartition(d2, k - 1, axis=1)[:, :k]
        order = np.take_along_axis(d2, top, axis=1).argsort(axis=1)
        return np.take_along_axis(top, order, axis=1)

    def expand_audience(self, seed_user_ids: np.ndarray, k: int,
                        exclude_seeds: bool = True) -> np.ndarray:
        """Classic look-alike: find the ``k`` users most similar to a seed set.

        The seed set is average-pooled into one query vector and users are
        ranked by L2 distance to it.
        """
        seed_user_ids = np.asarray(seed_user_ids, dtype=np.int64)
        if seed_user_ids.size == 0:
            raise ValueError("an account needs at least one follower to embed")
        query = self._online[seed_user_ids].mean(axis=0)
        limit = min(k, self.n_users - (seed_user_ids.size if exclude_seeds else 0))
        if limit <= 0:
            return np.empty(0, dtype=np.int64)
        if self.index is not None:
            # Over-fetch so dropping the seeds still leaves ``limit`` results.
            want = limit + (np.unique(seed_user_ids).size if exclude_seeds else 0)
            ranked = self.index.query(query, min(want, self.n_users))
            if exclude_seeds:
                ranked = ranked[~np.isin(ranked, seed_user_ids)]
            return ranked[:limit]
        d2 = np.sum((self._online - query) ** 2, axis=1)
        if exclude_seeds:
            d2[seed_user_ids] = np.inf
        top = np.argpartition(d2, limit - 1)[:limit]
        return top[np.argsort(d2[top])]
