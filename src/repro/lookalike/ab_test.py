"""Simulated online A/B test for the look-alike system (§V-F, Table VI).

The paper runs a live A/B test in QQ Browser uploader recommendation: the
treatment arm recalls uploader accounts with FVAE user embeddings, the
control arm with skip-gram embeddings, and the arms are compared on
following-clicks, likes, and shares.

Live traffic is unavailable, so :class:`UploaderBehaviorSimulator` provides
the ground truth: users have latent topic mixtures (from the synthetic data
generator), uploader accounts have topic profiles, and engagement events are
Bernoulli draws whose probabilities grow with the user-account topical
affinity.  Both arms run against the *same* simulator, so metric deltas
measure exactly what the paper's test measures — which embedding recalls more
relevant accounts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.lookalike.system import LookalikeSystem
from repro.utils.rng import new_rng

__all__ = ["UploaderBehaviorSimulator", "OnlineABTest", "ABTestReport"]

METRICS = ("#Following Click", "#Like", "Avg. Like", "#Share", "Avg. Share")


class UploaderBehaviorSimulator:
    """Latent-topic ground truth for uploader recommendation.

    Parameters
    ----------
    theta:
        ``(N, T)`` true topic mixtures of the users (from the synthetic
        generator; never shown to the models).
    n_accounts:
        Number of uploader accounts.
    followers_per_account:
        Size of each account's existing follower set (used by the arms to
        average-pool account embeddings).
    account_purity:
        How concentrated each account's topic profile is on its main topic.
    click_base / click_gain:
        Follow-click probability is ``clip(click_base + click_gain·affinity)``
        where affinity = ⟨θ_user, account profile⟩ ∈ [0, 1].
    like_given_click / share_given_click:
        Conditional engagement probabilities, also scaled by affinity.
    """

    def __init__(self, theta: np.ndarray, n_accounts: int = 60,
                 followers_per_account: int = 30, account_purity: float = 0.8,
                 click_base: float = 0.02, click_gain: float = 0.5,
                 like_given_click: float = 0.35, share_given_click: float = 0.15,
                 seed: int | np.random.Generator | None = 0) -> None:
        self.theta = np.asarray(theta, dtype=np.float64)
        if self.theta.ndim != 2:
            raise ValueError("theta must be a 2-D (N, T) matrix")
        self.n_users, self.n_topics = self.theta.shape
        if n_accounts <= 0:
            raise ValueError(f"n_accounts must be positive: {n_accounts}")
        rng = new_rng(seed)
        self._rng = rng
        self.click_base = click_base
        self.click_gain = click_gain
        self.like_given_click = like_given_click
        self.share_given_click = share_given_click

        # Account topic profiles: anchored on a main topic plus noise.
        main = rng.integers(0, self.n_topics, size=n_accounts)
        noise = rng.dirichlet(np.ones(self.n_topics), size=n_accounts)
        profiles = (1.0 - account_purity) * noise
        profiles[np.arange(n_accounts), main] += account_purity
        self.account_profiles = profiles / profiles.sum(axis=1, keepdims=True)
        self.account_main_topic = main

        # Existing followers: sampled proportionally to true affinity.
        affinity = self.theta @ self.account_profiles.T      # (N, A)
        self.followers: list[np.ndarray] = []
        for a in range(n_accounts):
            p = affinity[:, a] / affinity[:, a].sum()
            size = min(followers_per_account, self.n_users)
            self.followers.append(rng.choice(self.n_users, size=size,
                                             replace=False, p=p))

    @property
    def n_accounts(self) -> int:
        return self.account_profiles.shape[0]

    def affinity(self, user_ids: np.ndarray, account_ids: np.ndarray) -> np.ndarray:
        """True topical affinity for aligned (user, account) pairs."""
        return np.einsum("ut,ut->u", self.theta[user_ids],
                         self.account_profiles[account_ids])

    def simulate_impressions(self, user_ids: np.ndarray,
                             recalled: np.ndarray,
                             rng: np.random.Generator | int | None = None,
                             ) -> dict[str, float]:
        """Roll out the recommendation lists and aggregate Table VI metrics.

        Parameters
        ----------
        user_ids:
            ``(U,)`` users in the arm.
        recalled:
            ``(U, k)`` account ids shown to each user.
        """
        rng = new_rng(rng)
        user_ids = np.asarray(user_ids, dtype=np.int64)
        users_flat = np.repeat(user_ids, recalled.shape[1])
        accounts_flat = np.asarray(recalled, dtype=np.int64).ravel()
        aff = self.affinity(users_flat, accounts_flat)

        p_click = np.clip(self.click_base + self.click_gain * aff, 0.0, 1.0)
        clicked = rng.random(aff.size) < p_click
        p_like = np.clip(self.like_given_click * (0.5 + aff), 0.0, 1.0)
        liked = clicked & (rng.random(aff.size) < p_like)
        p_share = np.clip(self.share_given_click * (0.5 + aff), 0.0, 1.0)
        shared = clicked & (rng.random(aff.size) < p_share)

        user_of = users_flat
        users_liked = np.unique(user_of[liked]).size
        users_shared = np.unique(user_of[shared]).size
        n_like = int(liked.sum())
        n_share = int(shared.sum())
        return {
            "#Following Click": float(clicked.sum()),
            "#Like": float(n_like),
            "Avg. Like": n_like / users_liked if users_liked else 0.0,
            "#Share": float(n_share),
            "Avg. Share": n_share / users_shared if users_shared else 0.0,
        }


@dataclass
class ABTestReport:
    """Control/treatment metrics and relative changes (the Table VI rows)."""

    control: dict[str, float] = field(default_factory=dict)
    treatment: dict[str, float] = field(default_factory=dict)

    @property
    def relative_change(self) -> dict[str, float]:
        out = {}
        for key in METRICS:
            c, t = self.control.get(key, 0.0), self.treatment.get(key, 0.0)
            out[key] = (t - c) / c if c else float("nan")
        return out

    def __str__(self) -> str:
        lines = [f"{'Metric':<18} {'Control':>10} {'Treatment':>10} {'Change':>8}"]
        for key in METRICS:
            rel = self.relative_change[key]
            lines.append(f"{key:<18} {self.control[key]:>10.2f} "
                         f"{self.treatment[key]:>10.2f} {rel:>+7.2%}")
        return "\n".join(lines)


class OnlineABTest:
    """Run both arms of the look-alike A/B test against one simulator.

    Each arm builds account embeddings by average-pooling its own user
    embeddings over the accounts' existing followers, recalls top-``k``
    accounts per test user by L2 similarity, and the simulator scores the
    resulting impressions.
    """

    def __init__(self, simulator: UploaderBehaviorSimulator, k: int = 10,
                 seed: int | np.random.Generator | None = 0) -> None:
        self.simulator = simulator
        self.k = k
        self._rng = new_rng(seed)

    def _run_arm(self, embeddings: np.ndarray, user_ids: np.ndarray,
                 event_seed: int) -> dict[str, float]:
        system = LookalikeSystem(embeddings)
        system.build_accounts(self.simulator.followers)
        recalled = system.recall_accounts(user_ids, self.k)
        return self.simulator.simulate_impressions(user_ids, recalled,
                                                   rng=event_seed)

    def run(self, control_embeddings: np.ndarray,
            treatment_embeddings: np.ndarray,
            test_fraction: float = 0.5) -> ABTestReport:
        """Split users into two arms and report Table VI metrics.

        Both arms have equal size; event randomness uses a shared seed per arm
        so reruns are deterministic.
        """
        if control_embeddings.shape != treatment_embeddings.shape:
            raise ValueError("arms must embed the same user population")
        n = control_embeddings.shape[0]
        order = self._rng.permutation(n)
        half = int(n * min(max(test_fraction, 0.05), 0.5))
        control_users = order[:half]
        treatment_users = order[half:2 * half]
        event_seed = int(self._rng.integers(0, 2**31 - 1))
        report = ABTestReport()
        report.control = self._run_arm(control_embeddings, control_users, event_seed)
        report.treatment = self._run_arm(treatment_embeddings, treatment_users,
                                         event_seed + 1)
        return report
