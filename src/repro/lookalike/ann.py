"""Approximate nearest-neighbour recall: random-hyperplane LSH.

The paper's look-alike system recalls accounts by L2 similarity over
billion-scale embedding sets; exact scans do not serve at that scale, so
production deployments put an ANN index in the online module.  This is a
self-contained signed-random-projection (SimHash) index with multi-table
probing: vectors hashing to the same bucket in any table become candidates,
and only candidates are scored exactly.

Buckets are stored as *sorted posting lists*: per table, one array of bucket
keys sorted ascending plus the matching row permutation.  A bucket probe is
then a ``searchsorted`` left/right pair and a contiguous slice — no dict
lookups, no Python lists — and a multi-query probe
(:meth:`LSHIndex.candidates_batch` / :meth:`LSHIndex.query_batch`) hashes
every query in one matmul and rescores all candidates in one vectorised
pass.  The scalar :meth:`LSHIndex.query` rides the same primitives, so batch
and scalar results are bit-identical.

Recall quality is tunable with ``n_tables`` (more tables → higher recall,
more memory) and ``n_bits`` (more bits → smaller buckets → faster but lower
recall); the tests measure recall@k against the exact scan.
"""

from __future__ import annotations

import numpy as np

from repro.obs import runtime as obs
from repro.utils.rng import new_rng

__all__ = ["LSHIndex"]


class LSHIndex:
    """Multi-table signed-random-projection index over row vectors.

    Parameters
    ----------
    dim:
        Vector dimensionality.
    n_tables:
        Independent hash tables (union of candidates across tables).
    n_bits:
        Hyperplanes per table; bucket count is ``2**n_bits`` per table.
    seed:
        Seed for the hyperplane draws.
    """

    def __init__(self, dim: int, n_tables: int = 8, n_bits: int = 12,
                 seed: int | np.random.Generator | None = 0) -> None:
        if dim <= 0 or n_tables <= 0 or n_bits <= 0:
            raise ValueError("dim, n_tables and n_bits must be positive")
        if n_bits > 62:
            raise ValueError(f"n_bits too large for integer bucket keys: {n_bits}")
        rng = new_rng(seed)
        self.dim = dim
        self.n_tables = n_tables
        self.n_bits = n_bits
        self._planes = rng.normal(size=(n_tables, n_bits, dim))
        #: Per-table posting lists: ``_sorted_keys[t]`` ascending bucket keys,
        #: ``_order[t]`` the row index stored at each posting-list slot.
        self._sorted_keys: np.ndarray | None = None
        self._order: np.ndarray | None = None
        self._vectors: np.ndarray | None = None

    def _bucket_keys(self, vectors: np.ndarray) -> np.ndarray:
        """Bucket key of each vector in each table, shape ``(n, n_tables)``."""
        bits = np.einsum("tbd,nd->ntb", self._planes, vectors) > 0
        powers = 1 << np.arange(self.n_bits, dtype=np.int64)
        return (bits * powers).sum(axis=2)

    def fit(self, vectors: np.ndarray) -> "LSHIndex":
        """Index ``vectors`` (``(n, dim)``); replaces any previous contents."""
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[1] != self.dim:
            raise ValueError(f"expected (n, {self.dim}) vectors, got {vectors.shape}")
        self._vectors = vectors
        keys = self._bucket_keys(vectors)                       # (n, n_tables)
        order = np.argsort(keys, axis=0, kind="stable")         # (n, n_tables)
        self._order = np.ascontiguousarray(order.T)             # (n_tables, n)
        self._sorted_keys = np.ascontiguousarray(
            np.take_along_axis(keys, order, axis=0).T)          # (n_tables, n)
        obs.gauge_set("lsh.size", vectors.shape[0])
        return self

    @property
    def size(self) -> int:
        return 0 if self._vectors is None else self._vectors.shape[0]

    # -- candidate generation --------------------------------------------------

    def candidates(self, query: np.ndarray) -> np.ndarray:
        """Union of the query's bucket members across tables, sorted unique."""
        return self.candidates_batch(np.atleast_2d(query))[0]

    def candidates_batch(self, queries: np.ndarray) -> list[np.ndarray]:
        """Per-query candidate row indices; one hashing matmul for all.

        Every query's candidate set is sorted unique, so candidate order is
        deterministic and identical between the scalar and batch paths.
        """
        if self._vectors is None:
            raise RuntimeError("index is empty; call fit() first")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        qkeys = self._bucket_keys(queries)                      # (q, n_tables)
        # Vectorised bucket probes: per table, the posting-list range of
        # every query's bucket in one searchsorted pair.
        lo = np.empty_like(qkeys)
        hi = np.empty_like(qkeys)
        for table in range(self.n_tables):
            sorted_keys = self._sorted_keys[table]
            lo[:, table] = np.searchsorted(sorted_keys, qkeys[:, table], "left")
            hi[:, table] = np.searchsorted(sorted_keys, qkeys[:, table], "right")

        n_queries = queries.shape[0]
        size = self.size
        if n_queries == 1:
            # Single query (the scalar path): direct concat + unique beats
            # the ragged machinery below.
            slices = [self._order[t, lo[0, t]:hi[0, t]]
                      for t in range(self.n_tables)]
            merged = np.concatenate(slices) if slices else \
                np.empty(0, dtype=np.int64)
            return [np.unique(merged)]
        # Gather every (query, table) posting-list slice in one ragged
        # arange: slice (q, t) covers order.ravel()[t*size + lo : t*size + hi].
        starts = (lo + np.arange(self.n_tables, dtype=np.int64) * size).ravel()
        lengths = (hi - lo).ravel()
        total = int(lengths.sum())
        if total == 0:
            return [np.empty(0, dtype=np.int64) for __ in range(n_queries)]
        offsets = np.concatenate([[0], np.cumsum(lengths)[:-1]])
        flat_pos = (np.repeat(starts - offsets, lengths)
                    + np.arange(total, dtype=np.int64))
        candidates = self._order.ravel()[flat_pos]
        # Per-query sorted unique via one global sort of (query, candidate)
        # composite keys — identical output to per-query ``np.unique``.
        per_query_counts = lengths.reshape(n_queries, self.n_tables).sum(axis=1)
        owners = np.repeat(np.arange(n_queries, dtype=np.int64),
                           per_query_counts)
        composite = owners * size + candidates
        composite.sort()
        keep = np.empty(total, dtype=bool)
        keep[0] = True
        np.not_equal(composite[1:], composite[:-1], out=keep[1:])
        composite = composite[keep]
        owners = composite // size
        candidates = composite - owners * size
        bounds = np.searchsorted(owners, np.arange(n_queries + 1))
        return [candidates[bounds[q]:bounds[q + 1]]
                for q in range(n_queries)]

    # -- top-k queries ---------------------------------------------------------

    @staticmethod
    def _top_k(candidate_idx: np.ndarray, d2: np.ndarray, k: int) -> np.ndarray:
        """Shared top-``k`` selection so scalar and batch tie-break alike."""
        if candidate_idx.size == 0:
            return np.empty(0, dtype=np.int64)
        top = min(k, candidate_idx.size)
        best = np.argpartition(d2, top - 1)[:top]
        order = np.argsort(d2[best])
        return candidate_idx[best[order]]

    def query(self, query: np.ndarray, k: int,
              fallback_to_exact: bool = True) -> np.ndarray:
        """Approximate top-``k`` nearest rows by L2 distance.

        When the candidate set is smaller than ``k`` and
        ``fallback_to_exact`` is set, the query falls back to an exact scan
        (guaranteed results beat silent truncation in serving).
        """
        if k <= 0:
            raise ValueError(f"k must be positive: {k}")
        with obs.latency("lsh.query_seconds"), obs.span("lsh.query"):
            query = np.asarray(query, dtype=np.float64).ravel()
            candidate_idx = self.candidates(query)
            obs.observe("lsh.candidates", candidate_idx.size)
            if candidate_idx.size < k and fallback_to_exact:
                candidate_idx = np.arange(self.size)
                obs.count("lsh.exact_fallbacks")
            vectors = self._vectors[candidate_idx]
            d2 = np.sum((vectors - query) ** 2, axis=1)
            return self._top_k(candidate_idx, d2, k)

    def query_batch(self, queries: np.ndarray, k: int,
                    fallback_to_exact: bool = True) -> list[np.ndarray]:
        """Batched :meth:`query`: per-query top-``k`` row index arrays.

        All queries are hashed in one matmul and every table probed with one
        ``searchsorted`` pair for the whole batch; rescoring then runs per
        query over its (small, cache-resident) candidate set with exactly the
        scalar path's expression, so per-query results are bit-identical to
        looped :meth:`query` calls.  (A single flat rescore over all
        ``(query, candidate)`` pairs was measured *slower* here: the
        many-megabyte gather and repeat temporaries fall out of cache,
        while per-query chunks stay in L2 — see docs/PERFORMANCE.md.)
        """
        if k <= 0:
            raise ValueError(f"k must be positive: {k}")
        with obs.latency("lsh.query_batch_seconds"), obs.span("lsh.query_batch"):
            queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
            per_query = self.candidates_batch(queries)
            fallbacks = 0
            if fallback_to_exact:
                everything = None
                for q, candidate_idx in enumerate(per_query):
                    if candidate_idx.size < k:
                        if everything is None:
                            everything = np.arange(self.size)
                        per_query[q] = everything
                        fallbacks += 1
            obs.observe_many("lsh.candidates",
                             [candidate_idx.size
                              for candidate_idx in per_query])
            if fallbacks:
                obs.count("lsh.exact_fallbacks", fallbacks)
            vectors = self._vectors
            results = []
            for q in range(queries.shape[0]):
                candidate_idx = per_query[q]
                # Same rescoring expression as the scalar path, bit for bit.
                d2 = np.sum((vectors[candidate_idx] - queries[q]) ** 2,
                            axis=1)
                results.append(self._top_k(candidate_idx, d2, k))
            return results

    def recall_at_k(self, queries: np.ndarray, k: int) -> float:
        """Fraction of exact top-``k`` neighbours the index retrieves.

        One batched approximate pass plus one batched exact scan — the exact
        distances for all queries come from a single matmul instead of a
        per-query re-scan.
        """
        if self._vectors is None:
            raise RuntimeError("index is empty; call fit() first")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        approx = self.query_batch(queries, k, fallback_to_exact=False)
        vectors = self._vectors
        d2 = ((vectors ** 2).sum(axis=1)[None, :]
              - 2.0 * queries @ vectors.T
              + (queries ** 2).sum(axis=1)[:, None])
        exact = np.argpartition(d2, k - 1, axis=1)[:, :k]
        hits = sum(np.isin(exact[q], approx[q]).sum()
                   for q in range(queries.shape[0]))
        return hits / (k * queries.shape[0])
