"""Approximate nearest-neighbour recall: random-hyperplane LSH and IVF.

The paper's look-alike system recalls accounts by L2 similarity over
billion-scale embedding sets; exact scans do not serve at that scale, so
production deployments put an ANN index in the online module.  Two
self-contained indexes live here:

* :class:`LSHIndex` — signed-random-projection (SimHash) with multi-table
  probing: vectors hashing to the same bucket in any table become
  candidates, and only candidates are scored exactly.
* :class:`IVFIndex` — inverted-file coarse quantizer in the FastVAE /
  inverted-multi-index tradition: a seeded k-means partitions the rows into
  ``n_lists`` cells, a query probes its ``nprobe`` nearest cells, and the
  posting-list members are rescored either exactly or by asymmetric
  distance (ADC) against a product-quantized code matrix — candidate
  scoring without touching the float vectors.

Both store candidates as *sorted posting arrays*: bucket/list membership is
a ``searchsorted`` pair and a contiguous slice — no dict lookups, no Python
lists — and multi-query probes (``candidates_batch`` / ``query_batch``)
hash/assign every query in one matmul and gather all posting slices with
one ragged ``arange``.  The scalar ``query`` rides the same primitives, so
batch and scalar results are bit-identical; with ``nprobe == n_lists`` the
IVF exact-rescore path degenerates to the exact scan bit for bit (pinned by
the ``lookalike.ivf.exhaustive_vs_exact`` oracle).

Recall evaluation (``recall_at_k``) compares against :func:`exact_top_k`,
which chunks the exact-scan matmul to a fixed memory budget so the ground
truth never allocates an ``(n_queries, n)`` distance matrix at million-row
scale.
"""

from __future__ import annotations

import numpy as np

from repro.obs import runtime as obs
from repro.utils.rng import new_rng

__all__ = ["LSHIndex", "IVFIndex", "exact_top_k"]


def exact_top_k(vectors: np.ndarray, queries: np.ndarray, k: int,
                chunk_bytes: int = 32 * 2 ** 20) -> np.ndarray:
    """Exact top-``k`` row indices per query, shape ``(n_queries, k)``.

    The distance matrix is computed in row chunks capped at ``chunk_bytes``
    of float64 (default 32MB), merging a running best-``k`` pool between
    chunks, so peak memory is independent of the index size.  Selection is
    by lexicographic ``(distance, row_index)`` order — the unique minimum
    — which makes the result invariant to the chunk size: one giant chunk
    and many small ones return identical indices (the regression test in
    ``tests/test_lookalike_ivf.py`` pins this).
    """
    if k <= 0:
        raise ValueError(f"k must be positive: {k}")
    vectors = np.asarray(vectors, dtype=np.float64)
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    n = vectors.shape[0]
    n_queries = queries.shape[0]
    if n == 0:
        raise ValueError("cannot scan an empty vector set")
    k = min(k, n)
    # A (n_queries, rows) float64 chunk of distances costs 8 * q bytes/row.
    rows_per_chunk = max(1, int(chunk_bytes // (8 * max(1, n_queries))))
    q_norm = (queries ** 2).sum(axis=1)[:, None]
    best_d = np.empty((n_queries, 0), dtype=np.float64)
    best_i = np.empty((n_queries, 0), dtype=np.int64)
    for start in range(0, n, rows_per_chunk):
        chunk = vectors[start:start + rows_per_chunk]
        d2 = ((chunk ** 2).sum(axis=1)[None, :]
              - 2.0 * queries @ chunk.T + q_norm)
        idx = np.broadcast_to(
            np.arange(start, start + chunk.shape[0], dtype=np.int64),
            d2.shape)
        pool_d = np.concatenate([best_d, d2], axis=1)
        pool_i = np.concatenate([best_i, idx], axis=1)
        # Lexicographic (d, i) min-k: stable-sort by index, then stable-sort
        # by distance — ties break toward the lower row index.
        by_index = np.argsort(pool_i, axis=1, kind="stable")
        d_by_index = np.take_along_axis(pool_d, by_index, axis=1)
        order = np.argsort(d_by_index, axis=1, kind="stable")[:, :k]
        take = np.take_along_axis(by_index, order, axis=1)
        best_d = np.take_along_axis(pool_d, take, axis=1)
        best_i = np.take_along_axis(pool_i, take, axis=1)
    return best_i


def _recall_against_exact(approx: list[np.ndarray],
                          exact: np.ndarray, k: int) -> float:
    """Fraction of exact top-``k`` ids present in the approximate results."""
    hits = sum(np.isin(exact[q], approx[q]).sum()
               for q in range(exact.shape[0]))
    return hits / (exact.shape[1] * exact.shape[0])


class LSHIndex:
    """Multi-table signed-random-projection index over row vectors.

    Parameters
    ----------
    dim:
        Vector dimensionality.
    n_tables:
        Independent hash tables (union of candidates across tables).
    n_bits:
        Hyperplanes per table; bucket count is ``2**n_bits`` per table.
    seed:
        Seed for the hyperplane draws.
    """

    def __init__(self, dim: int, n_tables: int = 8, n_bits: int = 12,
                 seed: int | np.random.Generator | None = 0) -> None:
        if dim <= 0 or n_tables <= 0 or n_bits <= 0:
            raise ValueError("dim, n_tables and n_bits must be positive")
        if n_bits > 62:
            raise ValueError(f"n_bits too large for integer bucket keys: {n_bits}")
        rng = new_rng(seed)
        self.dim = dim
        self.n_tables = n_tables
        self.n_bits = n_bits
        self._planes = rng.normal(size=(n_tables, n_bits, dim))
        #: Per-table posting lists: ``_sorted_keys[t]`` ascending bucket keys,
        #: ``_order[t]`` the row index stored at each posting-list slot.
        self._sorted_keys: np.ndarray | None = None
        self._order: np.ndarray | None = None
        self._vectors: np.ndarray | None = None

    def _bucket_keys(self, vectors: np.ndarray) -> np.ndarray:
        """Bucket key of each vector in each table, shape ``(n, n_tables)``."""
        bits = np.einsum("tbd,nd->ntb", self._planes, vectors) > 0
        powers = 1 << np.arange(self.n_bits, dtype=np.int64)
        return (bits * powers).sum(axis=2)

    def fit(self, vectors: np.ndarray) -> "LSHIndex":
        """Index ``vectors`` (``(n, dim)``); replaces any previous contents."""
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[1] != self.dim:
            raise ValueError(f"expected (n, {self.dim}) vectors, got {vectors.shape}")
        self._vectors = vectors
        keys = self._bucket_keys(vectors)                       # (n, n_tables)
        order = np.argsort(keys, axis=0, kind="stable")         # (n, n_tables)
        self._order = np.ascontiguousarray(order.T)             # (n_tables, n)
        self._sorted_keys = np.ascontiguousarray(
            np.take_along_axis(keys, order, axis=0).T)          # (n_tables, n)
        obs.gauge_set("lsh.size", vectors.shape[0])
        return self

    @property
    def size(self) -> int:
        return 0 if self._vectors is None else self._vectors.shape[0]

    # -- candidate generation --------------------------------------------------

    def candidates(self, query: np.ndarray) -> np.ndarray:
        """Union of the query's bucket members across tables, sorted unique."""
        return self.candidates_batch(np.atleast_2d(query))[0]

    def candidates_batch(self, queries: np.ndarray) -> list[np.ndarray]:
        """Per-query candidate row indices; one hashing matmul for all.

        Every query's candidate set is sorted unique, so candidate order is
        deterministic and identical between the scalar and batch paths.
        """
        if self._vectors is None:
            raise RuntimeError("index is empty; call fit() first")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        qkeys = self._bucket_keys(queries)                      # (q, n_tables)
        # Vectorised bucket probes: per table, the posting-list range of
        # every query's bucket in one searchsorted pair.
        lo = np.empty_like(qkeys)
        hi = np.empty_like(qkeys)
        for table in range(self.n_tables):
            sorted_keys = self._sorted_keys[table]
            lo[:, table] = np.searchsorted(sorted_keys, qkeys[:, table], "left")
            hi[:, table] = np.searchsorted(sorted_keys, qkeys[:, table], "right")

        n_queries = queries.shape[0]
        size = self.size
        if n_queries == 1:
            # Single query (the scalar path): direct concat + unique beats
            # the ragged machinery below.
            slices = [self._order[t, lo[0, t]:hi[0, t]]
                      for t in range(self.n_tables)]
            merged = np.concatenate(slices) if slices else \
                np.empty(0, dtype=np.int64)
            return [np.unique(merged)]
        # Gather every (query, table) posting-list slice in one ragged
        # arange: slice (q, t) covers order.ravel()[t*size + lo : t*size + hi].
        starts = (lo + np.arange(self.n_tables, dtype=np.int64) * size).ravel()
        lengths = (hi - lo).ravel()
        total = int(lengths.sum())
        if total == 0:
            return [np.empty(0, dtype=np.int64) for __ in range(n_queries)]
        offsets = np.concatenate([[0], np.cumsum(lengths)[:-1]])
        flat_pos = (np.repeat(starts - offsets, lengths)
                    + np.arange(total, dtype=np.int64))
        candidates = self._order.ravel()[flat_pos]
        # Per-query sorted unique via one global sort of (query, candidate)
        # composite keys — identical output to per-query ``np.unique``.
        per_query_counts = lengths.reshape(n_queries, self.n_tables).sum(axis=1)
        owners = np.repeat(np.arange(n_queries, dtype=np.int64),
                           per_query_counts)
        composite = owners * size + candidates
        composite.sort()
        keep = np.empty(total, dtype=bool)
        keep[0] = True
        np.not_equal(composite[1:], composite[:-1], out=keep[1:])
        composite = composite[keep]
        owners = composite // size
        candidates = composite - owners * size
        bounds = np.searchsorted(owners, np.arange(n_queries + 1))
        return [candidates[bounds[q]:bounds[q + 1]]
                for q in range(n_queries)]

    # -- top-k queries ---------------------------------------------------------

    @staticmethod
    def _top_k(candidate_idx: np.ndarray, d2: np.ndarray, k: int) -> np.ndarray:
        """Shared top-``k`` selection so scalar and batch tie-break alike."""
        if candidate_idx.size == 0:
            return np.empty(0, dtype=np.int64)
        top = min(k, candidate_idx.size)
        best = np.argpartition(d2, top - 1)[:top]
        order = np.argsort(d2[best])
        return candidate_idx[best[order]]

    def query(self, query: np.ndarray, k: int,
              fallback_to_exact: bool = True) -> np.ndarray:
        """Approximate top-``k`` nearest rows by L2 distance.

        When the candidate set is smaller than ``k`` and
        ``fallback_to_exact`` is set, the query falls back to an exact scan
        (guaranteed results beat silent truncation in serving).
        """
        if k <= 0:
            raise ValueError(f"k must be positive: {k}")
        with obs.latency("lsh.query_seconds"), obs.span("lsh.query"):
            query = np.asarray(query, dtype=np.float64).ravel()
            candidate_idx = self.candidates(query)
            obs.observe("lsh.candidates", candidate_idx.size)
            if candidate_idx.size < k and fallback_to_exact:
                candidate_idx = np.arange(self.size)
                obs.count("lsh.exact_fallbacks")
            vectors = self._vectors[candidate_idx]
            d2 = np.sum((vectors - query) ** 2, axis=1)
            return self._top_k(candidate_idx, d2, k)

    def query_batch(self, queries: np.ndarray, k: int,
                    fallback_to_exact: bool = True) -> list[np.ndarray]:
        """Batched :meth:`query`: per-query top-``k`` row index arrays.

        All queries are hashed in one matmul and every table probed with one
        ``searchsorted`` pair for the whole batch; rescoring then runs per
        query over its (small, cache-resident) candidate set with exactly the
        scalar path's expression, so per-query results are bit-identical to
        looped :meth:`query` calls.  (A single flat rescore over all
        ``(query, candidate)`` pairs was measured *slower* here: the
        many-megabyte gather and repeat temporaries fall out of cache,
        while per-query chunks stay in L2 — see docs/PERFORMANCE.md.)
        """
        if k <= 0:
            raise ValueError(f"k must be positive: {k}")
        with obs.latency("lsh.query_batch_seconds"), obs.span("lsh.query_batch"):
            queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
            per_query = self.candidates_batch(queries)
            fallbacks = 0
            if fallback_to_exact:
                everything = None
                for q, candidate_idx in enumerate(per_query):
                    if candidate_idx.size < k:
                        if everything is None:
                            everything = np.arange(self.size)
                        per_query[q] = everything
                        fallbacks += 1
            obs.observe_many("lsh.candidates",
                             [candidate_idx.size
                              for candidate_idx in per_query])
            if fallbacks:
                obs.count("lsh.exact_fallbacks", fallbacks)
            vectors = self._vectors
            results = []
            for q in range(queries.shape[0]):
                candidate_idx = per_query[q]
                # Same rescoring expression as the scalar path, bit for bit.
                d2 = np.sum((vectors[candidate_idx] - queries[q]) ** 2,
                            axis=1)
                results.append(self._top_k(candidate_idx, d2, k))
            return results

    def recall_at_k(self, queries: np.ndarray, k: int) -> float:
        """Fraction of exact top-``k`` neighbours the index retrieves.

        One batched approximate pass plus one chunked exact scan
        (:func:`exact_top_k`) — peak ground-truth memory stays bounded
        instead of allocating an ``(n_queries, n)`` distance matrix.
        """
        if self._vectors is None:
            raise RuntimeError("index is empty; call fit() first")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        approx = self.query_batch(queries, k, fallback_to_exact=False)
        exact = exact_top_k(self._vectors, queries, k)
        return _recall_against_exact(approx, exact, k)


class IVFIndex:
    """Inverted-file index: k-means coarse quantizer + posting arrays.

    :meth:`fit` partitions the rows into ``n_lists`` cells with a seeded
    Lloyd's loop (:func:`repro.lookalike.quant.kmeans`) and stores each
    cell's members as one slice of a single posting array.  A query is
    assigned to its ``nprobe`` nearest centroids and only those cells'
    members are rescored:

    * **exact rescoring** (default) uses the float vectors with the very
      expression the exact scan uses, so ``nprobe == n_lists`` reproduces
      the exact scan bit for bit — the differential-oracle anchor;
    * **ADC rescoring** (pass a :class:`~repro.lookalike.quant.PQQuantizer`
      as ``quantizer``) scores candidates from their uint8 PQ codes via a
      per-query lookup table without touching the float matrix — the
      million-user memory configuration.

    Parameters
    ----------
    dim:
        Vector dimensionality.
    n_lists:
        Coarse cells (k-means centroids).  More lists → smaller cells →
        fewer candidates per probe.
    nprobe:
        Cells probed per query.  More probes → higher recall, more work.
    seed:
        Seed for the coarse k-means.
    quantizer:
        Optional :class:`~repro.lookalike.quant.PQQuantizer` enabling ADC
        rescoring; trained on the indexed vectors at :meth:`fit` time if
        not already trained.
    train_iters:
        Lloyd iterations for the coarse quantizer.
    """

    def __init__(self, dim: int, n_lists: int = 64, nprobe: int = 8,
                 seed: int = 0, quantizer=None, train_iters: int = 15) -> None:
        if dim <= 0 or n_lists <= 0 or train_iters <= 0:
            raise ValueError("dim, n_lists and train_iters must be positive")
        if not 1 <= nprobe <= n_lists:
            raise ValueError(f"nprobe must be in [1, {n_lists}]: {nprobe}")
        if quantizer is not None and quantizer.dim != dim:
            raise ValueError(
                f"quantizer dim {quantizer.dim} != index dim {dim}")
        if quantizer is not None and getattr(quantizer, "n_coarse", 0):
            raise ValueError(
                "ADC rescoring needs a plain (non-residual) PQQuantizer; "
                "residual-coded quantizers have no per-query LUT")
        self.dim = dim
        self.n_lists = n_lists
        self.nprobe = nprobe
        self.seed = seed
        self.train_iters = train_iters
        self.quantizer = quantizer
        self._centroids: np.ndarray | None = None
        #: Posting array: row indices grouped by cell; cell ``c`` owns the
        #: slice ``_order[_boundaries[c]:_boundaries[c + 1]]``.
        self._order: np.ndarray | None = None
        self._boundaries: np.ndarray | None = None
        self._vectors: np.ndarray | None = None
        self._codes: np.ndarray | None = None

    def fit(self, vectors: np.ndarray) -> "IVFIndex":
        """Index ``vectors`` (``(n, dim)``); replaces any previous contents."""
        from repro.lookalike.quant import kmeans

        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[1] != self.dim:
            raise ValueError(
                f"expected (n, {self.dim}) vectors, got {vectors.shape}")
        n = vectors.shape[0]
        if n == 0:
            raise ValueError("cannot index an empty vector set")
        n_lists = min(self.n_lists, n)
        self._centroids, assign = kmeans(vectors, n_lists, seed=self.seed,
                                         n_iters=self.train_iters)
        order = np.argsort(assign, kind="stable")
        self._order = order
        self._boundaries = np.searchsorted(
            assign[order], np.arange(n_lists + 1, dtype=np.int64))
        self._vectors = vectors
        if self.quantizer is not None:
            if not self.quantizer.trained:
                self.quantizer.fit(vectors)
            self._codes = self.quantizer.quantize(vectors)
        obs.gauge_set("ivf.size", n)
        obs.gauge_set("ivf.lists", n_lists)
        return self

    @property
    def size(self) -> int:
        return 0 if self._vectors is None else self._vectors.shape[0]

    # -- candidate generation --------------------------------------------------

    def _effective_lists(self) -> int:
        return int(self._boundaries.shape[0] - 1)

    def _probe_lists(self, queries: np.ndarray, nprobe: int) -> np.ndarray:
        """The ``nprobe`` nearest cells per query, shape ``(q, nprobe)``.

        Stable argsort over centroid distances, so probe order (and hence
        every downstream candidate set) is deterministic under ties.
        """
        centroids = self._centroids
        d2 = ((centroids ** 2).sum(axis=1)[None, :]
              - 2.0 * queries @ centroids.T
              + (queries ** 2).sum(axis=1)[:, None])
        return np.argsort(d2, axis=1, kind="stable")[:, :nprobe]

    def candidates(self, query: np.ndarray) -> np.ndarray:
        """Members of the query's ``nprobe`` nearest cells, sorted."""
        return self.candidates_batch(np.atleast_2d(query))[0]

    def candidates_batch(self, queries: np.ndarray) -> list[np.ndarray]:
        """Per-query candidate row indices; one assignment matmul for all.

        Cells are disjoint, so each query's candidate set is duplicate-free
        by construction; it is returned sorted ascending so the scalar and
        batch paths (and LSH) share candidate-order semantics.
        """
        if self._vectors is None:
            raise RuntimeError("index is empty; call fit() first")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        n_queries = queries.shape[0]
        nprobe = min(self.nprobe, self._effective_lists())
        probes = self._probe_lists(queries, nprobe)             # (q, nprobe)
        obs.count("ivf.probes", int(probes.size))
        lo = self._boundaries[probes].ravel()
        hi = self._boundaries[probes + 1].ravel()
        lengths = hi - lo
        total = int(lengths.sum())
        if total == 0:
            return [np.empty(0, dtype=np.int64) for __ in range(n_queries)]
        # Ragged arange gather of every (query, cell) posting slice.
        offsets = np.concatenate([[0], np.cumsum(lengths)[:-1]])
        flat_pos = (np.repeat(lo - offsets, lengths)
                    + np.arange(total, dtype=np.int64))
        candidates = self._order[flat_pos]
        per_query_counts = lengths.reshape(n_queries, nprobe).sum(axis=1)
        owners = np.repeat(np.arange(n_queries, dtype=np.int64),
                           per_query_counts)
        # One global composite sort gives per-query ascending candidates.
        composite = owners * self.size + candidates
        composite.sort()
        owners = composite // self.size
        candidates = composite - owners * self.size
        bounds = np.searchsorted(owners, np.arange(n_queries + 1))
        return [candidates[bounds[q]:bounds[q + 1]]
                for q in range(n_queries)]

    # -- top-k queries ---------------------------------------------------------

    def _rescore(self, candidate_idx: np.ndarray, query: np.ndarray,
                 lut: np.ndarray | None) -> np.ndarray:
        """Candidate distances: ADC from codes when a LUT is given, else
        exact — the same expression as the exact scan, bit for bit."""
        if lut is not None:
            return self.quantizer.adc_distances(lut, self._codes[candidate_idx])
        return np.sum((self._vectors[candidate_idx] - query) ** 2, axis=1)

    def query(self, query: np.ndarray, k: int,
              fallback_to_exact: bool = True) -> np.ndarray:
        """Approximate top-``k`` nearest rows by L2 distance.

        When the probed cells hold fewer than ``k`` members and
        ``fallback_to_exact`` is set, the query falls back to scanning all
        rows (guaranteed results beat silent truncation in serving).
        """
        if k <= 0:
            raise ValueError(f"k must be positive: {k}")
        with obs.latency("ivf.query_seconds"), obs.span("ivf.query"):
            query = np.asarray(query, dtype=np.float64).ravel()
            candidate_idx = self.candidates(query)
            obs.observe("ivf.candidates", candidate_idx.size)
            if candidate_idx.size < k and fallback_to_exact:
                candidate_idx = np.arange(self.size)
                obs.count("ivf.exact_fallbacks")
            lut = (self.quantizer.adc_lut(query)
                   if self._codes is not None else None)
            d2 = self._rescore(candidate_idx, query, lut)
            return LSHIndex._top_k(candidate_idx, d2, k)

    def query_batch(self, queries: np.ndarray, k: int,
                    fallback_to_exact: bool = True) -> list[np.ndarray]:
        """Batched :meth:`query`: per-query top-``k`` row index arrays.

        Coarse assignment runs in one matmul for the whole batch; rescoring
        then runs per query with exactly the scalar path's expression, so
        per-query results are bit-identical to looped :meth:`query` calls.
        """
        if k <= 0:
            raise ValueError(f"k must be positive: {k}")
        with obs.latency("ivf.query_batch_seconds"), obs.span("ivf.query_batch"):
            queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
            per_query = self.candidates_batch(queries)
            fallbacks = 0
            if fallback_to_exact:
                everything = None
                for q, candidate_idx in enumerate(per_query):
                    if candidate_idx.size < k:
                        if everything is None:
                            everything = np.arange(self.size)
                        per_query[q] = everything
                        fallbacks += 1
            obs.observe_many("ivf.candidates",
                             [candidate_idx.size
                              for candidate_idx in per_query])
            if fallbacks:
                obs.count("ivf.exact_fallbacks", fallbacks)
            results = []
            for q in range(queries.shape[0]):
                candidate_idx = per_query[q]
                lut = (self.quantizer.adc_lut(queries[q])
                       if self._codes is not None else None)
                d2 = self._rescore(candidate_idx, queries[q], lut)
                results.append(LSHIndex._top_k(candidate_idx, d2, k))
            return results

    def recall_at_k(self, queries: np.ndarray, k: int) -> float:
        """Fraction of exact top-``k`` neighbours the index retrieves.

        Ground truth comes from the chunked :func:`exact_top_k`, same as
        :meth:`LSHIndex.recall_at_k`.
        """
        if self._vectors is None:
            raise RuntimeError("index is empty; call fit() first")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        approx = self.query_batch(queries, k, fallback_to_exact=False)
        exact = exact_top_k(self._vectors, queries, k)
        return _recall_against_exact(approx, exact, k)
