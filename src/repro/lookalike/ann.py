"""Approximate nearest-neighbour recall: random-hyperplane LSH.

The paper's look-alike system recalls accounts by L2 similarity over
billion-scale embedding sets; exact scans do not serve at that scale, so
production deployments put an ANN index in the online module.  This is a
self-contained signed-random-projection (SimHash) index with multi-table
probing: vectors hashing to the same bucket in any table become candidates,
and only candidates are scored exactly.

Recall quality is tunable with ``n_tables`` (more tables → higher recall,
more memory) and ``n_bits`` (more bits → smaller buckets → faster but lower
recall); the tests measure recall@k against the exact scan.
"""

from __future__ import annotations

import numpy as np

from repro.obs import runtime as obs
from repro.utils.rng import new_rng

__all__ = ["LSHIndex"]


class LSHIndex:
    """Multi-table signed-random-projection index over row vectors.

    Parameters
    ----------
    dim:
        Vector dimensionality.
    n_tables:
        Independent hash tables (union of candidates across tables).
    n_bits:
        Hyperplanes per table; bucket count is ``2**n_bits`` per table.
    seed:
        Seed for the hyperplane draws.
    """

    def __init__(self, dim: int, n_tables: int = 8, n_bits: int = 12,
                 seed: int | np.random.Generator | None = 0) -> None:
        if dim <= 0 or n_tables <= 0 or n_bits <= 0:
            raise ValueError("dim, n_tables and n_bits must be positive")
        if n_bits > 62:
            raise ValueError(f"n_bits too large for integer bucket keys: {n_bits}")
        rng = new_rng(seed)
        self.dim = dim
        self.n_tables = n_tables
        self.n_bits = n_bits
        self._planes = rng.normal(size=(n_tables, n_bits, dim))
        self._buckets: list[dict[int, list[int]]] = [dict() for __ in range(n_tables)]
        self._vectors: np.ndarray | None = None

    def _bucket_keys(self, vectors: np.ndarray) -> np.ndarray:
        """Bucket key of each vector in each table, shape ``(n, n_tables)``."""
        bits = np.einsum("tbd,nd->ntb", self._planes, vectors) > 0
        powers = 1 << np.arange(self.n_bits, dtype=np.int64)
        return (bits * powers).sum(axis=2)

    def fit(self, vectors: np.ndarray) -> "LSHIndex":
        """Index ``vectors`` (``(n, dim)``); replaces any previous contents."""
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[1] != self.dim:
            raise ValueError(f"expected (n, {self.dim}) vectors, got {vectors.shape}")
        self._vectors = vectors
        self._buckets = [dict() for __ in range(self.n_tables)]
        keys = self._bucket_keys(vectors)
        for table in range(self.n_tables):
            buckets = self._buckets[table]
            for idx, key in enumerate(keys[:, table]):
                buckets.setdefault(int(key), []).append(idx)
        obs.gauge_set("lsh.size", vectors.shape[0])
        return self

    @property
    def size(self) -> int:
        return 0 if self._vectors is None else self._vectors.shape[0]

    def candidates(self, query: np.ndarray) -> np.ndarray:
        """Union of the query's bucket members across all tables."""
        if self._vectors is None:
            raise RuntimeError("index is empty; call fit() first")
        keys = self._bucket_keys(np.atleast_2d(query))[0]
        seen: set[int] = set()
        for table, key in enumerate(keys):
            seen.update(self._buckets[table].get(int(key), ()))
        return np.fromiter(seen, dtype=np.int64, count=len(seen))

    def query(self, query: np.ndarray, k: int,
              fallback_to_exact: bool = True) -> np.ndarray:
        """Approximate top-``k`` nearest rows by L2 distance.

        When the candidate set is smaller than ``k`` and
        ``fallback_to_exact`` is set, the query falls back to an exact scan
        (guaranteed results beat silent truncation in serving).
        """
        if k <= 0:
            raise ValueError(f"k must be positive: {k}")
        with obs.latency("lsh.query_seconds"):
            query = np.asarray(query, dtype=np.float64).ravel()
            candidate_idx = self.candidates(query)
            obs.observe("lsh.candidates", candidate_idx.size)
            if candidate_idx.size < k and fallback_to_exact:
                candidate_idx = np.arange(self.size)
                obs.count("lsh.exact_fallbacks")
            if candidate_idx.size == 0:
                return np.empty(0, dtype=np.int64)
            vectors = self._vectors[candidate_idx]
            d2 = np.sum((vectors - query) ** 2, axis=1)
            top = min(k, candidate_idx.size)
            best = np.argpartition(d2, top - 1)[:top]
            order = np.argsort(d2[best])
            return candidate_idx[best[order]]

    def recall_at_k(self, queries: np.ndarray, k: int) -> float:
        """Fraction of exact top-``k`` neighbours the index retrieves."""
        if self._vectors is None:
            raise RuntimeError("index is empty; call fit() first")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        hits = 0
        for q in queries:
            d2 = np.sum((self._vectors - q) ** 2, axis=1)
            exact = set(np.argpartition(d2, k - 1)[:k].tolist())
            approx = set(self.query(q, k, fallback_to_exact=False).tolist())
            hits += len(exact & approx)
        return hits / (k * queries.shape[0])
