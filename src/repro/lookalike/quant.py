"""Quantized embedding storage: int8 scalar and product quantization (PQ).

At deployment scale the embedding table dominates serving memory: 1M users of
dim-64 float64 embeddings is ~512MB before a single request is served.  The
FastVAE line of work (Chen et al., *Fast Variational AutoEncoder with
Inverted Multi-Index for Collaborative Filtering*) shows codebook structure
tames both the memory and the retrieval cost.  This module is the memory
half: :class:`QuantizedEmbeddingStore` keeps **uint8 code matrices** plus a
small per-store codebook instead of float64 rows —

* ``mode="int8"`` — symmetric per-dimension scalar quantization.  One uint8
  code per dimension (8x smaller than float64); the dequantization error of
  any vector inside the trained range is bounded per dimension by half the
  quantization step (:meth:`Int8Quantizer.bound`).
* ``mode="pq"`` — product quantization: the vector is split into
  ``n_subvectors`` contiguous sub-vectors and each is replaced by the index
  of its nearest centroid in a per-subspace codebook trained with a seeded
  Lloyd's loop (:func:`kmeans`).  One uint8 code per *sub-vector* (64x
  smaller for dim-64 with 8 subvectors); the training-set round-trip error
  is recorded as :attr:`PQQuantizer.train_bound`.

The store duck-types :class:`~repro.lookalike.store.EmbeddingStore` —
``get``/``put``/``get_many``/``put_many``/``get_batch``/``rows_for``/
``as_matrix``/``save_snapshot``/``load(mmap=True)`` — so it drops into the
:class:`~repro.lookalike.serving.ServingProxy` resilience chain and the
batched serving fast path unchanged.  Reads dequantize on the fly (serving
sees plain float64 rows); the exact float store remains the oracle-pinned
reference (``repro check``: ``lookalike.quant.dequant_bound`` and
``serve.quantized_proxy_vs_exact``).

Snapshots follow the PR-5 cold-start pattern: :meth:`save_snapshot` writes
the uint8 code matrix uncompressed so :meth:`QuantizedEmbeddingStore.load`
can adopt it as a read-only ``np.memmap``
(:func:`~repro.utils.fileio.mmap_npz_member`), with copy-on-write on the
first ``put``.

All quantizer training is **deterministic per seed**: the same training
matrix and seed produce bit-identical scales, codebooks and codes.
"""

from __future__ import annotations

from pathlib import Path
from typing import Hashable, Iterable, Iterator, Sequence

import numpy as np

from repro.obs import runtime as obs
from repro.utils.rng import new_rng

__all__ = ["kmeans", "Int8Quantizer", "PQQuantizer", "QuantizedEmbeddingStore"]


def _pairwise_d2(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Squared L2 distances, shape ``(n_points, n_centroids)``."""
    return ((points ** 2).sum(axis=1)[:, None]
            - 2.0 * points @ centroids.T
            + (centroids ** 2).sum(axis=1)[None, :])


def kmeans(data: np.ndarray, k: int, seed: int | np.random.Generator = 0,
           n_iters: int = 20) -> tuple[np.ndarray, np.ndarray]:
    """Seeded Lloyd's loop: ``(centroids, assignments)``.

    Deterministic per ``(data, k, seed, n_iters)``: initial centroids are a
    seeded no-replacement draw, assignment ties break toward the lower
    centroid index (``argmin``), and an emptied cluster is re-seeded to the
    point currently farthest from its centroid (stable ``argsort``, so the
    choice is reproducible).  Stops early on convergence.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2 or data.shape[0] == 0:
        raise ValueError(f"kmeans needs a non-empty (n, d) matrix, got {data.shape}")
    n = data.shape[0]
    if not 0 < k <= n:
        raise ValueError(f"k must be in [1, {n}]: {k}")
    rng = new_rng(seed)
    centroids = data[np.sort(rng.choice(n, size=k, replace=False))].copy()
    assign = np.argmin(_pairwise_d2(data, centroids), axis=1)
    for __ in range(n_iters):
        sums = np.zeros_like(centroids)
        np.add.at(sums, assign, data)
        counts = np.bincount(assign, minlength=k)
        filled = counts > 0
        updated = centroids.copy()
        updated[filled] = sums[filled] / counts[filled, None]
        empty = np.flatnonzero(~filled)
        if empty.size:
            # Re-seed each emptied cluster to a point far from its centroid.
            d2 = ((data - updated[assign]) ** 2).sum(axis=1)
            far = np.argsort(-d2, kind="stable")[:empty.size]
            updated[empty] = data[far]
        if np.array_equal(updated, centroids):
            break
        centroids = updated
        assign = np.argmin(_pairwise_d2(data, centroids), axis=1)
    return centroids, assign


class Int8Quantizer:
    """Symmetric per-dimension scalar quantization to uint8 codes.

    :meth:`fit` records one positive scale per dimension
    (``max|x_d| / 127``); :meth:`quantize` rounds ``x / scale`` to the
    nearest integer in ``[-127, 127]`` and stores it offset by +128 as
    uint8.  For any value inside the trained range the round-trip error is
    at most ``scale / 2`` per dimension (:meth:`bound`); values outside the
    range clip to the range edge.
    """

    mode = "int8"

    def __init__(self, dim: int) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive: {dim}")
        self.dim = dim
        self.scale: np.ndarray | None = None

    @property
    def trained(self) -> bool:
        return self.scale is not None

    @property
    def code_width(self) -> int:
        """uint8 codes per vector (one per dimension)."""
        return self.dim

    def fit(self, matrix: np.ndarray) -> "Int8Quantizer":
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != self.dim:
            raise ValueError(f"expected (n, {self.dim}) matrix, got {matrix.shape}")
        if matrix.shape[0] == 0:
            raise ValueError("cannot fit a quantizer on an empty matrix")
        maxabs = np.abs(matrix).max(axis=0)
        self.scale = np.where(maxabs > 0.0, maxabs / 127.0, 1.0)
        return self

    def _require_trained(self) -> None:
        if not self.trained:
            raise RuntimeError("quantizer is untrained; call fit() first")

    def quantize(self, matrix: np.ndarray) -> np.ndarray:
        self._require_trained()
        matrix = np.asarray(matrix, dtype=np.float64)
        codes = np.rint(matrix / self.scale)
        np.clip(codes, -127.0, 127.0, out=codes)
        return (codes + 128.0).astype(np.uint8)

    def dequantize(self, codes: np.ndarray) -> np.ndarray:
        self._require_trained()
        return (codes.astype(np.float64) - 128.0) * self.scale

    def bound(self) -> np.ndarray:
        """Per-dimension round-trip error bound for in-range values."""
        self._require_trained()
        return 0.5 * self.scale

    # -- persistence -----------------------------------------------------------

    def state(self) -> dict[str, np.ndarray]:
        self._require_trained()
        return {"scale": self.scale}

    @classmethod
    def from_state(cls, dim: int, state) -> "Int8Quantizer":
        quantizer = cls(dim)
        quantizer.scale = np.asarray(state["scale"], dtype=np.float64)
        return quantizer

    @property
    def nbytes(self) -> int:
        return 0 if self.scale is None else int(self.scale.nbytes)


class PQQuantizer:
    """Product quantization: per-subspace codebooks from seeded k-means.

    The ``dim`` dimensions are split into ``n_subvectors`` contiguous
    sub-vectors; each sub-vector is replaced by the uint8 index of its
    nearest centroid in that subspace's codebook (``n_centroids <= 256``
    centroids trained with :func:`kmeans`).  Dequantization concatenates
    the assigned centroids, so the round-trip error is the distance to the
    nearest centroid — for the training set it is recorded at fit time as
    :attr:`train_bound` (max L2 round-trip error over training rows).

    :meth:`adc_lut` precomputes, for one query, the squared distance from
    each query sub-vector to every centroid; summing LUT entries over a code
    row (:meth:`adc_distances`) gives the asymmetric distance (ADC) used by
    :class:`~repro.lookalike.ann.IVFIndex` rescoring without dequantizing
    candidates.

    With ``n_coarse > 0`` the quantizer uses **residual coding** (the
    IVFPQ/inverted-multi-index layout): a coarse k-means assigns each
    vector to one of ``n_coarse`` centroids, and the sub-vector codebooks
    encode the *residual* from that centroid.  One extra uint8 per vector
    (the coarse cell id) buys a much finer effective resolution — residual
    magnitudes are a fraction of the raw coordinates, so the same 256
    centroids per subspace cover them far more densely.  ADC LUTs are not
    supported in residual mode (the LUT would need one table per coarse
    cell); use a plain PQ quantizer for IVF ADC rescoring.
    """

    mode = "pq"

    def __init__(self, dim: int, n_subvectors: int = 8,
                 n_centroids: int = 256, seed: int = 0,
                 n_iters: int = 20, n_coarse: int = 0) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive: {dim}")
        if n_subvectors <= 0 or dim % n_subvectors != 0:
            raise ValueError(
                f"n_subvectors must divide dim: dim={dim}, "
                f"n_subvectors={n_subvectors}")
        if not 1 <= n_centroids <= 256:
            raise ValueError(
                f"n_centroids must be in [1, 256] for uint8 codes: {n_centroids}")
        if not 0 <= n_coarse <= 256:
            raise ValueError(
                f"n_coarse must be in [0, 256] for uint8 cell ids: {n_coarse}")
        self.dim = dim
        self.n_subvectors = n_subvectors
        self.n_centroids = n_centroids
        self.seed = seed
        self.n_iters = n_iters
        self.n_coarse = n_coarse
        self.sub_dim = dim // n_subvectors
        #: ``(n_subvectors, k, sub_dim)`` trained centroids.
        self.codebooks: np.ndarray | None = None
        #: ``(n_coarse, dim)`` coarse centroids in residual mode.
        self.coarse_centroids: np.ndarray | None = None
        #: Max L2 round-trip error over the training rows (codebook
        #: distortion); the bound the property tests pin.
        self.train_bound: float | None = None

    @property
    def trained(self) -> bool:
        return self.codebooks is not None

    @property
    def code_width(self) -> int:
        """uint8 codes per vector: one per sub-vector, plus the coarse
        cell id in residual mode."""
        return self.n_subvectors + (1 if self.n_coarse else 0)

    def _require_trained(self) -> None:
        if not self.trained:
            raise RuntimeError("quantizer is untrained; call fit() first")

    def _split(self, matrix: np.ndarray) -> np.ndarray:
        """View ``(n, dim)`` as ``(n, n_subvectors, sub_dim)``."""
        return matrix.reshape(matrix.shape[0], self.n_subvectors, self.sub_dim)

    def fit(self, matrix: np.ndarray) -> "PQQuantizer":
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != self.dim:
            raise ValueError(f"expected (n, {self.dim}) matrix, got {matrix.shape}")
        if matrix.shape[0] == 0:
            raise ValueError("cannot fit a quantizer on an empty matrix")
        residuals = matrix
        if self.n_coarse:
            # Coarse seed sits past every subspace seed (self.seed + m), so
            # the whole training run stays a pure function of (matrix, seed).
            self.coarse_centroids, assign = kmeans(
                matrix, min(self.n_coarse, matrix.shape[0]),
                seed=self.seed + self.n_subvectors, n_iters=self.n_iters)
            residuals = matrix - self.coarse_centroids[assign]
        k = min(self.n_centroids, matrix.shape[0])
        subs = self._split(residuals)
        codebooks = np.empty((self.n_subvectors, k, self.sub_dim))
        for m in range(self.n_subvectors):
            # One derived seed per subspace keeps the whole training run a
            # pure function of (matrix, seed).
            codebooks[m], __ = kmeans(subs[:, m, :], k, seed=self.seed + m,
                                      n_iters=self.n_iters)
        self.codebooks = codebooks
        err = np.linalg.norm(matrix - self.dequantize(self.quantize(matrix)),
                             axis=1)
        self.train_bound = float(err.max())
        return self

    def quantize(self, matrix: np.ndarray) -> np.ndarray:
        self._require_trained()
        matrix = np.asarray(matrix, dtype=np.float64)
        single = matrix.ndim == 1
        matrix = np.atleast_2d(matrix)
        codes = np.empty((matrix.shape[0], self.code_width), dtype=np.uint8)
        sub_codes = codes
        if self.n_coarse:
            cells = np.argmin(
                _pairwise_d2(matrix, self.coarse_centroids), axis=1)
            codes[:, 0] = cells
            matrix = matrix - self.coarse_centroids[cells]
            sub_codes = codes[:, 1:]
        subs = self._split(matrix)
        for m in range(self.n_subvectors):
            sub_codes[:, m] = np.argmin(
                _pairwise_d2(subs[:, m, :], self.codebooks[m]), axis=1)
        return codes[0] if single else codes

    def dequantize(self, codes: np.ndarray) -> np.ndarray:
        self._require_trained()
        codes = np.atleast_2d(codes)
        sub_codes = codes[:, 1:] if self.n_coarse else codes
        parts = [self.codebooks[m][sub_codes[:, m].astype(np.int64)]
                 for m in range(self.n_subvectors)]
        out = np.concatenate(parts, axis=1)
        if self.n_coarse:
            out += self.coarse_centroids[codes[:, 0].astype(np.int64)]
        return out

    def bound(self) -> float:
        """Training-set round-trip L2 error bound (codebook distortion)."""
        self._require_trained()
        return self.train_bound

    # -- asymmetric distance computation ----------------------------------------

    def adc_lut(self, query: np.ndarray) -> np.ndarray:
        """Per-query LUT, shape ``(n_subvectors, k)``: squared distances
        from each query sub-vector to every centroid of its subspace."""
        self._require_trained()
        if self.n_coarse:
            raise RuntimeError(
                "ADC lookup tables are not supported for residual-coded PQ "
                "(n_coarse > 0); use a plain PQQuantizer for ADC rescoring")
        query = np.asarray(query, dtype=np.float64).reshape(
            self.n_subvectors, self.sub_dim)
        diff = self.codebooks - query[:, None, :]
        return (diff ** 2).sum(axis=2)

    def adc_distances(self, lut: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Sum LUT entries over each code row: approximate squared L2."""
        codes = np.atleast_2d(codes).astype(np.int64)
        return lut[np.arange(self.n_subvectors), codes].sum(axis=1)

    # -- persistence -----------------------------------------------------------

    def state(self) -> dict[str, np.ndarray]:
        self._require_trained()
        payload = {"codebooks": self.codebooks,
                   "train_bound": np.asarray(self.train_bound)}
        if self.n_coarse:
            payload["coarse_centroids"] = self.coarse_centroids
        return payload

    @classmethod
    def from_state(cls, dim: int, state) -> "PQQuantizer":
        codebooks = np.asarray(state["codebooks"], dtype=np.float64)
        coarse = (np.asarray(state["coarse_centroids"], dtype=np.float64)
                  if "coarse_centroids" in state else None)
        quantizer = cls(dim, n_subvectors=codebooks.shape[0],
                        n_centroids=codebooks.shape[1],
                        n_coarse=0 if coarse is None else coarse.shape[0])
        quantizer.codebooks = codebooks
        quantizer.coarse_centroids = coarse
        quantizer.train_bound = float(np.asarray(state["train_bound"]))
        return quantizer

    @property
    def nbytes(self) -> int:
        if self.codebooks is None:
            return 0
        total = int(self.codebooks.nbytes)
        if self.coarse_centroids is not None:
            total += int(self.coarse_centroids.nbytes)
        return total


_QUANTIZERS = {"int8": Int8Quantizer, "pq": PQQuantizer}


class QuantizedEmbeddingStore:
    """Key → vector store holding uint8 codes instead of float64 rows.

    Duck-types :class:`~repro.lookalike.store.EmbeddingStore`: the same
    read/write/persistence surface, with every read dequantizing on the fly
    (callers see float64 rows of the right ``dim``) and every write
    quantizing through the store's codebook.  Rows are append-only, exactly
    like the float store, so :meth:`rows_for` indices stay valid.

    The quantizer trains **once**: explicitly via :meth:`fit_quantizer`
    (or :meth:`from_store`), or implicitly on the first ``put_many`` batch.
    Later writes reuse the frozen codebook — re-training would silently
    re-interpret every stored code.  Training is deterministic per seed.

    Memory accounting: :attr:`nbytes` is codes + codebook;
    :attr:`bytes_saved` is the cut versus a float64 matrix of the same
    shape, also published as the ``quant.bytes_saved`` gauge.
    """

    def __init__(self, dim: int, mode: str = "int8", *,
                 n_subvectors: int = 8, n_centroids: int = 256,
                 seed: int = 0, train_iters: int = 20,
                 n_coarse: int = 0) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive: {dim}")
        if mode not in _QUANTIZERS:
            raise ValueError(
                f"unknown quantization mode '{mode}'; "
                f"available: {sorted(_QUANTIZERS)}")
        self.dim = dim
        self.mode = mode
        if mode == "int8":
            self._quantizer: Int8Quantizer | PQQuantizer = Int8Quantizer(dim)
        else:
            self._quantizer = PQQuantizer(dim, n_subvectors=n_subvectors,
                                          n_centroids=n_centroids, seed=seed,
                                          n_iters=train_iters,
                                          n_coarse=n_coarse)
        self._index: dict[Hashable, int] = {}
        self._codes = np.empty((0, self._quantizer.code_width), dtype=np.uint8)
        self._readonly = False

    @classmethod
    def from_store(cls, store, mode: str = "int8",
                   **kwargs) -> "QuantizedEmbeddingStore":
        """Quantize an existing store's full matrix (codebook trained on it)."""
        keys, matrix = store.as_matrix()
        quantized = cls(store.dim, mode=mode, **kwargs)
        quantized.put_many(keys, matrix)
        return quantized

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._index

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._index)

    @property
    def quantizer(self) -> Int8Quantizer | PQQuantizer:
        return self._quantizer

    @property
    def trained(self) -> bool:
        return self._quantizer.trained

    def fit_quantizer(self, matrix: np.ndarray) -> "QuantizedEmbeddingStore":
        """Train the codebook on ``matrix`` (store must still be empty)."""
        if self._quantizer.trained:
            raise RuntimeError("quantizer is already trained; codes stored "
                               "under the old codebook would be reinterpreted")
        if len(self._index):
            raise RuntimeError("store already holds rows; train the "
                               "quantizer before the first write")
        self._quantizer.fit(matrix)
        return self

    def dequant_bound(self) -> np.ndarray | float:
        """Round-trip error bound: per-dimension (int8) or L2 (pq)."""
        return self._quantizer.bound()

    # -- writes ----------------------------------------------------------------

    def _writable_rows(self, extra: int) -> None:
        """Private, grown code matrix with room for ``extra`` new rows."""
        needed = len(self._index) + extra
        if self._readonly:
            grown = np.empty((max(needed, len(self._index)),
                              self._codes.shape[1]), dtype=np.uint8)
            grown[:len(self._index)] = self._codes[:len(self._index)]
            self._codes = grown
            self._readonly = False
        if needed > self._codes.shape[0]:
            capacity = max(needed, 2 * self._codes.shape[0], 8)
            grown = np.empty((capacity, self._codes.shape[1]), dtype=np.uint8)
            grown[:len(self._index)] = self._codes[:len(self._index)]
            self._codes = grown

    def put(self, key: Hashable, vector: np.ndarray) -> None:
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.dim,):
            raise ValueError(f"vector shape {vector.shape} != ({self.dim},)")
        self.put_many([key], vector[None, :])

    def put_many(self, keys: Iterable[Hashable], matrix: np.ndarray) -> None:
        matrix = np.asarray(matrix, dtype=np.float64)
        keys = list(keys)
        if matrix.shape != (len(keys), self.dim):
            raise ValueError(
                f"matrix shape {matrix.shape} != ({len(keys)}, {self.dim})")
        if not self._quantizer.trained:
            if not keys:
                return
            # Train-on-first-write: the first batch is the codebook's
            # training set (the bulk-load path quantizes the whole snapshot).
            self._quantizer.fit(matrix)
        codes = self._quantizer.quantize(matrix)
        new = sum(1 for key in keys if key not in self._index)
        self._writable_rows(new)
        index = self._index
        next_row = len(index)
        rows = np.empty(len(keys), dtype=np.int64)
        for pos, key in enumerate(keys):
            row = index.get(key)
            if row is None:
                row = index[key] = next_row
                next_row += 1
            rows[pos] = row
        # Last-wins duplicate semantics, same as EmbeddingStore.put_many.
        self._codes[rows] = codes
        obs.gauge_set("quant.bytes_saved", self.bytes_saved, mode=self.mode)

    # -- reads -----------------------------------------------------------------

    def get(self, key: Hashable) -> np.ndarray | None:
        row = self._index.get(key)
        if row is None:
            return None
        return self._quantizer.dequantize(self._codes[row][None, :])[0]

    def rows_for(self, keys: Sequence[Hashable]) -> np.ndarray:
        """Row index per key (``-1`` for keys not in the store)."""
        index = self._index
        rows = np.empty(len(keys), dtype=np.int64)
        for pos, key in enumerate(keys):
            rows[pos] = index.get(key, -1)
        return rows

    def get_many(self, keys: Iterable[Hashable]) -> np.ndarray:
        """Stack dequantized vectors for ``keys``; raises on a missing key."""
        keys = list(keys)
        rows = self.rows_for(keys)
        missing = np.flatnonzero(rows < 0)
        if missing.size:
            key = keys[int(missing[0])]
            raise KeyError(f"no embedding stored for key {key!r}")
        if not len(keys):
            return np.empty((0, self.dim), dtype=np.float64)
        return self._quantizer.dequantize(self._codes[rows])

    def get_batch(self,
                  keys: Sequence[Hashable]) -> tuple[np.ndarray, np.ndarray]:
        """``(matrix, found_mask)`` — zero rows for absent keys, no raise."""
        rows = self.rows_for(keys)
        found = rows >= 0
        out = np.zeros((len(keys), self.dim), dtype=np.float64)
        hit = np.flatnonzero(found)
        if hit.size:
            out[hit] = self._quantizer.dequantize(self._codes[rows[hit]])
        return out, found

    def keys(self) -> list[Hashable]:
        return list(self._index)

    def as_matrix(self) -> tuple[list[Hashable], np.ndarray]:
        """``(keys, dequantized_matrix)`` with aligned ordering.

        Unlike ``EmbeddingStore.as_matrix`` the matrix is **materialised**
        (dequantized), not a view — writing through it changes nothing.
        """
        n = len(self._index)
        if n == 0:
            return [], np.empty((0, self.dim), dtype=np.float64)
        return list(self._index), self._quantizer.dequantize(self._codes[:n])

    def as_codes(self) -> tuple[list[Hashable], np.ndarray]:
        """``(keys, code_matrix)`` — the live uint8 codes, zero-copy view."""
        return list(self._index), self._codes[:len(self._index)]

    # -- memory accounting -------------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Bytes held: live code rows plus the codebook."""
        return (len(self._index) * self._codes.shape[1]
                + self._quantizer.nbytes)

    @property
    def bytes_saved(self) -> int:
        """Memory cut versus a float64 matrix of the same logical shape."""
        return len(self._index) * self.dim * 8 - self.nbytes

    # -- persistence -----------------------------------------------------------

    def _payload(self) -> dict:
        keys, codes = self.as_codes()
        payload = {"keys": np.asarray(keys, dtype=object),
                   "codes": np.ascontiguousarray(codes),
                   "dim": self.dim, "mode": self.mode}
        for name, value in self._quantizer.state().items():
            payload[f"quantizer_{name}"] = value
        return payload

    def save(self, path: str | Path) -> None:
        np.savez_compressed(path, **self._payload())

    def save_snapshot(self, path: str | Path) -> None:
        """Uncompressed snapshot; :meth:`load` can memory-map the codes."""
        np.savez(path, **self._payload())

    @classmethod
    def load(cls, path: str | Path,
             mmap: bool = False) -> "QuantizedEmbeddingStore":
        """Load a saved store; ``mmap=True`` adopts the codes zero-copy.

        Mapping only works for :meth:`save_snapshot` archives; otherwise —
        or when mapping fails — the codes load eagerly.  A mapped store is
        read-only until the first write, which materialises a private copy
        (copy-on-write, the PR-5 cold-start pattern).
        """
        from repro.utils.fileio import mmap_npz_member

        mapped = mmap_npz_member(path, "codes") if mmap else None
        with np.load(path, allow_pickle=True) as payload:
            mode = str(payload["mode"])
            dim = int(payload["dim"])
            store = cls(dim, mode=mode)
            prefix = "quantizer_"
            state = {name[len(prefix):]: payload[name]
                     for name in payload.files if name.startswith(prefix)}
            store._quantizer = _QUANTIZERS[mode].from_state(dim, state)
            keys = list(payload["keys"])
            width = store._quantizer.code_width
            if mapped is not None and mapped.shape == (len(keys), width):
                store._index = {key: row for row, key in enumerate(keys)}
                store._codes = mapped
                store._readonly = True
            else:
                codes = np.asarray(payload["codes"], dtype=np.uint8)
                store._index = {key: row for row, key in enumerate(keys)}
                store._codes = codes.copy()
        obs.gauge_set("quant.bytes_saved", store.bytes_saved, mode=mode)
        return store

    @property
    def is_mapped(self) -> bool:
        """True while the codes are still the adopted read-only mmap."""
        return self._readonly
