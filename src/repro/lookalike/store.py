"""Embedding storage: the offline store and the online cache of §IV-D.

The paper's offline module persists inferred user embeddings to bulk storage
(HDFS) and the online module serves them through a high-performance cache
(Redis).  :class:`EmbeddingStore` is the bulk store (with npz persistence);
:class:`LRUCache` is the bounded cache with hit/miss accounting.
"""

from __future__ import annotations

from collections import OrderedDict
from pathlib import Path
from typing import Hashable, Iterable, Iterator

import numpy as np

from repro.obs import runtime as obs

__all__ = ["EmbeddingStore", "LRUCache"]


class EmbeddingStore:
    """Bulk key → vector store (the HDFS stand-in).

    All vectors must share one dimension; bulk writes are vectorised.
    """

    def __init__(self, dim: int) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive: {dim}")
        self.dim = dim
        self._data: dict[Hashable, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._data)

    def put(self, key: Hashable, vector: np.ndarray) -> None:
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.dim,):
            raise ValueError(f"vector shape {vector.shape} != ({self.dim},)")
        self._data[key] = vector

    def put_many(self, keys: Iterable[Hashable], matrix: np.ndarray) -> None:
        matrix = np.asarray(matrix, dtype=np.float64)
        keys = list(keys)
        if matrix.shape != (len(keys), self.dim):
            raise ValueError(f"matrix shape {matrix.shape} != ({len(keys)}, {self.dim})")
        for key, row in zip(keys, matrix):
            self._data[key] = row

    def get(self, key: Hashable) -> np.ndarray | None:
        return self._data.get(key)

    def get_many(self, keys: Iterable[Hashable]) -> np.ndarray:
        """Stack vectors for ``keys``; raises on any missing key."""
        rows = []
        for key in keys:
            vec = self._data.get(key)
            if vec is None:
                raise KeyError(f"no embedding stored for key {key!r}")
            rows.append(vec)
        return np.stack(rows) if rows else np.empty((0, self.dim))

    def keys(self) -> list[Hashable]:
        return list(self._data)

    def as_matrix(self) -> tuple[list[Hashable], np.ndarray]:
        """Return ``(keys, matrix)`` with aligned ordering."""
        keys = list(self._data)
        matrix = np.stack([self._data[k] for k in keys]) if keys \
            else np.empty((0, self.dim))
        return keys, matrix

    # -- persistence -----------------------------------------------------------

    def save(self, path: str | Path) -> None:
        keys, matrix = self.as_matrix()
        np.savez_compressed(path, keys=np.asarray(keys, dtype=object),
                            matrix=matrix, dim=self.dim)

    @classmethod
    def load(cls, path: str | Path) -> "EmbeddingStore":
        with np.load(path, allow_pickle=True) as payload:
            store = cls(int(payload["dim"]))
            store.put_many(list(payload["keys"]), payload["matrix"])
        return store


class LRUCache:
    """Bounded LRU cache in front of a store (the Redis stand-in).

    Tracks hits and misses so serving benchmarks can report hit rate; when a
    telemetry session is installed every lookup also updates the
    ``cache.hits`` / ``cache.misses`` counters (labelled with ``name``), which
    therefore reconcile exactly with :attr:`hit_rate` over the session.
    """

    def __init__(self, capacity: int, name: str = "lru") -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.capacity = capacity
        self.name = name
        self._entries: OrderedDict[Hashable, np.ndarray] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> np.ndarray | None:
        vec = self._entries.get(key)
        if vec is None:
            self.misses += 1
            obs.count("cache.misses", cache=self.name)
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        obs.count("cache.hits", cache=self.name)
        return vec

    def put(self, key: Hashable, vector: np.ndarray) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = vector
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            obs.count("cache.evictions", cache=self.name)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
