"""Embedding storage: the offline store and the online cache of §IV-D.

The paper's offline module persists inferred user embeddings to bulk storage
(HDFS) and the online module serves them through a high-performance cache
(Redis).  :class:`EmbeddingStore` is the bulk store (with npz persistence);
:class:`LRUCache` is the bounded cache with hit/miss accounting.

Layout: the store is *columnar* — one contiguous ``(capacity, dim)`` float64
matrix plus a key→row dict.  Batch reads (:meth:`EmbeddingStore.get_many`,
:meth:`EmbeddingStore.get_batch`) are single fancy-indexing ops over that
matrix rather than per-key Python loops, and :meth:`EmbeddingStore.load` can
adopt a read-only ``np.memmap`` of an uncompressed snapshot
(:meth:`EmbeddingStore.save_snapshot`) so cold starts page the matrix in
lazily instead of deserialising it.
"""

from __future__ import annotations

from collections import OrderedDict
from pathlib import Path
from typing import Hashable, Iterable, Iterator, Sequence

import numpy as np

from repro.obs import runtime as obs
from repro.utils.fileio import mmap_npz_member

__all__ = ["EmbeddingStore", "LRUCache"]


class EmbeddingStore:
    """Bulk key → vector store (the HDFS stand-in).

    All vectors must share one dimension; reads and writes are vectorised
    over one contiguous row-major matrix.  Rows are append-only: a key keeps
    its row for the lifetime of the store, so row indices from
    :meth:`rows_for` stay valid across later writes.
    """

    def __init__(self, dim: int) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive: {dim}")
        self.dim = dim
        self._index: dict[Hashable, int] = {}
        self._matrix = np.empty((0, dim), dtype=np.float64)
        #: True while the matrix is an adopted read-only mmap; the first
        #: write materialises a private in-memory copy (copy-on-write).
        self._readonly = False

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._index

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._index)

    # -- writes ----------------------------------------------------------------

    def _writable_rows(self, extra: int) -> None:
        """Make the matrix privately owned with room for ``extra`` new rows."""
        needed = len(self._index) + extra
        if self._readonly:
            grown = np.empty((max(needed, len(self._index)), self.dim))
            grown[:len(self._index)] = self._matrix[:len(self._index)]
            self._matrix = grown
            self._readonly = False
        if needed > self._matrix.shape[0]:
            capacity = max(needed, 2 * self._matrix.shape[0], 8)
            grown = np.empty((capacity, self.dim), dtype=np.float64)
            grown[:len(self._index)] = self._matrix[:len(self._index)]
            self._matrix = grown

    def put(self, key: Hashable, vector: np.ndarray) -> None:
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.dim,):
            raise ValueError(f"vector shape {vector.shape} != ({self.dim},)")
        self.put_many([key], vector[None, :])

    def put_many(self, keys: Iterable[Hashable], matrix: np.ndarray) -> None:
        matrix = np.asarray(matrix, dtype=np.float64)
        keys = list(keys)
        if matrix.shape != (len(keys), self.dim):
            raise ValueError(
                f"matrix shape {matrix.shape} != ({len(keys)}, {self.dim})")
        new = sum(1 for key in keys if key not in self._index)
        self._writable_rows(new)
        index = self._index
        next_row = len(index)
        rows = np.empty(len(keys), dtype=np.int64)
        for pos, key in enumerate(keys):
            row = index.get(key)
            if row is None:
                row = index[key] = next_row
                next_row += 1
            rows[pos] = row
        # One fancy-indexed write; duplicate keys resolve last-wins, same as
        # the per-key loop this replaces.
        self._matrix[rows] = matrix

    # -- reads -----------------------------------------------------------------

    def get(self, key: Hashable) -> np.ndarray | None:
        row = self._index.get(key)
        return None if row is None else self._matrix[row]

    def rows_for(self, keys: Sequence[Hashable]) -> np.ndarray:
        """Row index per key (``-1`` for keys not in the store)."""
        index = self._index
        rows = np.empty(len(keys), dtype=np.int64)
        for pos, key in enumerate(keys):
            rows[pos] = index.get(key, -1)
        return rows

    def get_many(self, keys: Iterable[Hashable]) -> np.ndarray:
        """Stack vectors for ``keys``; raises on any missing key."""
        keys = list(keys)
        rows = self.rows_for(keys)
        missing = np.flatnonzero(rows < 0)
        if missing.size:
            key = keys[int(missing[0])]
            raise KeyError(f"no embedding stored for key {key!r}")
        return self._matrix[rows]

    def get_batch(self,
                  keys: Sequence[Hashable]) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(matrix, found_mask)`` — zero rows for absent keys.

        Unlike :meth:`get_many` this never raises on missing keys; the mask
        tells the caller which rows were resolved.  One fancy-indexed gather
        for the whole batch.
        """
        rows = self.rows_for(keys)
        found = rows >= 0
        out = np.zeros((len(keys), self.dim), dtype=np.float64)
        out[found] = self._matrix[rows[found]]
        return out, found

    def keys(self) -> list[Hashable]:
        return list(self._index)

    def as_matrix(self) -> tuple[list[Hashable], np.ndarray]:
        """Return ``(keys, matrix)`` with aligned ordering.

        The matrix is a zero-copy view of the live store; callers must not
        write through it.
        """
        return list(self._index), self._matrix[:len(self._index)]

    # -- persistence -----------------------------------------------------------

    def save(self, path: str | Path) -> None:
        keys, matrix = self.as_matrix()
        np.savez_compressed(path, keys=np.asarray(keys, dtype=object),
                            matrix=matrix, dim=self.dim)

    def save_snapshot(self, path: str | Path) -> None:
        """Write an *uncompressed* snapshot that :meth:`load` can memory-map.

        Same schema as :meth:`save`; the matrix member is stored raw so its
        byte range in the archive is exactly the in-memory layout.
        """
        keys, matrix = self.as_matrix()
        np.savez(path, keys=np.asarray(keys, dtype=object),
                 matrix=np.ascontiguousarray(matrix, dtype=np.float64),
                 dim=self.dim)

    @classmethod
    def load(cls, path: str | Path, mmap: bool = False) -> "EmbeddingStore":
        """Load a saved store; ``mmap=True`` adopts the matrix zero-copy.

        Mapping only works for :meth:`save_snapshot` archives (uncompressed);
        otherwise — or when mapping fails — the matrix is loaded eagerly.  A
        mapped store is served read-only until the first write, which
        materialises a private copy.
        """
        mapped = mmap_npz_member(path, "matrix") if mmap else None
        with np.load(path, allow_pickle=True) as payload:
            store = cls(int(payload["dim"]))
            keys = list(payload["keys"])
            if mapped is not None and mapped.shape == (len(keys), store.dim):
                store._index = {key: row for row, key in enumerate(keys)}
                store._matrix = mapped
                store._readonly = True
            else:
                store.put_many(keys, payload["matrix"])
        return store

    @property
    def is_mapped(self) -> bool:
        """True while the matrix is still the adopted read-only mmap."""
        return self._readonly


class LRUCache:
    """Bounded LRU cache in front of a store (the Redis stand-in).

    Tracks hits and misses so serving benchmarks can report hit rate; when a
    telemetry session is installed every lookup also updates the
    ``cache.hits`` / ``cache.misses`` counters (labelled with ``name``), which
    therefore reconcile exactly with :attr:`hit_rate` over the session.

    Like the store, the cache is *columnar*: vectors live in one contiguous
    ``(capacity, dim)`` matrix (allocated lazily from the first vector's
    length) and the LRU order is a key→slot ``OrderedDict``.  A batch probe
    (:meth:`get_many`) is therefore one fancy-indexed gather over the slot
    matrix, and an eviction recycles the victim's slot instead of freeing the
    array.  All cached vectors must share one dimension.

    The scalar :meth:`get`/:meth:`put` delegate to the batch primitives
    :meth:`get_many`/:meth:`put_many`, which emit **one** aggregated metrics
    update per call instead of one per key.
    """

    def __init__(self, capacity: int, name: str = "lru") -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.capacity = capacity
        self.name = name
        self._slots: OrderedDict[Hashable, int] = OrderedDict()
        self._matrix: np.ndarray | None = None
        self._next_slot = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._slots)

    def get(self, key: Hashable) -> np.ndarray | None:
        vectors, mask = self.get_many([key])
        return vectors[0] if mask[0] else None

    def get_many(self,
                 keys: Sequence[Hashable]) -> tuple[np.ndarray, np.ndarray]:
        """Batch lookup: ``(hit_matrix, hit_mask)`` with one metrics update.

        ``hit_matrix`` stacks the cached vectors of the hits only, in input
        order — row ``j`` belongs to the ``j``-th True entry of ``hit_mask``
        (``hit_matrix[...] == out[hit_mask]`` after a scatter).  Assembling
        the hits is one fancy-indexed gather over the slot matrix, not a
        per-key stack.  Counter updates (both the local tallies and the
        telemetry counters) are aggregated: one ``cache.hits`` increment of
        size *n_hits* and one ``cache.misses`` increment of size *n_misses*
        per call.
        """
        slots = self._slots
        slot_get = slots.get
        refresh = slots.move_to_end
        mask = np.zeros(len(keys), dtype=bool)
        hit_slots: list[int] = []
        append = hit_slots.append
        for pos, key in enumerate(keys):
            slot = slot_get(key)
            if slot is not None:
                refresh(key)
                mask[pos] = True
                append(slot)
        n_hits = len(hit_slots)
        n_misses = len(keys) - n_hits
        self.hits += n_hits
        self.misses += n_misses
        if n_hits:
            obs.count("cache.hits", n_hits, cache=self.name)
        if n_misses:
            obs.count("cache.misses", n_misses, cache=self.name)
        if n_hits:
            hits = self._matrix[np.asarray(hit_slots, dtype=np.int64)]
        else:
            dim = 0 if self._matrix is None else self._matrix.shape[1]
            hits = np.empty((0, dim), dtype=np.float64)
        return hits, mask

    def put(self, key: Hashable, vector: np.ndarray) -> None:
        self.put_many([key], [vector])

    def put_many(self, keys: Sequence[Hashable],
                 vectors: Sequence[np.ndarray] | np.ndarray) -> None:
        """Batch insert with one aggregated eviction metrics update.

        ``vectors`` is a ``(len(keys), dim)`` matrix or a sequence of 1-D
        vectors; the first vector ever inserted fixes the cache's ``dim``.
        """
        slots = self._slots
        matrix = self._matrix
        evicted = 0
        for key, vector in zip(keys, vectors):
            if matrix is None:
                dim = int(np.asarray(vector).shape[-1])
                matrix = self._matrix = np.empty((self.capacity, dim),
                                                 dtype=np.float64)
            slot = slots.get(key)
            if slot is None:
                if self._next_slot < self.capacity:
                    slot = self._next_slot
                    self._next_slot += 1
                else:  # full: evict the LRU entry and recycle its slot
                    __, slot = slots.popitem(last=False)
                    evicted += 1
                slots[key] = slot
            else:
                slots.move_to_end(key)
            matrix[slot] = vector
        if evicted:
            self.evictions += evicted
            obs.count("cache.evictions", evicted, cache=self.name)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
