"""Model-serving proxy: cache → store → model fallback (§IV-D online module).

With a :class:`ServingResilience` attached the lookup path degrades instead
of failing: store reads are retried with backoff under a circuit breaker, and
when the store stays down the proxy falls back through a stale last-known-good
snapshot, on-the-fly inference, and finally a field-prior default embedding —
every request gets *some* vector, with the source visible in telemetry.

Two overload-safety behaviours ride the same chain:

* **Deadline short-circuit** — when the request's
  :class:`~repro.resilience.guards.Deadline` (propagated by the batcher via
  :func:`~repro.resilience.guards.deadline_scope`) is already expired, the
  store read is skipped entirely and the lookup goes straight to the
  degraded tiers (stale → infer → prior); retries and backoff respect the
  remaining budget while it lasts.
* **Corruption detection** — rows coming back from the store are validated
  (right dimension, finite values); a corrupt row is *never* served, cached,
  or snapshotted — it is routed down the same fallback chain and tallied
  under the ``corrupt`` source counter.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Hashable

import numpy as np

from repro.lookalike.store import EmbeddingStore, LRUCache
from repro.obs import runtime as obs
from repro.resilience.guards import (CircuitBreaker, CircuitOpenError,
                                     DeadlineExceeded, RetryPolicy,
                                     current_deadline)

__all__ = ["ServingProxy", "ServingResilience"]

#: Errors treated as "the store is unavailable" rather than "the user is
#: unknown".  ``StoreUnavailableError`` is a ``ConnectionError`` subclass.
_STORE_ERRORS = (ConnectionError, TimeoutError, OSError)


@dataclass
class ServingResilience:
    """Degradation policy for :class:`ServingProxy` store lookups.

    Attributes
    ----------
    retry:
        Retry-with-backoff policy for store reads.  Retries transient store
        errors only; a :class:`CircuitOpenError` fails over immediately.
    breaker:
        Circuit breaker guarding each read attempt.  While open, lookups
        skip the store and go straight to the fallback chain.
    default_embedding:
        Last-resort vector served when every fallback comes up empty
        (``None`` → zeros).  Use :meth:`from_store_prior` to serve the
        field-prior (mean stored embedding) instead — the serving-side
        equivalent of predicting the prior for an unseen user.
    """

    retry: RetryPolicy = field(default_factory=lambda: RetryPolicy(
        max_attempts=3, backoff_seconds=0.01, max_backoff_seconds=0.25,
        retry_on=_STORE_ERRORS))
    breaker: CircuitBreaker | None = field(default_factory=lambda: CircuitBreaker(
        failure_threshold=5, reset_seconds=5.0, name="serving-store"))
    default_embedding: np.ndarray | None = None

    @classmethod
    def from_store_prior(cls, store: EmbeddingStore,
                         **kwargs) -> "ServingResilience":
        """Build a policy whose default embedding is the store's mean vector."""
        __, matrix = store.as_matrix()
        prior = matrix.mean(axis=0) if len(matrix) else np.zeros(store.dim)
        return cls(default_embedding=prior, **kwargs)

    def default_for(self, dim: int) -> np.ndarray:
        if self.default_embedding is not None:
            return np.asarray(self.default_embedding, dtype=np.float64)
        return np.zeros(dim)


class ServingProxy:
    """Serves user embeddings with a cache in front of the offline store.

    Lookup order mirrors the paper's online module: high-performance cache
    first, bulk store second, and — when a model and featurizer are attached —
    on-the-fly inference for users missing from both (freshly active users).

    Passing ``resilience=ServingResilience(...)`` arms the degradation chain:
    ``cache → store (retry + breaker) → stale snapshot → inference →
    default embedding``.  The stale snapshot is a write-through copy of every
    embedding the proxy has ever served from the store, so a store outage
    degrades freshness rather than availability.  In resilient mode
    :meth:`get_embedding` never returns ``None``.

    With a telemetry session installed every lookup lands in the
    ``serving.lookup_seconds`` latency histogram and a ``serving.lookups``
    counter labelled by where the embedding came from (``cache``/``store``/
    ``stale``/``inferred``/``default``/``miss``); store failures count into
    ``serving.store_errors``.  The same per-source tallies are kept on
    :attr:`source_counts` for offline inspection.
    """

    def __init__(self, store: EmbeddingStore, cache_capacity: int = 10000,
                 infer_fn: Callable[[Hashable], np.ndarray | None] | None = None,
                 resilience: ServingResilience | None = None) -> None:
        self.store = store
        self.cache = LRUCache(cache_capacity, name="serving")
        self._infer_fn = infer_fn
        self.resilience = resilience
        self.inferences = 0
        self.store_errors = 0
        self.corruptions = 0     # corrupt store rows detected and rerouted
        self.deadline_skips = 0  # store reads skipped on an expired deadline
        self.source_counts: Counter[str] = Counter()
        self._stale: dict[Hashable, np.ndarray] = {}

    # -- lookup chain ----------------------------------------------------------

    def _store_get(self, user_id: Hashable) -> np.ndarray | None:
        """One guarded store read; raises on unavailability."""
        res = self.resilience
        if res is None:
            return self.store.get(user_id)

        def attempt() -> np.ndarray | None:
            if res.breaker is not None:
                return res.breaker.call(lambda: self.store.get(user_id))
            return self.store.get(user_id)

        return res.retry.call(attempt, name="store.get")

    def _store_get_batch(self,
                         keys: list[Hashable]) -> tuple[np.ndarray, np.ndarray]:
        """One guarded batch store read: ``(matrix, found_mask)``.

        The whole batch is one read from the retry/breaker's point of view —
        a failure anywhere fails the batch (and counts once against the
        breaker), success resolves every present key in one gather.
        """
        store = self.store

        def read() -> tuple[np.ndarray, np.ndarray]:
            if hasattr(store, "get_batch"):
                return store.get_batch(keys)
            # stores without a batch read: per-key fallback loop
            out = np.zeros((len(keys), store.dim), dtype=np.float64)
            found = np.zeros(len(keys), dtype=bool)
            for pos, key in enumerate(keys):
                vec = store.get(key)
                if vec is not None:
                    out[pos] = vec
                    found[pos] = True
            return out, found

        res = self.resilience
        if res is None:
            return read()

        def attempt() -> tuple[np.ndarray, np.ndarray]:
            if res.breaker is not None:
                return res.breaker.call(read)
            return read()

        return res.retry.call(attempt, name="store.get_batch")

    def lookup(self, user_id: Hashable) -> tuple[np.ndarray | None, str]:
        """Return ``(embedding, source)``; the full degradation chain.

        ``source`` is one of ``cache``/``store``/``stale``/``inferred``/
        ``default``/``miss`` (``miss`` — with a ``None`` embedding — only
        when no resilience policy is attached).
        """
        with obs.latency("serving.lookup_seconds"):
            vec, source = self._lookup(user_id)
            obs.count("serving.lookups", source=source)
            self.source_counts[source] += 1
        return vec, source

    def _note_corrupt(self, n: int) -> None:
        """Tally corrupt store rows (never served — rerouted to fallbacks)."""
        self.corruptions += n
        self.source_counts["corrupt"] += n
        obs.count("serving.corrupt_rows", n)
        obs.event("store.corrupt", rows=n)

    def _note_deadline_skip(self, exc: BaseException) -> None:
        """Tally a store read short-circuited/abandoned on deadline expiry."""
        self.deadline_skips += 1
        obs.count("serving.deadline_skips")
        obs.event("deadline.short_circuit", error=type(exc).__name__)

    def _row_ok(self, vec: np.ndarray) -> bool:
        return vec.shape == (self.store.dim,) and bool(np.isfinite(vec).all())

    def _lookup(self, user_id: Hashable) -> tuple[np.ndarray | None, str]:
        vec = self.cache.get(user_id)
        if vec is not None:
            return vec, "cache"

        source = None
        try:
            with obs.span("proxy.store"):
                vec = self._store_get(user_id)
            if vec is not None and not self._row_ok(np.asarray(vec)):
                # corrupt payload: never serve it — reroute to the fallbacks
                self._note_corrupt(1)
                vec = None
                stale = self._stale.get(user_id)
                if stale is not None:
                    vec, source = stale, "stale"
            elif vec is not None:
                source = "store"
                if self.resilience is not None:
                    self._stale[user_id] = vec
        except DeadlineExceeded as exc:
            # budget spent: short-circuit straight to the degraded tiers
            self._note_deadline_skip(exc)
            stale = self._stale.get(user_id)
            if stale is not None:
                vec, source = stale, "stale"
        except (CircuitOpenError,) + _STORE_ERRORS as exc:
            self.store_errors += 1
            obs.count("serving.store_errors")
            obs.event("store.outage", error=type(exc).__name__)
            stale = self._stale.get(user_id)
            if stale is not None:
                vec, source = stale, "stale"

        if vec is None and self._infer_fn is not None:
            vec = self._infer_fn(user_id)
            if vec is not None:
                self.inferences += 1
                source = "inferred"
                try:
                    self.store.put(user_id, vec)
                except _STORE_ERRORS:
                    pass  # store write-back is best-effort
                if self.resilience is not None:
                    self._stale[user_id] = vec

        if vec is None:
            if self.resilience is None:
                return None, "miss"
            return self.resilience.default_for(self.store.dim), "default"
        self.cache.put(user_id, vec)
        return vec, source

    # -- batched lookup chain --------------------------------------------------

    def lookup_batch(self, user_ids) -> tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`lookup`: ``(matrix, sources)`` aligned with input.

        The whole degradation chain runs on key *groups* instead of single
        keys: one cache probe, one guarded store gather, one stale sweep for
        the outage case, then inference and defaults for the remainder.
        Metrics are aggregated — one ``serving.lookups`` update per source
        seen, one cache counter update per probe.

        Duplicate keys that miss the cache are resolved once and every
        occurrence shares the result (one coherent read); because the whole
        batch resolves together, each occurrence reports the same source,
        where the scalar loop would label the second occurrence a fresh
        ``cache`` hit.
        """
        user_ids = list(user_ids)
        with obs.latency("serving.batch_lookup_seconds"):
            out, sources, counts = self._lookup_batch(user_ids)
            for source, amount in counts.items():
                obs.count("serving.lookups", amount, source=source)
            self.source_counts.update(counts)
        return out, sources

    def _lookup_batch(self,
                      user_ids) -> tuple[np.ndarray, np.ndarray, Counter]:
        """The chain itself; returns ``(matrix, sources, source_counts)``."""
        dim = self.store.dim
        out = np.zeros((len(user_ids), dim), dtype=np.float64)
        sources = np.empty(len(user_ids), dtype=object)
        counts: Counter[str] = Counter()

        # 1. cache: one probe over the raw positions, one fancy-indexed
        # scatter of the hits — the steady-state fast path ends here
        with obs.span("proxy.cache"):
            hit_matrix, hit = self.cache.get_many(user_ids)
        hit_rows = np.flatnonzero(hit)
        if hit_rows.size:
            out[hit_rows] = hit_matrix
            sources[hit_rows] = "cache"
            counts["cache"] = int(hit_rows.size)
        miss_rows = np.flatnonzero(~hit)
        if not miss_rows.size:
            return out, sources, counts

        # Dedupe the *misses* only (warm traffic has few): each unique key
        # resolves once and every occurrence shares the row.
        uniq: list[Hashable] = []
        first: dict[Hashable, int] = {}
        back = np.empty(miss_rows.size, dtype=np.int64)
        for i, pos in enumerate(miss_rows):
            uid = user_ids[pos]
            row = first.get(uid)
            if row is None:
                row = first[uid] = len(uniq)
                uniq.append(uid)
            back[i] = row

        res = np.zeros((len(uniq), dim), dtype=np.float64)
        rsrc = np.empty(len(uniq), dtype=object)
        pending = np.arange(len(uniq))

        # 2. store: one guarded gather for the whole pending group; an
        # outage (or an expired request deadline) fails the group as a unit
        # and the stale sweep takes over

        def stale_sweep(rows) -> np.ndarray:
            """Serve stale snapshots where possible; return the leftovers."""
            still = []
            for row in rows:
                stale = self._stale.get(uniq[row])
                if stale is not None:
                    res[row] = stale
                    rsrc[row] = "stale"
                else:
                    still.append(row)
            return np.asarray(still, dtype=np.int64)

        try:
            with obs.span("proxy.store"):
                got, found = self._store_get_batch(uniq)
        except DeadlineExceeded as exc:
            self._note_deadline_skip(exc)
            pending = stale_sweep(pending)
        except (CircuitOpenError,) + _STORE_ERRORS as exc:
            self.store_errors += 1
            obs.count("serving.store_errors")
            obs.event("store.outage", error=type(exc).__name__)
            pending = stale_sweep(pending)
        else:
            got = np.asarray(got)
            if got.ndim != 2 or got.shape[1] != dim:
                # wrong-dim payload: the whole read is unusable
                good = np.zeros_like(found)
                corrupt = found.copy()
            else:
                finite = np.isfinite(got).all(axis=1)
                good = found & finite
                corrupt = found & ~finite
            good_rows = pending[good]
            if good_rows.size:
                res[good_rows] = got[good]
                rsrc[good_rows] = "store"
                if self.resilience is not None:
                    for row in good_rows:
                        self._stale[uniq[row]] = res[row]
            if corrupt.any():
                self._note_corrupt(int(corrupt.sum()))
                leftovers = stale_sweep(pending[corrupt])
            else:
                leftovers = np.empty(0, dtype=np.int64)
            pending = np.sort(np.concatenate([pending[~found], leftovers]))

        # 3. inference for the remainder, with one batched write-back
        if pending.size and self._infer_fn is not None:
            with obs.span("proxy.infer"):
                still, wb_keys, wb_rows = [], [], []
                for row in pending:
                    vec = self._infer_fn(uniq[row])
                    if vec is None:
                        still.append(row)
                        continue
                    self.inferences += 1
                    res[row] = vec
                    rsrc[row] = "inferred"
                    wb_keys.append(uniq[row])
                    wb_rows.append(res[row])
                    if self.resilience is not None:
                        self._stale[uniq[row]] = res[row]
                if wb_keys:
                    try:
                        self.store.put_many(wb_keys, np.stack(wb_rows))
                    except _STORE_ERRORS:
                        pass  # store write-back is best-effort
                pending = np.asarray(still, dtype=np.int64)

        # 4. defaults (resilient) or misses (legacy); neither is cached
        if pending.size:
            if self.resilience is None:
                rsrc[pending] = "miss"
            else:
                res[pending] = self.resilience.default_for(dim)
                rsrc[pending] = "default"

        cacheable = ((rsrc == "store") | (rsrc == "stale")
                     | (rsrc == "inferred"))
        cache_rows = np.flatnonzero(cacheable)
        if cache_rows.size:
            self.cache.put_many([uniq[row] for row in cache_rows],
                                res[cache_rows])

        miss_sources = rsrc[back]
        out[miss_rows] = res[back]
        sources[miss_rows] = miss_sources
        counts.update(miss_sources.tolist())
        return out, sources, counts

    # -- public API ------------------------------------------------------------

    def get_embedding(self, user_id: Hashable) -> np.ndarray | None:
        """Return the user's embedding, or ``None`` when it cannot be produced.

        With a resilience policy attached this never returns ``None`` — the
        degradation chain bottoms out at the default embedding.
        """
        return self.lookup(user_id)[0]

    def get_embeddings(self, user_ids,
                       default: np.ndarray | None = None) -> np.ndarray:
        """Batch lookup; missing users raise (serving requires coverage).

        ``default`` substitutes a row for unresolvable users instead of
        raising — the misses stay visible in the per-source metrics (and in
        :meth:`get_embeddings_masked`'s mask).  Irrelevant in resilient mode,
        where every lookup resolves.
        """
        rows = []
        for uid in user_ids:
            vec, __ = self.lookup(uid)
            if vec is None:
                if default is None:
                    raise KeyError(f"no embedding available for user {uid!r}")
                vec = np.asarray(default, dtype=np.float64)
            rows.append(vec)
        return np.stack(rows) if rows else np.empty((0, self.store.dim))

    def get_embeddings_masked(self, user_ids) -> tuple[np.ndarray, np.ndarray]:
        """Batch lookup returning ``(matrix, resolved_mask)``.

        Rows for users the chain could not genuinely resolve (legacy-mode
        misses, resilient-mode default rows) are filled with the default
        embedding and flagged ``False`` in the mask — downstream ranking can
        then weight or drop them explicitly instead of crashing.
        """
        dim = self.store.dim
        filler = self.resilience.default_for(dim) if self.resilience \
            else np.zeros(dim)
        rows, mask = [], []
        for uid in user_ids:
            vec, source = self.lookup(uid)
            resolved = source not in ("miss", "default")
            rows.append(vec if vec is not None else filler)
            mask.append(resolved)
        matrix = np.stack(rows) if rows else np.empty((0, dim))
        return matrix, np.asarray(mask, dtype=bool)

    def get_embeddings_batch(self, user_ids,
                             default: np.ndarray | None = None) -> np.ndarray:
        """Vectorised :meth:`get_embeddings`; same contract, one chain pass.

        Missing users raise :class:`KeyError` unless ``default`` substitutes
        a row; in resilient mode every lookup resolves and neither applies.
        """
        user_ids = list(user_ids)
        matrix, sources = self.lookup_batch(user_ids)
        miss = np.asarray(sources == "miss", dtype=bool)
        if miss.any():
            if default is None:
                uid = user_ids[int(np.argmax(miss))]
                raise KeyError(f"no embedding available for user {uid!r}")
            matrix[miss] = np.asarray(default, dtype=np.float64)
        return matrix

    def get_embeddings_masked_batch(
            self, user_ids) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`get_embeddings_masked`: ``(matrix, mask)``.

        Mask semantics match the scalar path: ``False`` for rows the chain
        could not genuinely resolve (legacy misses — zero-filled — and
        resilient default rows).
        """
        matrix, sources = self.lookup_batch(user_ids)
        mask = np.asarray((sources != "miss") & (sources != "default"),
                          dtype=bool)
        return matrix, mask

    @property
    def cache_hit_rate(self) -> float:
        return self.cache.hit_rate
