"""Model-serving proxy: cache → store → model fallback (§IV-D online module)."""

from __future__ import annotations

from typing import Hashable

import numpy as np

from repro.lookalike.store import EmbeddingStore, LRUCache
from repro.obs import runtime as obs

__all__ = ["ServingProxy"]


class ServingProxy:
    """Serves user embeddings with a cache in front of the offline store.

    Lookup order mirrors the paper's online module: high-performance cache
    first, bulk store second, and — when a model and featurizer are attached —
    on-the-fly inference for users missing from both (freshly active users).

    With a telemetry session installed every lookup lands in the
    ``serving.lookup_seconds`` latency histogram and a ``serving.lookups``
    counter labelled by where the embedding came from
    (``cache``/``store``/``inferred``/``miss``).
    """

    def __init__(self, store: EmbeddingStore, cache_capacity: int = 10000,
                 infer_fn=None) -> None:
        self.store = store
        self.cache = LRUCache(cache_capacity, name="serving")
        self._infer_fn = infer_fn
        self.inferences = 0

    def get_embedding(self, user_id: Hashable) -> np.ndarray | None:
        """Return the user's embedding, or ``None`` when it cannot be produced."""
        with obs.latency("serving.lookup_seconds"):
            source = "cache"
            vec = self.cache.get(user_id)
            if vec is None:
                vec = self.store.get(user_id)
                source = "store"
                if vec is None and self._infer_fn is not None:
                    vec = self._infer_fn(user_id)
                    self.inferences += 1
                    source = "inferred"
                    if vec is not None:
                        self.store.put(user_id, vec)
                if vec is not None:
                    self.cache.put(user_id, vec)
                else:
                    source = "miss"
            obs.count("serving.lookups", source=source)
        return vec

    def get_embeddings(self, user_ids) -> np.ndarray:
        """Batch lookup; missing users raise (serving requires coverage)."""
        rows = []
        for uid in user_ids:
            vec = self.get_embedding(uid)
            if vec is None:
                raise KeyError(f"no embedding available for user {uid!r}")
            rows.append(vec)
        return np.stack(rows) if rows else np.empty((0, self.store.dim))

    @property
    def cache_hit_rate(self) -> float:
        return self.cache.hit_rate
