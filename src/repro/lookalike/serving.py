"""Model-serving proxy: cache → store → model fallback (§IV-D online module).

With a :class:`ServingResilience` attached the lookup path degrades instead
of failing: store reads are retried with backoff under a circuit breaker, and
when the store stays down the proxy falls back through a stale last-known-good
snapshot, on-the-fly inference, and finally a field-prior default embedding —
every request gets *some* vector, with the source visible in telemetry.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Hashable

import numpy as np

from repro.lookalike.store import EmbeddingStore, LRUCache
from repro.obs import runtime as obs
from repro.resilience.guards import (CircuitBreaker, CircuitOpenError,
                                     DeadlineExceeded, RetryPolicy)

__all__ = ["ServingProxy", "ServingResilience"]

#: Errors treated as "the store is unavailable" rather than "the user is
#: unknown".  ``StoreUnavailableError`` is a ``ConnectionError`` subclass.
_STORE_ERRORS = (ConnectionError, TimeoutError, OSError)


@dataclass
class ServingResilience:
    """Degradation policy for :class:`ServingProxy` store lookups.

    Attributes
    ----------
    retry:
        Retry-with-backoff policy for store reads.  Retries transient store
        errors only; a :class:`CircuitOpenError` fails over immediately.
    breaker:
        Circuit breaker guarding each read attempt.  While open, lookups
        skip the store and go straight to the fallback chain.
    default_embedding:
        Last-resort vector served when every fallback comes up empty
        (``None`` → zeros).  Use :meth:`from_store_prior` to serve the
        field-prior (mean stored embedding) instead — the serving-side
        equivalent of predicting the prior for an unseen user.
    """

    retry: RetryPolicy = field(default_factory=lambda: RetryPolicy(
        max_attempts=3, backoff_seconds=0.01, max_backoff_seconds=0.25,
        retry_on=_STORE_ERRORS))
    breaker: CircuitBreaker | None = field(default_factory=lambda: CircuitBreaker(
        failure_threshold=5, reset_seconds=5.0, name="serving-store"))
    default_embedding: np.ndarray | None = None

    @classmethod
    def from_store_prior(cls, store: EmbeddingStore,
                         **kwargs) -> "ServingResilience":
        """Build a policy whose default embedding is the store's mean vector."""
        __, matrix = store.as_matrix()
        prior = matrix.mean(axis=0) if len(matrix) else np.zeros(store.dim)
        return cls(default_embedding=prior, **kwargs)

    def default_for(self, dim: int) -> np.ndarray:
        if self.default_embedding is not None:
            return np.asarray(self.default_embedding, dtype=np.float64)
        return np.zeros(dim)


class ServingProxy:
    """Serves user embeddings with a cache in front of the offline store.

    Lookup order mirrors the paper's online module: high-performance cache
    first, bulk store second, and — when a model and featurizer are attached —
    on-the-fly inference for users missing from both (freshly active users).

    Passing ``resilience=ServingResilience(...)`` arms the degradation chain:
    ``cache → store (retry + breaker) → stale snapshot → inference →
    default embedding``.  The stale snapshot is a write-through copy of every
    embedding the proxy has ever served from the store, so a store outage
    degrades freshness rather than availability.  In resilient mode
    :meth:`get_embedding` never returns ``None``.

    With a telemetry session installed every lookup lands in the
    ``serving.lookup_seconds`` latency histogram and a ``serving.lookups``
    counter labelled by where the embedding came from (``cache``/``store``/
    ``stale``/``inferred``/``default``/``miss``); store failures count into
    ``serving.store_errors``.  The same per-source tallies are kept on
    :attr:`source_counts` for offline inspection.
    """

    def __init__(self, store: EmbeddingStore, cache_capacity: int = 10000,
                 infer_fn: Callable[[Hashable], np.ndarray | None] | None = None,
                 resilience: ServingResilience | None = None) -> None:
        self.store = store
        self.cache = LRUCache(cache_capacity, name="serving")
        self._infer_fn = infer_fn
        self.resilience = resilience
        self.inferences = 0
        self.store_errors = 0
        self.source_counts: Counter[str] = Counter()
        self._stale: dict[Hashable, np.ndarray] = {}

    # -- lookup chain ----------------------------------------------------------

    def _store_get(self, user_id: Hashable) -> np.ndarray | None:
        """One guarded store read; raises on unavailability."""
        res = self.resilience
        if res is None:
            return self.store.get(user_id)

        def attempt() -> np.ndarray | None:
            if res.breaker is not None:
                return res.breaker.call(lambda: self.store.get(user_id))
            return self.store.get(user_id)

        return res.retry.call(attempt, name="store.get")

    def lookup(self, user_id: Hashable) -> tuple[np.ndarray | None, str]:
        """Return ``(embedding, source)``; the full degradation chain.

        ``source`` is one of ``cache``/``store``/``stale``/``inferred``/
        ``default``/``miss`` (``miss`` — with a ``None`` embedding — only
        when no resilience policy is attached).
        """
        with obs.latency("serving.lookup_seconds"):
            vec, source = self._lookup(user_id)
            obs.count("serving.lookups", source=source)
            self.source_counts[source] += 1
        return vec, source

    def _lookup(self, user_id: Hashable) -> tuple[np.ndarray | None, str]:
        vec = self.cache.get(user_id)
        if vec is not None:
            return vec, "cache"

        source = None
        try:
            vec = self._store_get(user_id)
            if vec is not None:
                source = "store"
                if self.resilience is not None:
                    self._stale[user_id] = vec
        except (CircuitOpenError, DeadlineExceeded) + _STORE_ERRORS:
            self.store_errors += 1
            obs.count("serving.store_errors")
            stale = self._stale.get(user_id)
            if stale is not None:
                vec, source = stale, "stale"

        if vec is None and self._infer_fn is not None:
            vec = self._infer_fn(user_id)
            if vec is not None:
                self.inferences += 1
                source = "inferred"
                try:
                    self.store.put(user_id, vec)
                except _STORE_ERRORS:
                    pass  # store write-back is best-effort
                if self.resilience is not None:
                    self._stale[user_id] = vec

        if vec is None:
            if self.resilience is None:
                return None, "miss"
            return self.resilience.default_for(self.store.dim), "default"
        self.cache.put(user_id, vec)
        return vec, source

    # -- public API ------------------------------------------------------------

    def get_embedding(self, user_id: Hashable) -> np.ndarray | None:
        """Return the user's embedding, or ``None`` when it cannot be produced.

        With a resilience policy attached this never returns ``None`` — the
        degradation chain bottoms out at the default embedding.
        """
        return self.lookup(user_id)[0]

    def get_embeddings(self, user_ids,
                       default: np.ndarray | None = None) -> np.ndarray:
        """Batch lookup; missing users raise (serving requires coverage).

        ``default`` substitutes a row for unresolvable users instead of
        raising — the misses stay visible in the per-source metrics (and in
        :meth:`get_embeddings_masked`'s mask).  Irrelevant in resilient mode,
        where every lookup resolves.
        """
        rows = []
        for uid in user_ids:
            vec, __ = self.lookup(uid)
            if vec is None:
                if default is None:
                    raise KeyError(f"no embedding available for user {uid!r}")
                vec = np.asarray(default, dtype=np.float64)
            rows.append(vec)
        return np.stack(rows) if rows else np.empty((0, self.store.dim))

    def get_embeddings_masked(self, user_ids) -> tuple[np.ndarray, np.ndarray]:
        """Batch lookup returning ``(matrix, resolved_mask)``.

        Rows for users the chain could not genuinely resolve (legacy-mode
        misses, resilient-mode default rows) are filled with the default
        embedding and flagged ``False`` in the mask — downstream ranking can
        then weight or drop them explicitly instead of crashing.
        """
        dim = self.store.dim
        filler = self.resilience.default_for(dim) if self.resilience \
            else np.zeros(dim)
        rows, mask = [], []
        for uid in user_ids:
            vec, source = self.lookup(uid)
            resolved = source not in ("miss", "default")
            rows.append(vec if vec is not None else filler)
            mask.append(resolved)
        matrix = np.stack(rows) if rows else np.empty((0, dim))
        return matrix, np.asarray(mask, dtype=bool)

    @property
    def cache_hit_rate(self) -> float:
        return self.cache.hit_rate
