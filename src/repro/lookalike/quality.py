"""Audience-quality metrics for look-alike expansion.

The online A/B test measures engagement; offline, expansion quality is
usually tracked as precision/lift against a held-out trait (here: the
ground-truth topic of the synthetic users).
"""

from __future__ import annotations

import numpy as np

__all__ = ["expansion_precision", "expansion_lift", "precision_at_depths"]


def expansion_precision(expanded: np.ndarray, positives: np.ndarray) -> float:
    """Fraction of the expanded audience that carries the seed trait."""
    expanded = np.asarray(expanded)
    if expanded.size == 0:
        return float("nan")
    positive_set = np.asarray(positives)
    return float(np.isin(expanded, positive_set).mean())


def expansion_lift(expanded: np.ndarray, positives: np.ndarray,
                   population_size: int) -> float:
    """Precision relative to the trait's base rate in the population."""
    if population_size <= 0:
        raise ValueError(f"population_size must be positive: {population_size}")
    base_rate = np.asarray(positives).size / population_size
    if base_rate == 0:
        return float("nan")
    return expansion_precision(expanded, positives) / base_rate


def precision_at_depths(expanded: np.ndarray, positives: np.ndarray,
                        depths: list[int]) -> dict[int, float]:
    """Precision of the top-``k`` prefix for several expansion depths."""
    out: dict[int, float] = {}
    for depth in depths:
        if depth <= 0:
            raise ValueError(f"depths must be positive: {depth}")
        out[depth] = expansion_precision(np.asarray(expanded)[:depth], positives)
    return out
