"""Evaluation metrics: AUC/mAP (paper) plus top-K matching-stage metrics."""

from repro.metrics.ranking import (average_precision, mean_ranking_metrics,
                                   roc_auc, sampled_negative_metrics)
from repro.metrics.topk import ndcg_at_k, precision_at_k, recall_at_k, topk_report

__all__ = ["roc_auc", "average_precision", "mean_ranking_metrics",
           "sampled_negative_metrics",
           "recall_at_k", "precision_at_k", "ndcg_at_k", "topk_report"]
