"""Top-K ranking metrics: Recall@K, Precision@K, NDCG@K.

The matching stage (Fig 3 of the paper) recalls a short candidate list per
user, so production dashboards track cut-off metrics alongside AUC/mAP.
All three follow the standard definitions and are averaged over users with at
least one positive.
"""

from __future__ import annotations

import numpy as np

from repro.data.sparse import CSRMatrix

__all__ = ["recall_at_k", "precision_at_k", "ndcg_at_k", "topk_report"]


def _top_k_columns(scores: np.ndarray, k: int) -> np.ndarray:
    k = min(k, scores.shape[1])
    top = np.argpartition(-scores, k - 1, axis=1)[:, :k]
    order = np.take_along_axis(-scores, top, axis=1).argsort(axis=1)
    return np.take_along_axis(top, order, axis=1)


def _validate(scores: np.ndarray, positives: CSRMatrix, k: int) -> None:
    if k <= 0:
        raise ValueError(f"k must be positive: {k}")
    if scores.shape != positives.shape:
        raise ValueError(f"scores {scores.shape} vs positives {positives.shape}")


def recall_at_k(scores: np.ndarray, positives: CSRMatrix, k: int) -> float:
    """Mean over users of |top-K ∩ positives| / |positives|."""
    _validate(scores, positives, k)
    top = _top_k_columns(scores, k)
    values = []
    for i in range(positives.n_rows):
        pos_ids, __ = positives.row(i)
        if pos_ids.size == 0:
            continue
        hits = np.isin(top[i], pos_ids).sum()
        values.append(hits / pos_ids.size)
    return float(np.mean(values)) if values else float("nan")


def precision_at_k(scores: np.ndarray, positives: CSRMatrix, k: int) -> float:
    """Mean over users of |top-K ∩ positives| / K."""
    _validate(scores, positives, k)
    top = _top_k_columns(scores, k)
    effective_k = top.shape[1]
    values = []
    for i in range(positives.n_rows):
        pos_ids, __ = positives.row(i)
        if pos_ids.size == 0:
            continue
        values.append(np.isin(top[i], pos_ids).sum() / effective_k)
    return float(np.mean(values)) if values else float("nan")


def ndcg_at_k(scores: np.ndarray, positives: CSRMatrix, k: int) -> float:
    """Mean normalised discounted cumulative gain at cut-off ``k``.

    Binary relevance; the ideal DCG places all positives at the top.
    """
    _validate(scores, positives, k)
    top = _top_k_columns(scores, k)
    effective_k = top.shape[1]
    discounts = 1.0 / np.log2(np.arange(2, effective_k + 2))
    values = []
    for i in range(positives.n_rows):
        pos_ids, __ = positives.row(i)
        if pos_ids.size == 0:
            continue
        gains = np.isin(top[i], pos_ids).astype(np.float64)
        dcg = float((gains * discounts).sum())
        ideal_hits = min(pos_ids.size, effective_k)
        idcg = float(discounts[:ideal_hits].sum())
        values.append(dcg / idcg if idcg > 0 else 0.0)
    return float(np.mean(values)) if values else float("nan")


def topk_report(scores: np.ndarray, positives: CSRMatrix,
                ks: list[int]) -> dict[int, dict[str, float]]:
    """Recall/Precision/NDCG at several cut-offs in one pass per k."""
    return {
        k: {
            "recall": recall_at_k(scores, positives, k),
            "precision": precision_at_k(scores, positives, k),
            "ndcg": ndcg_at_k(scores, positives, k),
        }
        for k in ks
    }
