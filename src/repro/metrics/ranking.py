"""Ranking metrics used throughout the paper's evaluation: AUC and mAP.

Both tasks (reconstruction, tag prediction) score every user's candidate
features and compare the ranking against the held-out positives.  The paper
reports the *mean over users* of per-user AUC and Average Precision; we follow
that convention (users without both a positive and a negative are skipped).
"""

from __future__ import annotations

import numpy as np
from scipy.stats import rankdata

from repro.data.sparse import CSRMatrix
from repro.utils.rng import new_rng

__all__ = ["roc_auc", "average_precision", "mean_ranking_metrics",
           "sampled_negative_metrics"]


def roc_auc(scores: np.ndarray, labels: np.ndarray) -> float:
    """Area under the ROC curve via the Mann–Whitney statistic (tie-aware).

    Returns ``nan`` when labels are single-class.
    """
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels).astype(bool)
    n_pos = int(labels.sum())
    n_neg = labels.size - n_pos
    if n_pos == 0 or n_neg == 0:
        return float("nan")
    ranks = rankdata(scores)  # average ranks handle ties correctly
    rank_sum = ranks[labels].sum()
    return float((rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg))


def average_precision(scores: np.ndarray, labels: np.ndarray) -> float:
    """Average precision of the ranking induced by ``scores``.

    AP = mean over positives of precision@rank-of-positive.  Returns ``nan``
    when there is no positive.
    """
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels).astype(bool)
    if not labels.any():
        return float("nan")
    order = np.argsort(-scores, kind="stable")
    hits = labels[order]
    cum_hits = np.cumsum(hits)
    precision_at = cum_hits / np.arange(1, labels.size + 1)
    return float(precision_at[hits].mean())


def mean_ranking_metrics(score_matrix: np.ndarray, positives: CSRMatrix,
                         ) -> dict[str, float]:
    """Mean per-user AUC and AP of dense scores against CSR positives.

    Parameters
    ----------
    score_matrix:
        ``(N, J_k)`` model scores for every user and feature of one field.
    positives:
        CSR of held-out positive features per user; weights are ignored (the
        metrics are computed on the multi-hot structure).
    """
    if score_matrix.shape != positives.shape:
        raise ValueError(f"scores {score_matrix.shape} vs positives {positives.shape}")
    aucs: list[float] = []
    aps: list[float] = []
    for i in range(positives.n_rows):
        pos_ids, __ = positives.row(i)
        if pos_ids.size == 0 or pos_ids.size == positives.n_cols:
            continue
        labels = np.zeros(positives.n_cols, dtype=bool)
        labels[pos_ids] = True
        aucs.append(roc_auc(score_matrix[i], labels))
        aps.append(average_precision(score_matrix[i], labels))
    return {
        "auc": float(np.nanmean(aucs)) if aucs else float("nan"),
        "map": float(np.nanmean(aps)) if aps else float("nan"),
        "n_users": len(aucs),
    }


def sampled_negative_metrics(score_matrix: np.ndarray, positives: CSRMatrix,
                             rng: np.random.Generator | int | None = None,
                             negatives_per_positive: int = 1) -> dict[str, float]:
    """Tag-prediction protocol of §V-B2: positives vs equal-sized sampled negatives.

    For every user, the observed tags are positives and an equal number of
    *unobserved* tags are drawn uniformly as negatives; AUC/AP are computed on
    that subset and averaged over users.
    """
    if score_matrix.shape != positives.shape:
        raise ValueError(f"scores {score_matrix.shape} vs positives {positives.shape}")
    rng = new_rng(rng)
    n_cols = positives.n_cols
    aucs: list[float] = []
    aps: list[float] = []
    for i in range(positives.n_rows):
        pos_ids, __ = positives.row(i)
        if pos_ids.size == 0:
            continue
        n_neg = min(pos_ids.size * negatives_per_positive, n_cols - pos_ids.size)
        if n_neg <= 0:
            continue
        pos_set = set(pos_ids.tolist())
        # rejection-sample unobserved tags
        neg_ids: list[int] = []
        while len(neg_ids) < n_neg:
            draw = rng.integers(0, n_cols, size=2 * n_neg)
            for d in draw:
                if d not in pos_set:
                    neg_ids.append(int(d))
                    pos_set.add(int(d))  # avoid duplicate negatives
                    if len(neg_ids) == n_neg:
                        break
        ids = np.concatenate([pos_ids, np.asarray(neg_ids, dtype=np.int64)])
        labels = np.zeros(ids.size, dtype=bool)
        labels[: pos_ids.size] = True
        scores = score_matrix[i, ids]
        aucs.append(roc_auc(scores, labels))
        aps.append(average_precision(scores, labels))
    return {
        "auc": float(np.nanmean(aucs)) if aucs else float("nan"),
        "map": float(np.nanmean(aps)) if aps else float("nan"),
        "n_users": len(aucs),
    }
