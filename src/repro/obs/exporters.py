"""Telemetry exporters: JSONL event log and Prometheus-style text snapshot.

Two complementary output formats:

* **JSONL** — one JSON object per line, streamed (:class:`JsonlWriter`) or
  snapshot (:func:`dump_jsonl`).  Machine-friendly, replayable; this is what
  ``python -m repro report`` consumes.
* **Prometheus text** — the classic exposition format (counters, gauges, and
  histogram summaries with quantile labels), for scraping or eyeballing.

Only stdlib ``json`` is used; non-finite floats are serialised as strings
(``"nan"``/``"inf"``) so every emitted line is strict JSON.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import IO, Iterable, Mapping

__all__ = ["JsonlWriter", "dump_jsonl", "load_jsonl", "to_prometheus",
           "events_to_prometheus"]


def _jsonable(value):
    """Strict-JSON-safe scalar: non-finite floats become strings."""
    if isinstance(value, float) and not math.isfinite(value):
        return "nan" if math.isnan(value) else ("inf" if value > 0 else "-inf")
    return value


def _clean(event: Mapping) -> dict:
    out = {}
    for key, value in event.items():
        if isinstance(value, Mapping):
            out[key] = _clean(value)
        else:
            out[key] = _jsonable(value)
    return out


class JsonlWriter:
    """Append-only JSONL event stream, one flushed line per :meth:`emit`."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh: IO[str] | None = None
        self.lines = 0

    def _handle(self) -> IO[str]:
        if self._fh is None:
            self._fh = open(self.path, "a", encoding="utf-8")
        return self._fh

    def emit(self, event_type: str, **fields) -> dict:
        event = _clean({"type": event_type, **fields})
        fh = self._handle()
        fh.write(json.dumps(event, sort_keys=True) + "\n")
        fh.flush()
        self.lines += 1
        return event

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def dump_jsonl(telemetry, path: str | Path, run_id: str | None = None) -> int:
    """Write a telemetry session snapshot as JSONL; returns lines written."""
    events = telemetry.snapshot()
    with open(path, "w", encoding="utf-8") as fh:
        if run_id is not None:
            fh.write(json.dumps(_clean({"type": "meta", "run_id": run_id,
                                        "events": len(events)}),
                                sort_keys=True) + "\n")
        for event in events:
            fh.write(json.dumps(_clean(event), sort_keys=True) + "\n")
    return len(events) + (1 if run_id is not None else 0)


def load_jsonl(path: str | Path) -> list[dict]:
    """Parse a JSONL event file back into dicts (blank lines skipped)."""
    events = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


# -- Prometheus text format ----------------------------------------------------

def _prom_name(name: str) -> str:
    return "".join(c if (c.isalnum() or c == "_") else "_" for c in name)


def _prom_escape(value: str) -> str:
    """Escape a label value per the exposition format: ``\\``, ``"``, newline."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _prom_labels(labels: Mapping[str, str], extra: Mapping[str, str] | None = None,
                 ) -> str:
    merged = {**labels, **(extra or {})}
    if not merged:
        return ""
    body = ",".join(f'{_prom_name(k)}="{_prom_escape(v)}"'
                    for k, v in sorted(merged.items()))
    return "{" + body + "}"


def _prom_value(value: float) -> str:
    if isinstance(value, str):      # "nan"/"inf" round-tripped through JSONL
        value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def events_to_prometheus(events: Iterable[Mapping]) -> str:
    """Render snapshot events as Prometheus exposition text.

    Reservoir histograms render as summaries (``quantile`` labels); log-
    bucket histograms render as true Prometheus *histograms* — cumulative
    well-formed ``_bucket{le="..."}`` lines ending in ``le="+Inf"`` plus
    ``_sum`` and ``_count``.  Label values are escaped per the exposition
    format, and an empty event stream yields the empty string (no stray
    newline, no garbage).  Span and meta events are skipped — spans have no
    Prometheus analogue; use the report table for those.
    """
    lines: list[str] = []
    typed: dict[str, str] = {}
    for event in events:
        kind = event.get("type")
        if kind not in ("counter", "gauge", "histogram", "loghist"):
            continue
        name = _prom_name(event["name"])
        labels = event.get("labels", {})
        if typed.setdefault(name, kind) != kind:
            raise ValueError(f"metric {name!r} appears as both "
                             f"{typed[name]} and {kind}")
        if kind == "counter":
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name}{_prom_labels(labels)} "
                         f"{_prom_value(event['value'])}")
        elif kind == "gauge":
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name}{_prom_labels(labels)} "
                         f"{_prom_value(event['value'])}")
        elif kind == "loghist":
            lines.append(f"# TYPE {name} histogram")
            for le, cum in event.get("buckets", []):
                lines.append(
                    f"{name}_bucket{_prom_labels(labels, {'le': _prom_value(le)})}"
                    f" {_prom_value(float(cum))}")
            lines.append(f"{name}_bucket{_prom_labels(labels, {'le': '+Inf'})}"
                         f" {_prom_value(float(event['count']))}")
            lines.append(f"{name}_sum{_prom_labels(labels)} "
                         f"{_prom_value(event['sum'])}")
            lines.append(f"{name}_count{_prom_labels(labels)} "
                         f"{_prom_value(float(event['count']))}")
        else:
            lines.append(f"# TYPE {name} summary")
            for q, key in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
                lines.append(f"{name}{_prom_labels(labels, {'quantile': q})} "
                             f"{_prom_value(event[key])}")
            lines.append(f"{name}_sum{_prom_labels(labels)} "
                         f"{_prom_value(event['sum'])}")
            lines.append(f"{name}_count{_prom_labels(labels)} "
                         f"{_prom_value(float(event['count']))}")
    return "\n".join(lines) + ("\n" if lines else "")


def to_prometheus(registry) -> str:
    """Prometheus text snapshot of a live registry."""
    return events_to_prometheus(registry.snapshot())
