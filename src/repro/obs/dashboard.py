"""Live terminal serving dashboard — the backend of ``python -m repro top``.

Renders one text *frame* from a metrics-registry snapshot: QPS (computed
from counter deltas between frames), serving latency percentiles from the
log-bucket histograms, cache hit rate, the per-source lookup breakdown
(cache/store/stale/inferred/default/miss) with proportional bars, micro-
batcher flush triggers, circuit-breaker states, trace-store retention,
static-graph capture activity (trace/replay/fallback counts and workspace-
arena footprint, when a captured training run is feeding the registry), and —
when an :class:`~repro.obs.slo.SLOEngine` is attached — the SLO verdict
table with error-budget burn.

Everything is derived from plain snapshot events, so the renderer is a pure
function over data the registry already exports; the :class:`Dashboard`
wrapper just remembers the previous frame's counters to turn totals into
rates.  No curses, no ANSI requirements — each frame is a plain string, so
it works over ssh, in CI logs, and in tests.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, Mapping

from repro.viz.tables import format_table

__all__ = ["Dashboard", "render_dashboard"]

_SOURCES = ("cache", "store", "stale", "inferred", "default", "miss")
_BREAKER_STATES = {0.0: "closed", 1.0: "half_open", 2.0: "open"}


def _index(events: Iterable[Mapping]) -> dict:
    by_key: dict[tuple, dict] = {}
    for ev in events:
        labels = tuple(sorted((ev.get("labels") or {}).items()))
        by_key[(ev.get("name"), labels)] = dict(ev)
    return by_key


def _get(index: Mapping, name: str, **labels):
    return index.get((name, tuple(sorted((str(k), str(v))
                                         for k, v in labels.items()))))


def _num(value, default=float("nan")) -> float:
    try:
        return float(value)
    except (TypeError, ValueError):
        return default


def _bar(fraction: float, width: int = 24) -> str:
    fraction = min(max(fraction, 0.0), 1.0)
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:8.3f}" if seconds == seconds else "       -"


def render_dashboard(events: Iterable[Mapping], qps: float | None = None,
                     slo_table: str | None = None,
                     trace_stats: Mapping | None = None,
                     title: str = "repro serving") -> str:
    """One dashboard frame from registry snapshot events (pure function)."""
    index = _index(events)
    lines: list[str] = []

    lookups = [(src, _num(ev["value"], 0.0)) for src in _SOURCES
               if (ev := _get(index, "serving.lookups", source=src))]
    total_lookups = sum(n for __, n in lookups)
    flushes = {trig: _num(ev["value"], 0.0)
               for trig in ("size", "deadline", "manual", "sync")
               if (ev := _get(index, "serve.flushes", trigger=trig))}

    header = f"== {title} =="
    if qps is not None:
        header += f"  QPS {qps:,.0f}"
    header += f"  requests {total_lookups:,.0f}"
    lines.append(header)

    # latency percentiles from the log-bucket latency histograms
    latency_rows = []
    for name, label in (("serving.lookup_seconds", "lookup (scalar)"),
                        ("serving.batch_lookup_seconds", "lookup (batch)"),
                        ("lsh.query_seconds", "lsh query"),
                        ("serve.request_seconds", "request e2e")):
        ev = _get(index, name)
        if ev is None:
            continue
        latency_rows.append([label, int(_num(ev.get("count"), 0)),
                             _fmt_ms(_num(ev.get("p50"))),
                             _fmt_ms(_num(ev.get("p95"))),
                             _fmt_ms(_num(ev.get("p99"))),
                             _fmt_ms(_num(ev.get("max")))])
    if latency_rows:
        lines.append("")
        lines.append(format_table(
            ["latency (ms)", "count", "p50", "p95", "p99", "max"],
            latency_rows, title="Latency"))

    # cache hit rate
    hits_ev = _get(index, "cache.hits", cache="serving")
    miss_ev = _get(index, "cache.misses", cache="serving")
    if hits_ev or miss_ev:
        hits = _num(hits_ev["value"], 0.0) if hits_ev else 0.0
        misses = _num(miss_ev["value"], 0.0) if miss_ev else 0.0
        total = hits + misses
        rate = hits / total if total else 0.0
        lines.append("")
        lines.append(f"cache hit rate  {_bar(rate)}  {rate * 100:6.2f}%  "
                     f"({hits:,.0f} hits / {total:,.0f} probes)")

    # per-source breakdown
    if lookups:
        lines.append("")
        lines.append("lookups by source")
        for src, n in lookups:
            share = n / total_lookups if total_lookups else 0.0
            lines.append(f"  {src:<9} {_bar(share)} {share * 100:6.2f}%  "
                         f"{n:,.0f}")

    # micro-batcher
    if flushes:
        batch_ev = _get(index, "serve.batch_size")
        mean_batch = _num(batch_ev.get("mean")) if batch_ev else float("nan")
        parts = "  ".join(f"{trig}={int(n)}" for trig, n in flushes.items())
        lines.append("")
        lines.append(f"batcher flushes  {parts}  "
                     f"(mean batch {mean_batch:.1f})")

    # static-graph capture / workspace arena (training runs)
    cap = {key: _num(ev["value"], 0.0)
           for key in ("captures", "replays", "fallbacks")
           if (ev := _get(index, f"nn.graph.{key}"))}
    if cap:
        parts = "  ".join(f"{key}={int(n)}" for key, n in cap.items())
        line = f"capture  {parts}"
        reuses = _get(index, "nn.alloc.arena_reuses")
        if reuses is not None:
            line += f"  arena_reuses={int(_num(reuses['value'], 0.0))}"
        live = _get(index, "nn.alloc.workspace_bytes_live")
        if live is not None:
            line += f"  workspace={_num(live['value'], 0.0) / 1e6:.2f}MB"
        lines.append("")
        lines.append(line)

    # breaker states
    breakers = [(labels, ev) for (name, labels), ev in index.items()
                if name == "breaker.state"]
    if breakers:
        lines.append("")
        for labels, ev in sorted(breakers):
            name = dict(labels).get("breaker", "?")
            state = _BREAKER_STATES.get(_num(ev["value"]), "?")
            flag = " !" if state != "closed" else ""
            lines.append(f"breaker {name:<16} {state}{flag}")

    if trace_stats:
        lines.append("")
        lines.append(f"traces  kept={trace_stats.get('kept', 0)} "
                     f"errors={trace_stats.get('errors', 0)} "
                     f"finished={trace_stats.get('finished', 0)} "
                     f"open={trace_stats.get('open', 0)}")

    if slo_table:
        lines.append("")
        lines.append(slo_table)

    if len(lines) == 1:
        lines.append("(no serving metrics yet)")
    return "\n".join(lines)


class Dashboard:
    """Stateful frame renderer: turns counter totals into rates.

    Holds the previous frame's request total + timestamp so QPS is the
    *delta* rate over the refresh interval, not a lifetime average.
    """

    def __init__(self, telemetry, slo_engine=None,
                 clock: Callable[[], float] = time.monotonic,
                 title: str = "repro serving") -> None:
        self.telemetry = telemetry
        self.slo_engine = slo_engine
        self.clock = clock
        self.title = title
        self._last_total: float | None = None
        self._last_ts: float | None = None

    def _request_total(self, events) -> float:
        total = 0.0
        for ev in events:
            if ev.get("name") == "serving.lookups":
                total += _num(ev.get("value"), 0.0)
        return total

    def frame(self) -> str:
        events = self.telemetry.registry.snapshot()
        now = self.clock()
        total = self._request_total(events)
        qps = None
        if self._last_ts is not None and now > self._last_ts:
            qps = max(total - self._last_total, 0.0) / (now - self._last_ts)
        self._last_total, self._last_ts = total, now

        traces = self.telemetry.traces
        trace_stats = {"kept": len(traces.traces()),
                       "errors": len(traces.error_traces()),
                       "finished": traces.finished,
                       "open": traces.open_traces}
        slo_table = (self.slo_engine.render() if self.slo_engine is not None
                     else None)
        return render_dashboard(events, qps=qps, slo_table=slo_table,
                                trace_stats=trace_stats, title=self.title)
