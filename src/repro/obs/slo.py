"""Declarative SLO engine: objectives, rolling windows, error-budget burn.

An :class:`Objective` states what "good" means — ``p99 latency <= 50ms``,
``availability >= 99.9%`` — and both kinds reduce to the same arithmetic:
a **good-event fraction** over a rolling window (a request is *good* for a
latency objective when it succeeded within the threshold; ``pN <= X`` is
exactly "at least N% of requests are good").  From that single reduction
fall out the three numbers an operator actually watches:

* ``good_fraction`` vs ``target`` → the pass/fail verdict;
* ``error budget`` — the fraction of the window's allowed bad events still
  unspent (1.0 = untouched, 0.0 = exactly exhausted, negative = violated);
* ``burn rate`` — how fast the budget is being consumed (1.0 = burning at
  exactly the sustainable rate; 14.4 is the classic page-now threshold).

The engine's clock is injectable, so a scripted latency timeline drives a
deterministic verdict in tests; ``python -m repro slo`` feeds it from a live
serving workload or a recorded timeline file.
"""

from __future__ import annotations

import re
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from repro.viz.tables import format_table

__all__ = ["Objective", "SLOStatus", "SLOEngine", "latency_slo",
           "availability_slo", "parse_objective"]


@dataclass(frozen=True)
class Objective:
    """One service-level objective over a rolling window.

    ``kind`` is ``"latency"`` (good = ok and ``latency <= threshold``) or
    ``"availability"`` (good = ok).  ``target`` is the required good
    fraction — 0.99 for a p99 latency bound, 0.999 for three nines.
    """

    name: str
    kind: str
    target: float
    threshold_seconds: float | None = None
    window_seconds: float = 300.0

    def __post_init__(self) -> None:
        if self.kind not in ("latency", "availability"):
            raise ValueError(f"unknown objective kind: {self.kind!r}")
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"target must be in (0, 1): {self.target}")
        if self.kind == "latency" and (self.threshold_seconds is None
                                       or self.threshold_seconds <= 0):
            raise ValueError("latency objectives need threshold_seconds > 0")
        if self.window_seconds <= 0:
            raise ValueError(f"window must be positive: {self.window_seconds}")

    def describe(self) -> str:
        if self.kind == "latency":
            quantile = 100.0 * self.target
            q = f"{quantile:g}".rstrip("0").rstrip(".")
            return (f"p{q} latency <= "
                    f"{self.threshold_seconds * 1e3:g}ms")
        return f"availability >= {self.target * 100:g}%"


def latency_slo(name: str, threshold_ms: float, quantile: float = 99.0,
                window_seconds: float = 300.0) -> Objective:
    """``pN latency <= X ms``: at least N% of requests within the bound."""
    return Objective(name=name, kind="latency", target=quantile / 100.0,
                     threshold_seconds=threshold_ms / 1e3,
                     window_seconds=window_seconds)


def availability_slo(name: str, target_percent: float = 99.9,
                     window_seconds: float = 300.0) -> Objective:
    return Objective(name=name, kind="availability",
                     target=target_percent / 100.0,
                     window_seconds=window_seconds)


_LATENCY_RE = re.compile(
    r"^\s*p(?P<q>\d+(?:\.\d+)?)\s*(?:latency)?\s*<=\s*"
    r"(?P<v>\d+(?:\.\d+)?)\s*(?P<unit>ms|s|us)\s*$", re.IGNORECASE)
_AVAIL_RE = re.compile(
    r"^\s*availability\s*>=\s*(?P<v>\d+(?:\.\d+)?)\s*%\s*$", re.IGNORECASE)


def parse_objective(spec: str, name: str | None = None,
                    window_seconds: float = 300.0) -> Objective:
    """Parse a declarative spec: ``"p99 latency <= 50ms"`` or
    ``"availability >= 99.9%"``."""
    match = _LATENCY_RE.match(spec)
    if match:
        scale = {"us": 1e-3, "ms": 1.0, "s": 1e3}[match["unit"].lower()]
        return latency_slo(name or spec.strip(),
                           threshold_ms=float(match["v"]) * scale,
                           quantile=float(match["q"]),
                           window_seconds=window_seconds)
    match = _AVAIL_RE.match(spec)
    if match:
        return availability_slo(name or spec.strip(),
                                target_percent=float(match["v"]),
                                window_seconds=window_seconds)
    raise ValueError(
        f"cannot parse SLO spec {spec!r} (want 'pN latency <= Xms' "
        f"or 'availability >= X%')")


@dataclass(frozen=True)
class SLOStatus:
    """One objective's verdict at evaluation time."""

    objective: Objective
    total: int
    good: int
    passed: bool
    observed: float          # measured pN latency (s) or availability
    budget_remaining: float  # fraction of allowed-bad budget unspent
    burn_rate: float         # bad-rate / allowed-bad-rate (1.0 = sustainable)

    @property
    def bad(self) -> int:
        return self.total - self.good

    def __str__(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        if self.objective.kind == "latency":
            seen = f"observed {self.observed * 1e3:.2f}ms"
        else:
            seen = f"observed {self.observed * 100:.3f}%"
        return (f"{verdict} {self.objective.name}: {self.objective.describe()}"
                f" — {seen}, budget {self.budget_remaining * 100:.1f}%, "
                f"burn {self.burn_rate:.2f}x over {self.total} requests")


class SLOEngine:
    """Evaluate a set of objectives over a rolling sample window.

    ``record(latency_seconds, ok)`` appends one request outcome stamped with
    the engine clock; ``evaluate()`` prunes each objective's window and
    returns one :class:`SLOStatus` per objective.  The clock is injectable
    (``ManualClock``), making verdicts on scripted timelines deterministic.
    """

    def __init__(self, objectives: Iterable[Objective],
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.objectives = list(objectives)
        if not self.objectives:
            raise ValueError("SLOEngine needs at least one objective")
        self.clock = clock
        self._max_window = max(o.window_seconds for o in self.objectives)
        self._samples: deque[tuple[float, float, bool]] = deque()
        self.recorded = 0

    def record(self, latency_seconds: float, ok: bool = True,
               ts: float | None = None) -> None:
        ts = self.clock() if ts is None else ts
        self._samples.append((ts, float(latency_seconds), bool(ok)))
        self.recorded += 1
        self._prune(ts)

    def record_many(self, latencies: Iterable[float], ok: bool = True) -> None:
        for latency in latencies:
            self.record(latency, ok=ok)

    def _prune(self, now: float) -> None:
        horizon = now - self._max_window
        samples = self._samples
        while samples and samples[0][0] < horizon:
            samples.popleft()

    def window(self, objective: Objective,
               now: float) -> list[tuple[float, float, bool]]:
        horizon = now - objective.window_seconds
        return [s for s in self._samples if s[0] >= horizon]

    def evaluate(self, now: float | None = None) -> list[SLOStatus]:
        now = self.clock() if now is None else now
        self._prune(now)
        out = []
        for objective in self.objectives:
            samples = self.window(objective, now)
            out.append(self._evaluate_one(objective, samples))
        return out

    def _evaluate_one(self, objective: Objective,
                      samples: list[tuple[float, float, bool]]) -> SLOStatus:
        total = len(samples)
        if total == 0:
            # no traffic burns no budget
            return SLOStatus(objective, 0, 0, True, float("nan"), 1.0, 0.0)
        if objective.kind == "latency":
            good = sum(1 for __, lat, ok in samples
                       if ok and lat <= objective.threshold_seconds)
            latencies = np.array([lat for __, lat, ok in samples if ok])
            observed = (float(np.percentile(latencies,
                                            objective.target * 100.0))
                        if latencies.size else float("inf"))
        else:
            good = sum(1 for __, __l, ok in samples if ok)
            observed = good / total
        bad = total - good
        allowed = (1.0 - objective.target) * total
        budget_remaining = 1.0 - (bad / allowed) if allowed > 0 else \
            (1.0 if bad == 0 else float("-inf"))
        burn_rate = (bad / total) / (1.0 - objective.target)
        passed = good / total >= objective.target
        return SLOStatus(objective, total, good, passed, observed,
                         budget_remaining, burn_rate)

    def render(self, now: float | None = None) -> str:
        """Aligned verdict table (the body of ``python -m repro slo``)."""
        rows = []
        for status in self.evaluate(now):
            objective = status.objective
            observed = (f"{status.observed * 1e3:.2f}ms"
                        if objective.kind == "latency"
                        else (f"{status.observed * 100:.3f}%"
                              if status.total else "-"))
            rows.append([objective.name, objective.describe(),
                         "PASS" if status.passed else "FAIL", status.total,
                         status.bad, observed,
                         f"{status.budget_remaining * 100:.1f}%",
                         f"{status.burn_rate:.2f}x"])
        return format_table(
            ["objective", "definition", "verdict", "requests", "bad",
             "observed", "budget left", "burn"],
            rows, title="SLO verdicts")

    @property
    def all_passing(self) -> bool:
        return all(status.passed for status in self.evaluate())
