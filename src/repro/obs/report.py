"""Human-readable telemetry reports, rendered via :mod:`repro.viz.tables`.

Turns a telemetry snapshot — a live :class:`~repro.obs.runtime.Telemetry`
session or events loaded from a JSONL dump — into the aligned text tables the
rest of the benchmark harness uses: a span time tree (with share-of-parent
percentages), counters, gauges, and histogram latency summaries.  This is the
backend of ``python -m repro report``.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.viz.tables import format_table

__all__ = ["render_events", "render_report"]


def _as_float(value) -> float:
    """Undo the exporters' string encoding of non-finite floats."""
    return float(value) if not isinstance(value, bool) else float(value)


def _fmt_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return "-"
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items()))


def _span_table(spans: list[dict]) -> str:
    """Span tree with per-node share of its parent's total."""
    totals = {s["path"]: _as_float(s["total"]) for s in spans}
    rows = []
    for s in spans:
        path = s["path"]
        depth = path.count("/")
        parent = path.rsplit("/", 1)[0] if depth else None
        parent_total = totals.get(parent, 0.0) if parent else None
        share = (100.0 * _as_float(s["total"]) / parent_total
                 if parent_total else float("nan"))
        rows.append(["  " * depth + s["name"], s["count"],
                     _as_float(s["total"]), _as_float(s["self_time"]),
                     _as_float(s["mean"]) * 1e3, share])
    return format_table(
        ["span", "count", "total s", "self s", "mean ms", "% parent"],
        rows, title="Span time tree")


def _counter_table(counters: list[dict]) -> str:
    rows = [[c["name"], _fmt_labels(c.get("labels", {})), _as_float(c["value"])]
            for c in counters]
    return format_table(["counter", "labels", "value"], rows,
                        title="Counters", float_fmt="{:.0f}")


def _gauge_table(gauges: list[dict]) -> str:
    rows = [[g["name"], _fmt_labels(g.get("labels", {})), _as_float(g["value"])]
            for g in gauges]
    return format_table(["gauge", "labels", "value"], rows, title="Gauges")


def _histogram_table(hists: list[dict]) -> str:
    """One table for both sketch kinds (reservoir + log-bucket)."""
    rows = []
    for h in hists:
        name = h["name"] + (" (log)" if h.get("type") == "loghist" else "")
        rows.append([name, _fmt_labels(h.get("labels", {})), h["count"],
                     _as_float(h["mean"]), _as_float(h["p50"]),
                     _as_float(h["p95"]), _as_float(h["p99"]),
                     _as_float(h["max"])])
    return format_table(
        ["histogram", "labels", "count", "mean", "p50", "p95", "p99", "max"],
        rows, title="Histograms", float_fmt="{:.6g}")


def render_events(events: Iterable[Mapping]) -> str:
    """Render snapshot events (e.g. from ``load_jsonl``) as a text report."""
    by_type: dict[str, list[dict]] = {}
    for event in events:
        by_type.setdefault(event.get("type", "?"), []).append(dict(event))

    sections = []
    meta = by_type.get("meta")
    if meta:
        sections.append(f"run: {meta[0].get('run_id', '?')} "
                        f"({meta[0].get('events', '?')} events)")
    if by_type.get("span"):
        sections.append(_span_table(by_type["span"]))
    if by_type.get("counter"):
        sections.append(_counter_table(by_type["counter"]))
    if by_type.get("gauge"):
        sections.append(_gauge_table(by_type["gauge"]))
    hists = by_type.get("histogram", []) + by_type.get("loghist", [])
    if hists:
        sections.append(_histogram_table(hists))
    if not sections:
        return "no telemetry events"
    return "\n\n".join(sections)


def render_report(telemetry) -> str:
    """Render a live :class:`~repro.obs.runtime.Telemetry` session."""
    return render_events(telemetry.snapshot())
