"""Span tracer: nested timing contexts aggregated into a per-stage time tree.

``with tracer.span("forward"):`` opens a stage; spans nest, and every
(parent-path, name) pair aggregates into one :class:`SpanNode` — re-entering
``epoch/forward`` a thousand times yields a single node with ``count=1000``
and the summed wall-clock.  This is exactly the per-stage cost breakdown the
paper's efficiency argument is built on (where does a training step spend its
time: hash lookup, candidate sampling, batched softmax, sparse update?).

Timing uses ``time.perf_counter`` by default; the tree *structure* and visit
counts are deterministic for a fixed workload even though durations vary run
to run.  Tests inject ``SpanTracer(clock=...)`` (e.g. a
:class:`repro.utils.ManualClock`) to make durations deterministic too.

The stack of *open* spans is per-thread (``threading.local``): spans opened
from a daemon thread (``PrefetchLoader`` batch prep, a ``MicroBatcher``
flush) nest under that thread's own spans, never under whatever the main
thread happens to have open.  The aggregated tree is shared — all threads
fold their timings into the same nodes (child creation is atomic via
``dict.setdefault``; concurrent ``count``/``total`` updates on the *same*
node may lose an increment under free-threading, an accepted tolerance for
an aggregate profile).
"""

from __future__ import annotations

import threading
import time
from typing import Callable

__all__ = ["SpanNode", "SpanTracer"]


class SpanNode:
    """One aggregated stage in the span tree."""

    __slots__ = ("name", "count", "total", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.children: dict[str, SpanNode] = {}

    def child(self, name: str) -> "SpanNode":
        node = self.children.get(name)
        if node is None:
            # setdefault is atomic in CPython: two threads racing to create
            # the same child both end up holding the one that won.
            node = self.children.setdefault(name, SpanNode(name))
        return node

    @property
    def self_time(self) -> float:
        """Time spent in this span but not in any child span."""
        return self.total - sum(c.total for c in self.children.values())

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def walk(self, path: str = ""):
        """Yield ``(path, node)`` depth-first in insertion order."""
        here = f"{path}/{self.name}" if path else self.name
        yield here, self
        for child in self.children.values():
            yield from child.walk(here)

    def __repr__(self) -> str:
        return (f"SpanNode({self.name!r}, count={self.count}, "
                f"total={self.total:.4f}s, children={len(self.children)})")


class _Span:
    """Active timing context; hand-rolled for low enter/exit overhead."""

    __slots__ = ("_tracer", "_node", "_start")

    def __init__(self, tracer: "SpanTracer", node: SpanNode) -> None:
        self._tracer = tracer
        self._node = node

    def __enter__(self) -> "_Span":
        self._tracer._thread_stack().append(self._node)
        self._start = self._tracer._clock()
        return self

    def __exit__(self, *exc) -> None:
        elapsed = self._tracer._clock() - self._start
        node = self._node
        node.count += 1
        node.total += elapsed
        stack = self._tracer._thread_stack()
        if stack and stack[-1] is node:
            stack.pop()
        else:  # unbalanced exit (generator abandoned mid-span): resync
            while stack and stack[-1] is not node:
                stack.pop()
            if stack:
                stack.pop()


class SpanTracer:
    """Aggregating tracer: per-thread stacks of open spans over one shared
    tree of totals.  Each thread's spans nest under that thread's own open
    spans (threads start at the root), so concurrent instrumentation from
    daemon threads cannot mis-nest under the main thread's stages."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self.root = SpanNode("root")
        self._local = threading.local()

    def _thread_stack(self) -> list[SpanNode]:
        """This thread's open-span stack, rooted at the *current* root.

        Comparing the cached root identity handles :meth:`reset`: a thread
        whose local stack predates the reset starts fresh from the new root.
        """
        local = self._local
        if getattr(local, "root", None) is not self.root:
            local.root = self.root
            local.stack = [self.root]
        return local.stack

    def span(self, name: str) -> _Span:
        """Open a (nested) span; use as ``with tracer.span("forward"):``."""
        return _Span(self, self._thread_stack()[-1].child(name))

    @property
    def depth(self) -> int:
        """Number of spans the calling thread currently has open."""
        return len(self._thread_stack()) - 1

    def flatten(self) -> list[dict]:
        """Every aggregated span as a flat dict list (root excluded)."""
        out = []
        for path, node in self.root.walk():
            if node is self.root:
                continue
            out.append({"path": path.split("/", 1)[1], "name": node.name,
                        "count": node.count, "total": node.total,
                        "mean": node.mean, "self_time": node.self_time})
        return out

    def total(self, path: str) -> float:
        """Summed seconds for a ``/``-separated path, 0.0 if never entered."""
        node = self.root
        for part in path.split("/"):
            node = node.children.get(part)
            if node is None:
                return 0.0
        return node.total

    def reset(self) -> None:
        if len(self._thread_stack()) > 1:
            raise RuntimeError("cannot reset tracer while spans are open")
        self.root = SpanNode("root")
        self._local = threading.local()

    def render(self, float_fmt: str = "{:>9.4f}") -> str:
        """Indented plain-text view of the aggregated time tree."""
        lines = [f"{'span':<40} {'count':>8} {'total s':>9} {'self s':>9}"]
        for path, node in self.root.walk():
            if node is self.root:
                continue
            depth = path.count("/") - 1
            label = "  " * depth + node.name
            lines.append(f"{label:<40} {node.count:>8} "
                         f"{float_fmt.format(node.total)} "
                         f"{float_fmt.format(node.self_time)}")
        return "\n".join(lines)
