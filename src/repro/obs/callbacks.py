"""Trainer callback protocol plus the telemetry-recording implementation.

:class:`~repro.core.trainer.Trainer.fit` drives a list of callbacks through
four hooks (duck-typed — any object with the methods works):

* ``on_train_start(trainer, dataset)`` / ``on_train_end(trainer, history)``
* ``on_epoch_start(trainer, epoch)``
* ``on_batch_end(trainer, epoch, step, loss, diagnostics)``
* ``on_epoch_end(trainer, record)``

:class:`TelemetryCallback` is the stock implementation: it mirrors epoch
records into the installed metrics registry and (optionally) streams one
JSONL event per epoch through a :class:`~repro.obs.exporters.JsonlWriter`, so
long runs leave an inspectable trail even if they crash mid-way.
"""

from __future__ import annotations

import math

from repro.obs import runtime as obs
from repro.obs.exporters import JsonlWriter

__all__ = ["TrainerCallback", "TelemetryCallback"]


class TrainerCallback:
    """No-op base class; subclass and override the hooks you need."""

    def on_train_start(self, trainer, dataset) -> None:
        pass

    def on_epoch_start(self, trainer, epoch: int) -> None:
        pass

    def on_batch_end(self, trainer, epoch: int, step: int, loss: float,
                     diagnostics: dict) -> None:
        pass

    def on_epoch_end(self, trainer, record) -> None:
        pass

    def on_train_end(self, trainer, history) -> None:
        pass


class TelemetryCallback(TrainerCallback):
    """Record per-epoch training metrics into the installed registry.

    Parameters
    ----------
    event_writer:
        Optional JSONL stream (or path) that receives one ``epoch`` event per
        completed epoch and a final ``train_end`` event.
    """

    def __init__(self, event_writer: JsonlWriter | str | None = None) -> None:
        if isinstance(event_writer, str):
            event_writer = JsonlWriter(event_writer)
        self.events = event_writer

    def on_epoch_end(self, trainer, record) -> None:
        obs.count("trainer.epochs")
        for key in ("loss", "kl", "recon", "beta", "users_per_second"):
            value = getattr(record, key)
            if not math.isnan(value):
                obs.gauge_set(f"trainer.{key}", value)
        if self.events is not None:
            self.events.emit("epoch", epoch=record.epoch, loss=record.loss,
                             kl=record.kl, recon=record.recon,
                             beta=record.beta, epoch_time=record.epoch_time,
                             n_batches=record.n_batches,
                             interrupted=record.interrupted,
                             users_per_second=record.users_per_second,
                             eval_metrics=record.eval_metrics)

    def on_train_end(self, trainer, history) -> None:
        if self.events is not None:
            self.events.emit("train_end", epochs=len(history.epochs),
                             total_time=history.total_time,
                             final_loss=history.final_loss,
                             throughput=history.throughput)
            self.events.close()
