"""Process-wide telemetry runtime: install/uninstall plus no-op fast paths.

Instrumented code throughout the repo calls the module-level helpers here
(``count`` / ``gauge_set`` / ``observe`` / ``span`` / ``latency`` /
``event`` / ``request``) on its hot paths.  When no :class:`Telemetry`
session is installed every helper is a cheap early return (one global load +
``None`` check), so default-on instrumentation costs effectively nothing;
installing a session routes the same calls into a
:class:`~repro.obs.registry.MetricsRegistry`, a
:class:`~repro.obs.trace.SpanTracer`, and a
:class:`~repro.obs.tracestore.TraceStore`.

Two tiers of tracing keep the hot path honest:

* **aggregate** — ``span()`` always folds into the per-stage time tree;
* **request-scoped** — when a trace context is active (``request()`` opened
  a root, or a ``MicroBatcher`` flush re-activated captured contexts), the
  same ``span()`` call *additionally* records an individually-timed span
  into the trace store, and ``event()`` attaches point events (retry
  attempts, breaker transitions) to the innermost open span.

Typical use::

    from repro import obs

    with obs.session() as telemetry:
        model.fit(dataset, epochs=5)
    print(telemetry.tracer.render())
    telemetry.dump_jsonl("run.jsonl")
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from pathlib import Path

from repro.obs import context as _context
from repro.obs.registry import (Counter, Gauge, Histogram, LogHistogram,
                                MetricsRegistry)
from repro.obs.trace import SpanTracer
from repro.obs.tracestore import TraceStore

__all__ = ["Telemetry", "install", "uninstall", "current", "enabled",
           "session", "count", "gauge_set", "observe", "span", "latency",
           "event", "request", "capture", "trace_now", "begin_request",
           "end_trace_span", "begin_fanin", "record_span", "activate_span",
           "deactivate_span"]


class Telemetry:
    """One observability session: metrics registry, span tracer, traces."""

    def __init__(self, reservoir_size: int = 2048,
                 trace_capacity: int = 256, keep_errors: int = 64,
                 keep_slowest: int = 32) -> None:
        self.registry = MetricsRegistry(reservoir_size=reservoir_size)
        self.tracer = SpanTracer()
        self.traces = TraceStore(capacity=trace_capacity,
                                 keep_errors=keep_errors,
                                 keep_slowest=keep_slowest)

    def snapshot(self) -> list[dict]:
        """Metrics and spans as one flat, deterministic event list."""
        events = self.registry.snapshot()
        for rec in self.tracer.flatten():
            events.append({"type": "span", **rec})
        return events

    def dump_jsonl(self, path: str | Path, run_id: str | None = None) -> int:
        """Write the session snapshot as JSONL; returns the event count."""
        from repro.obs.exporters import dump_jsonl

        return dump_jsonl(self, path, run_id=run_id)

    def to_prometheus(self) -> str:
        from repro.obs.exporters import to_prometheus

        return to_prometheus(self.registry)


_TELEMETRY: Telemetry | None = None


def install(telemetry: Telemetry | None = None, reservoir_size: int = 2048,
            ) -> Telemetry:
    """Make ``telemetry`` (or a fresh session) the process-wide sink."""
    global _TELEMETRY
    _TELEMETRY = telemetry if telemetry is not None \
        else Telemetry(reservoir_size=reservoir_size)
    return _TELEMETRY


def uninstall() -> Telemetry | None:
    """Remove the installed session (returning it); helpers become no-ops."""
    global _TELEMETRY
    telemetry, _TELEMETRY = _TELEMETRY, None
    return telemetry


def current() -> Telemetry | None:
    return _TELEMETRY


def enabled() -> bool:
    return _TELEMETRY is not None


@contextmanager
def session(telemetry: Telemetry | None = None, reservoir_size: int = 2048):
    """Install a session for the block, restoring the previous one after."""
    global _TELEMETRY
    previous = _TELEMETRY
    telemetry = install(telemetry, reservoir_size=reservoir_size)
    try:
        yield telemetry
    finally:
        _TELEMETRY = previous


# -- hot-path helpers (no-ops unless a session is installed) -------------------

def count(name: str, amount: float = 1.0, **labels) -> None:
    t = _TELEMETRY
    if t is None:
        return
    t.registry._fast_get(Counter, name, labels).inc(amount)


def gauge_set(name: str, value: float, **labels) -> None:
    t = _TELEMETRY
    if t is None:
        return
    t.registry._fast_get(Gauge, name, labels).set(value)


def observe(name: str, value: float, **labels) -> None:
    t = _TELEMETRY
    if t is None:
        return
    t.registry._fast_get(Histogram, name, labels,
                         reservoir_size=t.registry.reservoir_size
                         ).observe(value)


def observe_many(name: str, values, **labels) -> None:
    """Vectorised :func:`observe` — one helper call for a whole batch."""
    t = _TELEMETRY
    if t is None:
        return
    t.registry._fast_get(Histogram, name, labels,
                         reservoir_size=t.registry.reservoir_size
                         ).observe_many(values)


class _NullSpan:
    """Shared do-nothing context manager for the uninstrumented fast path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class _TracedSpan:
    """Aggregate span + request-scoped trace span, as one context manager.

    Enters the per-stage tracer span as usual, *and* opens a trace-store
    span (child of ``parent``, or a fresh trace root when ``parent`` is
    ``None`` and ``root=True``) which becomes the active context for the
    block — nested ``span()``/``event()`` calls land under it.
    """

    __slots__ = ("_telemetry", "_name", "_parent", "_root", "_attrs", "_agg",
                 "_span", "_token")

    def __init__(self, telemetry: "Telemetry", name: str,
                 parent, root: bool = False, attrs: dict | None = None,
                 ) -> None:
        self._telemetry = telemetry
        self._name = name
        self._parent = parent
        self._root = root
        self._attrs = attrs

    def __enter__(self) -> "_TracedSpan":
        t = self._telemetry
        self._agg = t.tracer.span(self._name)
        self._agg.__enter__()
        self._span = t.traces.begin(
            self._name, parent=None if self._root else self._parent,
            attrs=self._attrs)
        self._token = _context.activate(self._span)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        _context.deactivate(self._token)
        self._telemetry.traces.end(self._span, error=exc)
        self._agg.__exit__(exc_type, exc, tb)
        return False

    @property
    def trace_ids(self) -> tuple[str, ...]:
        return self._span.trace_ids


def span(name: str):
    """Open a tracer span, or a shared no-op context when not installed.

    With a session installed the span always aggregates into the per-stage
    time tree; if a request trace is also active in this context the span
    is *additionally* recorded individually into the trace store, nested
    under the innermost open trace span.
    """
    t = _TELEMETRY
    if t is None:
        return _NULL_SPAN
    active = _context.current()
    if active is None:
        return t.tracer.span(name)
    return _TracedSpan(t, name, active)


def request(name: str = "request", **attrs):
    """Open a *root* trace span: a new request-scoped trace.

    Everything instrumented beneath the block — nested ``span()`` calls,
    ``event()`` point events, spans recorded by the micro-batcher on the
    request's behalf — lands in this request's trace, which is finalized
    (and tail-sampled for retention) when the block exits.
    """
    t = _TELEMETRY
    if t is None:
        return _NULL_SPAN
    return _TracedSpan(t, name, None, root=True, attrs=attrs or None)


def event(name: str, **attrs) -> None:
    """Attach a point-in-time event to the innermost open trace span."""
    t = _TELEMETRY
    if t is None:
        return
    active = _context.current()
    if active is None:
        return
    t.traces.event(active, name, attrs or None)


# -- manual trace plumbing (thread hops: MicroBatcher & friends) ---------------

def trace_now() -> float:
    """The trace store's clock (0.0 when no session is installed)."""
    t = _TELEMETRY
    return t.traces.clock() if t is not None else 0.0


def capture():
    """The current trace context, for re-activation on another thread."""
    return _context.current() if _TELEMETRY is not None else None


def begin_request(name: str, **attrs):
    """Manually open a trace root (returns ``None`` when uninstrumented).

    Pair with :func:`end_trace_span` once the request resolves; spans
    recorded in between (on any thread) land in the request's trace.
    """
    t = _TELEMETRY
    if t is None:
        return None
    return t.traces.begin(name, parent=None, attrs=attrs or None)


def begin_fanin(name: str, parents: list, **attrs):
    """Open one span shared by many captured request contexts."""
    t = _TELEMETRY
    if t is None or not parents:
        return None
    return t.traces.begin_fanin(name, parents, attrs=attrs or None)


def end_trace_span(span_obj, error=None) -> None:
    """Close a manually-opened trace span (no-op on ``None``)."""
    t = _TELEMETRY
    if t is None or span_obj is None:
        return
    t.traces.end(span_obj, error=error)


def record_span(name: str, parent, start: float, end: float,
                **attrs) -> None:
    """Record a retroactive span (explicit times) under ``parent``."""
    t = _TELEMETRY
    if t is None or parent is None:
        return
    t.traces.record(name, parent, start, end, attrs=attrs or None)


def activate_span(span_obj):
    """Make a captured/fan-in span current in this context; returns a token."""
    if _TELEMETRY is None or span_obj is None:
        return None
    return _context.activate(span_obj)


def deactivate_span(token) -> None:
    if token is not None:
        _context.deactivate(token)


class _LatencyTimer:
    """Times a block into a latency histogram (seconds)."""

    __slots__ = ("_hist", "_start")

    def __init__(self, hist) -> None:
        self._hist = hist

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self._hist.observe(time.perf_counter() - self._start)
        return False


def latency(name: str, **labels):
    """``with obs.latency("serving.lookup_seconds"):`` → latency histogram.

    Latency metrics land in a log-bucket :class:`LogHistogram` — O(1) per
    observation, mergeable, and accurate p99/p999 at millions of
    observations (the sampling reservoir stays available via ``observe()``
    as the exact-percentile oracle in tests).
    """
    t = _TELEMETRY
    if t is None:
        return _NULL_SPAN
    return _LatencyTimer(t.registry._fast_get(LogHistogram, name, labels,
                                              growth=1.1))
