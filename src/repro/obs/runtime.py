"""Process-wide telemetry runtime: install/uninstall plus no-op fast paths.

Instrumented code throughout the repo calls the module-level helpers here
(``count`` / ``gauge_set`` / ``observe`` / ``span`` / ``latency``) on its hot
paths.  When no :class:`Telemetry` session is installed every helper is a
cheap early return (one global load + ``None`` check), so default-on
instrumentation costs effectively nothing; installing a session routes the
same calls into a :class:`~repro.obs.registry.MetricsRegistry` and
:class:`~repro.obs.trace.SpanTracer`.

Typical use::

    from repro import obs

    with obs.session() as telemetry:
        model.fit(dataset, epochs=5)
    print(telemetry.tracer.render())
    telemetry.dump_jsonl("run.jsonl")
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from pathlib import Path

from repro.obs.registry import MetricsRegistry
from repro.obs.trace import SpanTracer

__all__ = ["Telemetry", "install", "uninstall", "current", "enabled",
           "session", "count", "gauge_set", "observe", "span", "latency"]


class Telemetry:
    """One observability session: a metrics registry plus a span tracer."""

    def __init__(self, reservoir_size: int = 2048) -> None:
        self.registry = MetricsRegistry(reservoir_size=reservoir_size)
        self.tracer = SpanTracer()

    def snapshot(self) -> list[dict]:
        """Metrics and spans as one flat, deterministic event list."""
        events = self.registry.snapshot()
        for rec in self.tracer.flatten():
            events.append({"type": "span", **rec})
        return events

    def dump_jsonl(self, path: str | Path, run_id: str | None = None) -> int:
        """Write the session snapshot as JSONL; returns the event count."""
        from repro.obs.exporters import dump_jsonl

        return dump_jsonl(self, path, run_id=run_id)

    def to_prometheus(self) -> str:
        from repro.obs.exporters import to_prometheus

        return to_prometheus(self.registry)


_TELEMETRY: Telemetry | None = None


def install(telemetry: Telemetry | None = None, reservoir_size: int = 2048,
            ) -> Telemetry:
    """Make ``telemetry`` (or a fresh session) the process-wide sink."""
    global _TELEMETRY
    _TELEMETRY = telemetry if telemetry is not None \
        else Telemetry(reservoir_size=reservoir_size)
    return _TELEMETRY


def uninstall() -> Telemetry | None:
    """Remove the installed session (returning it); helpers become no-ops."""
    global _TELEMETRY
    telemetry, _TELEMETRY = _TELEMETRY, None
    return telemetry


def current() -> Telemetry | None:
    return _TELEMETRY


def enabled() -> bool:
    return _TELEMETRY is not None


@contextmanager
def session(telemetry: Telemetry | None = None, reservoir_size: int = 2048):
    """Install a session for the block, restoring the previous one after."""
    global _TELEMETRY
    previous = _TELEMETRY
    telemetry = install(telemetry, reservoir_size=reservoir_size)
    try:
        yield telemetry
    finally:
        _TELEMETRY = previous


# -- hot-path helpers (no-ops unless a session is installed) -------------------

def count(name: str, amount: float = 1.0, **labels) -> None:
    t = _TELEMETRY
    if t is None:
        return
    t.registry.counter(name, labels).inc(amount)


def gauge_set(name: str, value: float, **labels) -> None:
    t = _TELEMETRY
    if t is None:
        return
    t.registry.gauge(name, labels).set(value)


def observe(name: str, value: float, **labels) -> None:
    t = _TELEMETRY
    if t is None:
        return
    t.registry.histogram(name, labels).observe(value)


class _NullSpan:
    """Shared do-nothing context manager for the uninstrumented fast path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


def span(name: str):
    """Open a tracer span, or a shared no-op context when not installed."""
    t = _TELEMETRY
    if t is None:
        return _NULL_SPAN
    return t.tracer.span(name)


class _LatencyTimer:
    """Times a block into a latency histogram (seconds)."""

    __slots__ = ("_hist", "_start")

    def __init__(self, hist) -> None:
        self._hist = hist

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self._hist.observe(time.perf_counter() - self._start)
        return False


def latency(name: str, **labels):
    """``with obs.latency("serving.lookup_seconds"):`` → latency histogram."""
    t = _TELEMETRY
    if t is None:
        return _NULL_SPAN
    return _LatencyTimer(t.registry.histogram(name, labels))
