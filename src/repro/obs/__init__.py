"""``repro.obs`` — unified telemetry: metrics, traces, SLOs, profiles.

The observability layer behind the paper's efficiency analysis (Table V,
Figs 6/9/10) *and* its serving claim — per-request accounting, not just
aggregate epoch timers.  Instrumentation across ``core``/``hashing``/
``sampling``/``lookalike``/``serve`` is default-on but free until a session
is installed::

    from repro import obs

    with obs.session() as telemetry:
        model.fit(dataset, epochs=5)

    print(obs.render_report(telemetry))      # per-stage time tree + metrics
    telemetry.dump_jsonl("run.jsonl")        # replayable event log
    print(telemetry.to_prometheus())         # scrapeable text snapshot

Request-scoped tracing rides the same session: ``with obs.request("r"):``
opens a trace whose spans/events land in ``telemetry.traces`` (tail-sampled,
Chrome-exportable); ``SLOEngine`` evaluates latency/availability objectives
over rolling windows; ``SamplingProfiler`` collects collapsed stacks; and
``render_dashboard`` turns a registry snapshot into the ``repro top`` view.

``python -m repro report --input run.jsonl`` renders the same report from a
dump.  Because this package is imported from everywhere, it may only import
leaf modules (numpy/stdlib-only, e.g. ``repro.viz.tables``) — never
``core``/``hashing``/``sampling``/``lookalike``.
"""

from repro.obs.callbacks import TelemetryCallback, TrainerCallback
from repro.obs.context import ActiveSpan
from repro.obs.dashboard import Dashboard, render_dashboard
from repro.obs.exporters import (JsonlWriter, dump_jsonl, events_to_prometheus,
                                 load_jsonl, to_prometheus)
from repro.obs.profiler import SamplingProfiler
from repro.obs.registry import (Counter, Gauge, Histogram, LogHistogram,
                                MetricsRegistry)
from repro.obs.report import render_events, render_report
from repro.obs.runtime import (Telemetry, begin_fanin, begin_request, capture,
                               count, current, enabled, end_trace_span, event,
                               gauge_set, install, latency, observe,
                               observe_many, record_span, request, session,
                               span, trace_now,
                               uninstall)
from repro.obs.slo import (Objective, SLOEngine, SLOStatus, availability_slo,
                           latency_slo, parse_objective)
from repro.obs.trace import SpanNode, SpanTracer
from repro.obs.tracestore import (SpanRecord, TraceRecord, TraceStore,
                                  dump_chrome, to_chrome, validate_chrome)

__all__ = [
    "Counter", "Gauge", "Histogram", "LogHistogram", "MetricsRegistry",
    "SpanNode", "SpanTracer",
    "ActiveSpan", "SpanRecord", "TraceRecord", "TraceStore",
    "to_chrome", "dump_chrome", "validate_chrome",
    "Telemetry", "install", "uninstall", "current", "enabled", "session",
    "count", "gauge_set", "observe", "observe_many", "span", "latency",
    "event", "request",
    "capture", "trace_now", "begin_request", "begin_fanin", "end_trace_span",
    "record_span",
    "Objective", "SLOEngine", "SLOStatus", "latency_slo", "availability_slo",
    "parse_objective",
    "SamplingProfiler",
    "Dashboard", "render_dashboard",
    "JsonlWriter", "dump_jsonl", "load_jsonl", "to_prometheus",
    "events_to_prometheus",
    "render_events", "render_report",
    "TrainerCallback", "TelemetryCallback",
]
