"""``repro.obs`` — unified telemetry: metrics registry, span tracer, exporters.

The observability layer behind the paper's efficiency analysis (Table V,
Figs 6/9/10).  Instrumentation across ``core``/``hashing``/``sampling``/
``lookalike`` is default-on but free until a session is installed::

    from repro import obs

    with obs.session() as telemetry:
        model.fit(dataset, epochs=5)

    print(obs.render_report(telemetry))      # per-stage time tree + metrics
    telemetry.dump_jsonl("run.jsonl")        # replayable event log
    print(telemetry.to_prometheus())         # scrapeable text snapshot

``python -m repro report --input run.jsonl`` renders the same report from a
dump.  Because this package is imported from everywhere, it may only import
leaf modules (numpy/stdlib-only, e.g. ``repro.viz.tables``) — never
``core``/``hashing``/``sampling``/``lookalike``.
"""

from repro.obs.callbacks import TelemetryCallback, TrainerCallback
from repro.obs.exporters import (JsonlWriter, dump_jsonl, events_to_prometheus,
                                 load_jsonl, to_prometheus)
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.report import render_events, render_report
from repro.obs.runtime import (Telemetry, count, current, enabled, gauge_set,
                               install, latency, observe, session, span,
                               uninstall)
from repro.obs.trace import SpanNode, SpanTracer

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "SpanNode", "SpanTracer",
    "Telemetry", "install", "uninstall", "current", "enabled", "session",
    "count", "gauge_set", "observe", "span", "latency",
    "JsonlWriter", "dump_jsonl", "load_jsonl", "to_prometheus",
    "events_to_prometheus",
    "render_events", "render_report",
    "TrainerCallback", "TelemetryCallback",
]
