"""Request-scoped trace context, carried via :mod:`contextvars`.

A *trace* follows one serving request end to end; a *span* is one timed
operation inside it.  :class:`ActiveSpan` is the in-flight representation —
it knows which trace(s) it belongs to, who its parent is inside each trace,
and accumulates point-in-time events (retry attempts, breaker transitions).
When a span closes, :class:`repro.obs.tracestore.TraceStore` freezes it into
an immutable record.

Why *traces* plural on one span: the serving path fans requests **in** —
``MicroBatcher`` coalesces many single-key requests into one flush, and that
flush (plus everything beneath it: cache probe, guarded store read, LSH,
inference) is genuinely shared work.  Rather than duplicating those spans per
request we record each once with the full set of member trace ids and a
*per-trace* parent map, so every request's reconstructed trace contains the
shared spans, correctly parented under that request's own root.

Propagation uses a :class:`contextvars.ContextVar`, so the active span
follows the logical flow of control across function calls and survives
thread hops when explicitly captured (``current()`` at submit time, re-
activated in the flushing thread).  Span and trace ids are deterministic
process-wide counters — no randomness, per the repo-wide rule.
"""

from __future__ import annotations

import itertools
import threading
from contextvars import ContextVar
from typing import Mapping

__all__ = ["ActiveSpan", "current", "activate", "deactivate", "new_trace_id",
           "new_span_id", "child_span", "root_span", "fanin_span"]

_COUNTER = itertools.count(1)
_COUNTER_LOCK = threading.Lock()


def _next() -> int:
    with _COUNTER_LOCK:
        return next(_COUNTER)


def new_trace_id() -> str:
    return f"t{_next():08x}"


def new_span_id() -> str:
    return f"s{_next():08x}"


class ActiveSpan:
    """One open span: ids, per-trace parent links, start time, events.

    ``trace_ids`` is the tuple of traces this span is part of (one for
    ordinary spans, many for a fan-in span like a batched flush) and
    ``parents`` maps each trace id to this span's parent span id *within
    that trace* (``None`` marks the trace's root).
    """

    __slots__ = ("name", "span_id", "trace_ids", "parents", "start", "attrs",
                 "events")

    def __init__(self, name: str, span_id: str, trace_ids: tuple[str, ...],
                 parents: Mapping[str, str | None], start: float,
                 attrs: dict | None = None) -> None:
        self.name = name
        self.span_id = span_id
        self.trace_ids = trace_ids
        self.parents = dict(parents)
        self.start = start
        self.attrs = attrs or {}
        self.events: list[tuple[float, str, dict]] = []

    def add_event(self, ts: float, name: str, attrs: dict | None = None) -> None:
        self.events.append((ts, name, attrs or {}))

    def __repr__(self) -> str:
        return (f"ActiveSpan({self.name!r}, span_id={self.span_id}, "
                f"traces={list(self.trace_ids)})")


_ACTIVE: ContextVar[ActiveSpan | None] = ContextVar("repro_active_span",
                                                    default=None)


def current() -> ActiveSpan | None:
    """The innermost open span in this context, or ``None``."""
    return _ACTIVE.get()


def activate(span: ActiveSpan | None):
    """Make ``span`` the current context; returns a token for :func:`deactivate`."""
    return _ACTIVE.set(span)


def deactivate(token) -> None:
    _ACTIVE.reset(token)


def root_span(name: str, start: float, attrs: dict | None = None) -> ActiveSpan:
    """Open a new trace: a root span with a fresh trace id."""
    trace_id = new_trace_id()
    return ActiveSpan(name, new_span_id(), (trace_id,), {trace_id: None},
                      start, attrs)


def child_span(name: str, parent: ActiveSpan, start: float,
               attrs: dict | None = None) -> ActiveSpan:
    """Open a span under ``parent`` in every trace the parent belongs to."""
    parents = {tid: parent.span_id for tid in parent.trace_ids}
    return ActiveSpan(name, new_span_id(), parent.trace_ids, parents, start,
                      attrs)


def fanin_span(name: str, parents: list[ActiveSpan], start: float,
               attrs: dict | None = None) -> ActiveSpan:
    """Open one span shared by many traces (batched work for many requests).

    The span joins every trace of every parent; inside each trace it hangs
    under the first parent that carries that trace id.
    """
    trace_ids: list[str] = []
    parent_map: dict[str, str | None] = {}
    for parent in parents:
        for tid in parent.trace_ids:
            if tid not in parent_map:
                parent_map[tid] = parent.span_id
                trace_ids.append(tid)
    return ActiveSpan(name, new_span_id(), tuple(trace_ids), parent_map,
                      start, attrs)
