"""Sampling continuous profiler: collapsed stacks from a background thread.

Samples every Python thread's current frame stack via
``sys._current_frames()`` at a fixed rate (~100 Hz by default) and
aggregates identical stacks into counts — the *collapsed stack* format that
``flamegraph.pl`` / speedscope consume directly (``a;b;c 42`` per line).
Wall-clock sampling, so blocked time (lock waits, store RPCs) shows up
proportionally, which is what serving-latency work needs; CPU-only profilers
hide exactly the waits that dominate tails.

Overhead is one frame walk per thread per tick — at 100 Hz on the workloads
here that is well under 1% and, unlike tracing instrumentation, completely
independent of request rate.  The sampler thread skips itself.  For
deterministic tests :meth:`SamplingProfiler.sample` takes an injectable
frames mapping, so no real thread or sleep is needed to drive aggregation.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import Counter
from pathlib import Path

from repro.viz.tables import format_table

__all__ = ["SamplingProfiler"]


def _frame_label(frame) -> str:
    module = frame.f_globals.get("__name__", "?")
    return f"{module}.{frame.f_code.co_name}"


def collapse_frame(frame, max_depth: int = 64) -> tuple[str, ...]:
    """Root-first tuple of ``module.function`` labels for one stack."""
    labels: list[str] = []
    while frame is not None and len(labels) < max_depth:
        labels.append(_frame_label(frame))
        frame = frame.f_back
    labels.reverse()
    return tuple(labels)


class SamplingProfiler:
    """Background statistical profiler with collapsed-stack output.

    Use as a context manager around the workload, then read
    :meth:`collapsed` / :meth:`render_top` / :meth:`write_collapsed`::

        with SamplingProfiler(interval_seconds=0.01) as prof:
            run_workload()
        print(prof.render_top())
    """

    def __init__(self, interval_seconds: float = 0.01, max_depth: int = 64,
                 ) -> None:
        if interval_seconds <= 0:
            raise ValueError(
                f"interval_seconds must be positive: {interval_seconds}")
        self.interval_seconds = interval_seconds
        self.max_depth = max_depth
        self._counts: Counter[tuple[str, ...]] = Counter()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.samples = 0
        self.started_at: float | None = None
        self.stopped_at: float | None = None

    # -- sampling --------------------------------------------------------------

    def sample(self, frames: dict | None = None) -> int:
        """Take one sample; returns the number of stacks recorded.

        ``frames`` defaults to ``sys._current_frames()``; tests inject a
        ``{thread_id: frame}`` mapping to drive aggregation deterministically.
        """
        own = threading.get_ident()
        sampler = self._thread.ident if self._thread is not None else None
        if frames is None:
            frames = sys._current_frames()
        recorded = 0
        with self._lock:
            for thread_id, frame in frames.items():
                if thread_id in (own, sampler):
                    continue
                self._counts[collapse_frame(frame, self.max_depth)] += 1
                recorded += 1
            if recorded:
                self.samples += 1
        return recorded

    def _run(self) -> None:
        while not self._stop.wait(self.interval_seconds):
            self.sample()

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self.started_at = time.perf_counter()
        self._stop.clear()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-profiler")
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None
        self.stopped_at = time.perf_counter()

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- output ----------------------------------------------------------------

    def collapsed(self) -> dict[str, int]:
        """``{"root;child;leaf": count}`` — the flamegraph input format."""
        with self._lock:
            return {";".join(stack): n for stack, n in self._counts.items()}

    def to_collapsed_text(self) -> str:
        lines = [f"{stack} {count}" for stack, count
                 in sorted(self.collapsed().items(),
                           key=lambda kv: (-kv[1], kv[0]))]
        return "\n".join(lines) + ("\n" if lines else "")

    def write_collapsed(self, path: str | Path) -> int:
        """Write collapsed stacks (flamegraph.pl input); returns line count."""
        text = self.to_collapsed_text()
        Path(path).write_text(text, encoding="utf-8")
        return len(text.splitlines())

    def function_totals(self) -> Counter:
        """Samples per function, inclusive of time in callees."""
        totals: Counter[str] = Counter()
        with self._lock:
            for stack, n in self._counts.items():
                for label in set(stack):
                    totals[label] += n
        return totals

    def leaf_totals(self) -> Counter:
        """Samples per function, *self* time only (stack leaves)."""
        totals: Counter[str] = Counter()
        with self._lock:
            for stack, n in self._counts.items():
                if stack:
                    totals[stack[-1]] += n
        return totals

    def render_top(self, n: int = 15) -> str:
        """Top functions by self samples, with inclusive share alongside."""
        total = sum(self.leaf_totals().values()) or 1
        inclusive = self.function_totals()
        rows = [[label, count, f"{100.0 * count / total:.1f}%",
                 f"{100.0 * inclusive[label] / total:.1f}%"]
                for label, count in self.leaf_totals().most_common(n)]
        table = format_table(["function", "self", "self %", "incl %"], rows,
                             title=f"Profile — {self.samples} samples")
        return table
