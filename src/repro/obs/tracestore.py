"""Trace storage: ring-buffered traces with tail-based sampling + export.

Spans close into immutable :class:`SpanRecord`s; when a trace's *root* span
closes the whole trace is assembled into a :class:`TraceRecord` and a
retention decision is made — this is **tail-based sampling**, deciding after
the outcome is known rather than at request start:

* traces containing an error span are **always** kept (own ring buffer);
* the slowest traces seen so far are kept (bounded min-heap on duration —
  the "slowest percentile" in the limit of a steady workload);
* every finished trace additionally rotates through a recent-traces ring,
  so the latest traffic is inspectable even when healthy and fast.

All three pools are bounded, so memory is O(capacity) no matter how many
requests flow through.  Export is Chrome trace-event JSON (``ph: "X"``
complete events plus ``ph: "i"`` instants for span events), loadable in
``chrome://tracing`` / Perfetto; :func:`validate_chrome` is the schema check
CI runs against every export.
"""

from __future__ import annotations

import heapq
import json
import time
from pathlib import Path
from typing import Callable, Iterable

from repro.obs.context import ActiveSpan

__all__ = ["SpanRecord", "TraceRecord", "TraceStore", "to_chrome",
           "dump_chrome", "validate_chrome"]


class SpanRecord:
    """One closed span (immutable once stored)."""

    __slots__ = ("name", "span_id", "trace_ids", "parents", "start", "end",
                 "status", "error", "attrs", "events")

    def __init__(self, name: str, span_id: str, trace_ids: tuple[str, ...],
                 parents: dict, start: float, end: float, status: str = "ok",
                 error: str | None = None, attrs: dict | None = None,
                 events: list | None = None) -> None:
        self.name = name
        self.span_id = span_id
        self.trace_ids = trace_ids
        self.parents = parents
        self.start = start
        self.end = end
        self.status = status
        self.error = error
        self.attrs = attrs or {}
        self.events = events or []

    @property
    def duration(self) -> float:
        return self.end - self.start

    def parent_in(self, trace_id: str) -> str | None:
        """Parent span id of this span within ``trace_id`` (None = root)."""
        return self.parents.get(trace_id)

    def to_dict(self) -> dict:
        return {"name": self.name, "span_id": self.span_id,
                "trace_ids": list(self.trace_ids),
                "parents": dict(self.parents), "start": self.start,
                "end": self.end, "duration": self.duration,
                "status": self.status, "error": self.error,
                "attrs": dict(self.attrs),
                "events": [{"ts": ts, "name": name, "attrs": attrs}
                           for ts, name, attrs in self.events]}

    def __repr__(self) -> str:
        return (f"SpanRecord({self.name!r}, span_id={self.span_id}, "
                f"status={self.status}, dur={self.duration:.6f}s)")


class TraceRecord:
    """One finished trace: the root plus every span that touched it."""

    __slots__ = ("trace_id", "spans", "root")

    def __init__(self, trace_id: str, spans: list[SpanRecord],
                 root: SpanRecord) -> None:
        self.trace_id = trace_id
        self.spans = sorted(spans, key=lambda s: (s.start, s.span_id))
        self.root = root

    @property
    def duration(self) -> float:
        return self.root.duration

    @property
    def has_error(self) -> bool:
        return any(span.status == "error" for span in self.spans)

    def span_named(self, name: str) -> SpanRecord | None:
        for span in self.spans:
            if span.name == name:
                return span
        return None

    def spans_named(self, name: str) -> list[SpanRecord]:
        return [span for span in self.spans if span.name == name]

    def children_of(self, span_id: str) -> list[SpanRecord]:
        return [span for span in self.spans
                if span.parent_in(self.trace_id) == span_id]

    def render(self) -> str:
        """Indented one-trace text tree (for ``repro trace`` summaries)."""
        by_parent: dict[str | None, list[SpanRecord]] = {}
        for span in self.spans:
            by_parent.setdefault(span.parent_in(self.trace_id), []).append(span)
        lines = [f"trace {self.trace_id}  "
                 f"{self.duration * 1e3:.3f} ms  "
                 f"{'ERROR' if self.has_error else 'ok'}"]

        def walk(parent_id: str | None, depth: int) -> None:
            for span in by_parent.get(parent_id, []):
                flag = " !" if span.status == "error" else ""
                lines.append(f"  {'  ' * depth}{span.name:<24} "
                             f"{span.duration * 1e3:9.3f} ms{flag}")
                for __, ev_name, ev_attrs in span.events:
                    detail = ",".join(f"{k}={v}" for k, v in
                                      sorted(ev_attrs.items()))
                    lines.append(f"  {'  ' * (depth + 1)}@ {ev_name}"
                                 f"{' [' + detail + ']' if detail else ''}")
                walk(span.span_id, depth + 1)

        walk(None, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"TraceRecord({self.trace_id}, spans={len(self.spans)}, "
                f"dur={self.duration:.6f}s, error={self.has_error})")


class TraceStore:
    """Bounded store of finished traces with tail-based retention.

    Parameters
    ----------
    capacity:
        Recent-traces ring size (every finished trace rotates through).
    keep_errors:
        Ring size of the always-kept error-trace pool.
    keep_slowest:
        How many of the slowest traces to pin regardless of recency.
    max_open:
        Safety cap on traces whose root never closes (leaked requests);
        the oldest open trace is dropped beyond this.
    clock:
        Monotonic time source for span timing (injectable in tests).
    """

    def __init__(self, capacity: int = 256, keep_errors: int = 64,
                 keep_slowest: int = 32, max_open: int = 4096,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.capacity = capacity
        self.keep_errors = keep_errors
        self.keep_slowest = keep_slowest
        self.max_open = max_open
        self.clock = clock
        self._open: dict[str, list[SpanRecord]] = {}
        self._recent: dict[str, TraceRecord] = {}   # insertion-ordered ring
        self._errors: dict[str, TraceRecord] = {}
        self._slowest: list[tuple[float, int, TraceRecord]] = []  # min-heap
        self._seq = 0
        self.finished = 0
        self.dropped_open = 0

    # -- span lifecycle --------------------------------------------------------

    def begin(self, name: str, parent: ActiveSpan | None = None,
              attrs: dict | None = None) -> ActiveSpan:
        """Open a span: a child of ``parent``, or a fresh trace root."""
        from repro.obs import context

        now = self.clock()
        if parent is None:
            span = context.root_span(name, now, attrs)
            self._track_open(span.trace_ids[0])
        else:
            span = context.child_span(name, parent, now, attrs)
        return span

    def begin_fanin(self, name: str, parents: list[ActiveSpan],
                    attrs: dict | None = None) -> ActiveSpan:
        """Open one span shared by every parent's trace (batched work)."""
        from repro.obs import context

        return context.fanin_span(name, parents, self.clock(), attrs)

    def event(self, span: ActiveSpan, name: str,
              attrs: dict | None = None) -> None:
        span.add_event(self.clock(), name, attrs)

    def end(self, span: ActiveSpan, error: BaseException | str | None = None,
            ) -> SpanRecord:
        """Close ``span``; finalizes any trace whose root this span is."""
        status = "ok" if error is None else "error"
        err = None if error is None else (error if isinstance(error, str)
                                          else f"{type(error).__name__}: {error}")
        record = SpanRecord(span.name, span.span_id, span.trace_ids,
                            span.parents, span.start, self.clock(),
                            status=status, error=err, attrs=span.attrs,
                            events=span.events)
        self._store(record)
        return record

    def record(self, name: str, parent: ActiveSpan, start: float, end: float,
               status: str = "ok", error: str | None = None,
               attrs: dict | None = None) -> SpanRecord:
        """Record a span retroactively with explicit times (e.g. queue wait)."""
        from repro.obs import context

        parents = {tid: parent.span_id for tid in parent.trace_ids}
        record = SpanRecord(name, context.new_span_id(), parent.trace_ids,
                            parents, start, end, status=status, error=error,
                            attrs=attrs)
        self._store(record)
        return record

    # -- retention -------------------------------------------------------------

    def _track_open(self, trace_id: str) -> None:
        self._open[trace_id] = []
        while len(self._open) > self.max_open:
            victim = next(iter(self._open))
            del self._open[victim]
            self.dropped_open += 1

    def _store(self, record: SpanRecord) -> None:
        roots = []
        for trace_id in record.trace_ids:
            spans = self._open.get(trace_id)
            if spans is None:
                continue  # trace already finalized or never tracked
            spans.append(record)
            if record.parent_in(trace_id) is None:
                roots.append(trace_id)
        for trace_id in roots:
            self._finalize(trace_id, record)

    def _finalize(self, trace_id: str, root: SpanRecord) -> None:
        spans = self._open.pop(trace_id)
        trace = TraceRecord(trace_id, spans, root)
        self.finished += 1
        self._seq += 1

        self._recent[trace_id] = trace
        while len(self._recent) > self.capacity:
            del self._recent[next(iter(self._recent))]

        if trace.has_error and self.keep_errors > 0:
            self._errors[trace_id] = trace
            while len(self._errors) > self.keep_errors:
                del self._errors[next(iter(self._errors))]

        if self.keep_slowest > 0:
            entry = (trace.duration, self._seq, trace)
            if len(self._slowest) < self.keep_slowest:
                heapq.heappush(self._slowest, entry)
            elif trace.duration > self._slowest[0][0]:
                heapq.heapreplace(self._slowest, entry)

    # -- access ----------------------------------------------------------------

    @property
    def open_traces(self) -> int:
        return len(self._open)

    def traces(self) -> list[TraceRecord]:
        """Every retained trace (recent ∪ errors ∪ slowest), oldest first."""
        seen: dict[str, TraceRecord] = {}
        for pool in (self._recent, self._errors):
            seen.update(pool)
        for __, _seq, trace in self._slowest:
            seen[trace.trace_id] = trace
        return sorted(seen.values(), key=lambda t: (t.root.start, t.trace_id))

    def trace(self, trace_id: str) -> TraceRecord | None:
        for pool in (self._recent, self._errors):
            if trace_id in pool:
                return pool[trace_id]
        for __, _seq, trace in self._slowest:
            if trace.trace_id == trace_id:
                return trace
        return None

    def error_traces(self) -> list[TraceRecord]:
        return sorted(self._errors.values(),
                      key=lambda t: (t.root.start, t.trace_id))

    def slowest_traces(self) -> list[TraceRecord]:
        return [t for __, __s, t in sorted(self._slowest,
                                           key=lambda e: -e[0])]

    def reset(self) -> None:
        self._open.clear()
        self._recent.clear()
        self._errors.clear()
        self._slowest = []
        self.finished = 0
        self.dropped_open = 0


# -- Chrome trace-event export -------------------------------------------------

def to_chrome(traces: Iterable[TraceRecord]) -> dict:
    """Chrome trace-event JSON for a set of traces.

    Each trace renders as its own track (``tid``); spans are ``ph: "X"``
    complete events with microsecond timestamps, span events are ``ph: "i"``
    thread-scoped instants.  A span shared by several traces (a batched
    flush) appears once per member trace, so each request's track is
    self-contained — exactly how the trace *reads*, not how it was stored.
    """
    events: list[dict] = []
    tids: dict[str, int] = {}
    emitted: set[tuple[str, str]] = set()
    for trace in traces:
        tid = tids.setdefault(trace.trace_id, len(tids) + 1)
        events.append({"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
                       "args": {"name": f"trace {trace.trace_id}"}})
        for span in trace.spans:
            key = (trace.trace_id, span.span_id)
            if key in emitted:
                continue
            emitted.add(key)
            events.append({
                "name": span.name, "cat": "repro", "ph": "X",
                "ts": span.start * 1e6, "dur": span.duration * 1e6,
                "pid": 1, "tid": tid,
                "args": {"trace_id": trace.trace_id,
                         "span_id": span.span_id,
                         "parent_id": span.parent_in(trace.trace_id),
                         "status": span.status,
                         **({"error": span.error} if span.error else {}),
                         **span.attrs}})
            for ts, name, attrs in span.events:
                events.append({"name": name, "cat": "repro.event", "ph": "i",
                               "ts": ts * 1e6, "pid": 1, "tid": tid,
                               "s": "t", "args": dict(attrs)})
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def dump_chrome(traces: Iterable[TraceRecord], path: str | Path) -> int:
    """Write Chrome trace JSON; returns the number of events written."""
    doc = to_chrome(traces)
    Path(path).write_text(json.dumps(doc, sort_keys=True), encoding="utf-8")
    return len(doc["traceEvents"])


def validate_chrome(doc: dict) -> list[str]:
    """Schema check for a Chrome trace document; returns problem strings.

    This is the gate CI runs on every export: top-level shape, required
    per-event fields, numeric non-negative timestamps/durations, and known
    phase types.
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"document is {type(doc).__name__}, not an object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["'traceEvents' missing or not a list"]
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i} is not an object")
            continue
        for field in ("name", "ph", "pid", "tid"):
            if field not in event:
                problems.append(f"event {i} lacks required field {field!r}")
        ph = event.get("ph")
        if ph not in ("X", "i", "M", "B", "E"):
            problems.append(f"event {i} has unknown phase {ph!r}")
        if ph in ("X", "i"):
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"event {i} has bad ts {ts!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {i} has bad dur {dur!r}")
    return problems
