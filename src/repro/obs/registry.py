"""Metrics registry: counters, gauges, and histograms keyed by name + labels.

The registry is the passive half of :mod:`repro.obs` — a dictionary of typed
instruments that instrumented code updates through the module-level helpers in
:mod:`repro.obs.runtime`.  Three instrument types cover the telemetry the
paper's efficiency analysis needs (Table V, Figs 6/9/10):

* :class:`Counter` — monotonically increasing totals (batches seen, cache
  hits, hash-table grow events).
* :class:`Gauge` — last-written value (table size, load factor, current lr).
* :class:`Histogram` — distribution sketch over a fixed-size reservoir with
  exact ``count``/``sum``/``min``/``max`` and reservoir-based percentiles
  (serving latency p50/p95/p99, candidate-set sizes).

Everything here is plain numpy + stdlib; instruments are deterministic in
*what* they count (reservoir sampling uses a fixed-seed generator so the kept
sample depends only on the insertion sequence).
"""

from __future__ import annotations

import math
from typing import Iterator, Mapping

import numpy as np

__all__ = ["Counter", "Gauge", "Histogram", "LogHistogram", "MetricsRegistry"]

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, object] | None) -> LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing total."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0: {amount}")
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": self.kind, "name": self.name,
                "labels": dict(self.labels), "value": self.value}

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, labels={dict(self.labels)}, value={self.value})"


class Gauge:
    """Last-written value (plus the number of writes, for determinism checks)."""

    kind = "gauge"

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = float("nan")
        self.writes = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.writes += 1

    def snapshot(self) -> dict:
        return {"type": self.kind, "name": self.name,
                "labels": dict(self.labels), "value": self.value,
                "writes": self.writes}

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, labels={dict(self.labels)}, value={self.value})"


class Histogram:
    """Distribution sketch: exact moments + fixed-size sampling reservoir.

    ``count``/``sum``/``min``/``max`` are exact over every observation;
    percentiles come from a reservoir of up to ``reservoir_size`` samples
    (Vitter's algorithm R with a fixed-seed generator, so the retained sample
    is a deterministic function of the observation sequence).  When fewer than
    ``reservoir_size`` values have been observed the reservoir *is* the full
    sample and percentiles are exact.
    """

    kind = "histogram"

    def __init__(self, name: str, labels: LabelKey = (),
                 reservoir_size: int = 2048) -> None:
        if reservoir_size <= 0:
            raise ValueError(f"reservoir_size must be positive: {reservoir_size}")
        self.name = name
        self.labels = labels
        self.reservoir_size = reservoir_size
        self._reservoir: list[float] = []
        self._rng = np.random.default_rng(0)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._reservoir) < self.reservoir_size:
            self._reservoir.append(value)
        else:
            slot = int(self._rng.integers(0, self.count))
            if slot < self.reservoir_size:
                self._reservoir[slot] = value

    def observe_many(self, values) -> None:
        """Bulk observe: vectorised moments plus vectorised Algorithm R.

        The slot draws come from one batched RNG call instead of one call
        per value, so a full reservoir costs O(len(values)) cheap Python
        ops rather than len(values) Generator round-trips.  Still a
        deterministic function of the observation sequence (same acceptance
        probability R/count per value, later duplicates win a slot, exactly
        as the sequential loop resolves them)."""
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size == 0:
            return
        start = self.count
        self.count += int(values.size)
        self.sum += float(values.sum())
        self.min = min(self.min, float(values.min()))
        self.max = max(self.max, float(values.max()))
        free = self.reservoir_size - len(self._reservoir)
        if free > 0:
            self._reservoir.extend(values[:free].tolist())
            values = values[free:]
            start += free
        if values.size == 0:
            return
        counts = np.arange(start + 1, start + values.size + 1)
        slots = self._rng.integers(0, counts)
        reservoir, size = self._reservoir, self.reservoir_size
        for slot, value in zip(slots.tolist(), values.tolist()):
            if slot < size:
                reservoir[slot] = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")

    def samples(self) -> np.ndarray:
        """The retained reservoir (== all observations while under capacity)."""
        return np.asarray(self._reservoir, dtype=np.float64)

    def percentile(self, q: float | list[float]) -> float | np.ndarray:
        """Reservoir percentile(s); ``nan`` when nothing has been observed."""
        if not self._reservoir:
            if isinstance(q, (list, tuple, np.ndarray)):
                return np.full(len(q), float("nan"))
            return float("nan")
        out = np.percentile(self.samples(), q)
        return float(out) if np.ndim(out) == 0 else out

    def snapshot(self) -> dict:
        p50, p95, p99 = (self.percentile([50, 95, 99]) if self._reservoir
                         else (float("nan"),) * 3)
        return {"type": self.kind, "name": self.name,
                "labels": dict(self.labels), "count": self.count,
                "sum": self.sum, "mean": self.mean,
                "min": self.min if self.count else float("nan"),
                "max": self.max if self.count else float("nan"),
                "p50": float(p50), "p95": float(p95), "p99": float(p99)}

    def __repr__(self) -> str:
        return (f"Histogram({self.name!r}, labels={dict(self.labels)}, "
                f"count={self.count})")


class LogHistogram:
    """Log-bucketed (HDR-style) histogram: O(1) observe, mergeable, and
    accurate high percentiles at millions of observations.

    Positive values land in geometric buckets ``[growth**i, growth**(i+1))``
    keyed by integer ``i`` (a dict, so only occupied buckets cost memory);
    zero/negative values get their own underflow bucket.  A reported
    percentile is the *upper bound* of the bucket containing that rank,
    clamped to the exact observed ``max`` — so it can overshoot the true
    quantile by at most one bucket's relative width (``growth - 1``, 10%
    at the default) and never undershoots by more than that.  Unlike the
    reservoir :class:`Histogram` there is no sampling error: every
    observation is counted, which is what makes p99/p999 trustworthy at
    millions of observations.  Two histograms with the same ``growth``
    merge by adding bucket counts (shard-per-thread, merge on snapshot).
    """

    kind = "loghist"

    def __init__(self, name: str, labels: LabelKey = (),
                 growth: float = 1.1) -> None:
        if growth <= 1.0:
            raise ValueError(f"growth must be > 1: {growth}")
        self.name = name
        self.labels = labels
        self.growth = growth
        self._log_growth = math.log(growth)
        self._buckets: dict[int, int] = {}
        self.zeros = 0          # observations <= 0 (their own bucket)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def _index(self, value: float) -> int:
        return math.floor(math.log(value) / self._log_growth)

    def bucket_upper(self, index: int) -> float:
        """Exclusive upper bound of bucket ``index``."""
        return self.growth ** (index + 1)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= 0.0:
            self.zeros += 1
            return
        index = self._index(value)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    def observe_many(self, values) -> None:
        """Vectorised bulk observe (bit-identical totals to looping)."""
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size == 0:
            return
        self.count += int(values.size)
        self.sum += float(values.sum())
        self.min = min(self.min, float(values.min()))
        self.max = max(self.max, float(values.max()))
        positive = values[values > 0.0]
        self.zeros += int(values.size - positive.size)
        if positive.size:
            indices = np.floor(np.log(positive)
                               / self._log_growth).astype(np.int64)
            uniq, counts = np.unique(indices, return_counts=True)
            for index, n in zip(uniq.tolist(), counts.tolist()):
                self._buckets[index] = self._buckets.get(index, 0) + n

    def merge(self, other: "LogHistogram") -> "LogHistogram":
        """Fold ``other``'s observations into this histogram (same growth)."""
        if other.growth != self.growth:
            raise ValueError(f"cannot merge loghist growth={other.growth} "
                             f"into growth={self.growth}")
        for index, n in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + n
        self.zeros += other.zeros
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")

    def percentile(self, q: float | list[float]) -> float | np.ndarray:
        """Bucket-resolution percentile(s); ``nan`` before any observation."""
        qs = np.atleast_1d(np.asarray(q, dtype=np.float64))
        if not self.count:
            out = np.full(qs.size, float("nan"))
            return float(out[0]) if np.ndim(q) == 0 else out
        ranks = np.ceil(qs / 100.0 * self.count).clip(1, self.count)
        indices = sorted(self._buckets)
        out = np.empty(qs.size)
        for pos, rank in enumerate(ranks):
            if rank <= self.zeros:
                out[pos] = min(0.0, self.max)
                continue
            remaining = rank - self.zeros
            value = self.max
            for index in indices:
                remaining -= self._buckets[index]
                if remaining <= 0:
                    value = min(self.bucket_upper(index), self.max)
                    break
            out[pos] = max(value, self.min)
        return float(out[0]) if np.ndim(q) == 0 else out

    def buckets(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs over occupied buckets.

        The underflow bucket surfaces as ``(0.0, zeros)``; this is exactly
        the shape a Prometheus ``_bucket`` series wants (``le`` + cumulative
        count, with the implicit ``+Inf`` bucket equal to ``count``).
        """
        out: list[tuple[float, int]] = []
        running = 0
        if self.zeros:
            running = self.zeros
            out.append((0.0, running))
        for index in sorted(self._buckets):
            running += self._buckets[index]
            out.append((self.bucket_upper(index), running))
        return out

    def snapshot(self) -> dict:
        p50, p95, p99, p999 = (self.percentile([50, 95, 99, 99.9])
                               if self.count else (float("nan"),) * 4)
        return {"type": self.kind, "name": self.name,
                "labels": dict(self.labels), "count": self.count,
                "sum": self.sum, "mean": self.mean,
                "min": self.min if self.count else float("nan"),
                "max": self.max if self.count else float("nan"),
                "p50": float(p50), "p95": float(p95), "p99": float(p99),
                "p999": float(p999), "growth": self.growth,
                "buckets": [[le, n] for le, n in self.buckets()]}

    def __repr__(self) -> str:
        return (f"LogHistogram({self.name!r}, labels={dict(self.labels)}, "
                f"count={self.count}, buckets={len(self._buckets)})")


class MetricsRegistry:
    """Instrument store keyed by ``(name, sorted labels)``.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the first call
    for a key fixes its type, and asking for the same key as a different type
    raises (a name cannot be both a counter and a gauge).
    """

    def __init__(self, reservoir_size: int = 2048) -> None:
        self.reservoir_size = reservoir_size
        self._instruments: dict[tuple[str, LabelKey], object] = {}
        self._fast: dict[tuple, object] = {}

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self) -> Iterator:
        """Instruments in deterministic (name, labels) order."""
        return iter(sorted(self._instruments.values(),
                           key=lambda m: (m.name, m.labels)))

    def _get_or_create(self, cls, name: str,
                       labels: Mapping[str, object] | None, **kwargs):
        key = (name, _label_key(labels))
        inst = self._instruments.get(key)
        if inst is None:
            inst = cls(name, key[1], **kwargs)
            self._instruments[key] = inst
        elif not isinstance(inst, cls):
            raise TypeError(f"metric {name!r} with labels {dict(key[1])} is a "
                            f"{inst.kind}, not a {cls.kind}")
        return inst

    def _fast_get(self, cls, name: str, labels: Mapping[str, object],
                  **kwargs):
        """Memoized :meth:`_get_or_create` for the instrumented hot path.

        Keyed by the raw ``labels.items()`` tuple — unsorted, values left
        unconverted — so repeat calls from the same call site cost one dict
        probe instead of a ``_label_key`` sort.  Distinct insertion orders
        for the same labels just create extra aliases to one instrument.
        """
        key = (cls.kind, name, tuple(labels.items()))
        try:
            inst = self._fast.get(key)
        except TypeError:  # unhashable label value: skip the memo
            return self._get_or_create(cls, name, labels, **kwargs)
        if inst is None:
            inst = self._get_or_create(cls, name, labels, **kwargs)
            self._fast[key] = inst
        return inst

    def counter(self, name: str, labels: Mapping[str, object] | None = None,
                ) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, labels: Mapping[str, object] | None = None,
              ) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(self, name: str, labels: Mapping[str, object] | None = None,
                  reservoir_size: int | None = None) -> Histogram:
        return self._get_or_create(
            Histogram, name, labels,
            reservoir_size=reservoir_size or self.reservoir_size)

    def log_histogram(self, name: str,
                      labels: Mapping[str, object] | None = None,
                      growth: float = 1.1) -> LogHistogram:
        return self._get_or_create(LogHistogram, name, labels, growth=growth)

    def get(self, name: str, labels: Mapping[str, object] | None = None):
        """Fetch an existing instrument or ``None`` (never creates)."""
        return self._instruments.get((name, _label_key(labels)))

    def snapshot(self) -> list[dict]:
        """All instruments as plain dicts, deterministically ordered."""
        return [inst.snapshot() for inst in self]

    def reset(self) -> None:
        self._instruments.clear()
        self._fast.clear()
