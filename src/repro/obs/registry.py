"""Metrics registry: counters, gauges, and histograms keyed by name + labels.

The registry is the passive half of :mod:`repro.obs` — a dictionary of typed
instruments that instrumented code updates through the module-level helpers in
:mod:`repro.obs.runtime`.  Three instrument types cover the telemetry the
paper's efficiency analysis needs (Table V, Figs 6/9/10):

* :class:`Counter` — monotonically increasing totals (batches seen, cache
  hits, hash-table grow events).
* :class:`Gauge` — last-written value (table size, load factor, current lr).
* :class:`Histogram` — distribution sketch over a fixed-size reservoir with
  exact ``count``/``sum``/``min``/``max`` and reservoir-based percentiles
  (serving latency p50/p95/p99, candidate-set sizes).

Everything here is plain numpy + stdlib; instruments are deterministic in
*what* they count (reservoir sampling uses a fixed-seed generator so the kept
sample depends only on the insertion sequence).
"""

from __future__ import annotations

from typing import Iterator, Mapping

import numpy as np

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, object] | None) -> LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing total."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0: {amount}")
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": self.kind, "name": self.name,
                "labels": dict(self.labels), "value": self.value}

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, labels={dict(self.labels)}, value={self.value})"


class Gauge:
    """Last-written value (plus the number of writes, for determinism checks)."""

    kind = "gauge"

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = float("nan")
        self.writes = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.writes += 1

    def snapshot(self) -> dict:
        return {"type": self.kind, "name": self.name,
                "labels": dict(self.labels), "value": self.value,
                "writes": self.writes}

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, labels={dict(self.labels)}, value={self.value})"


class Histogram:
    """Distribution sketch: exact moments + fixed-size sampling reservoir.

    ``count``/``sum``/``min``/``max`` are exact over every observation;
    percentiles come from a reservoir of up to ``reservoir_size`` samples
    (Vitter's algorithm R with a fixed-seed generator, so the retained sample
    is a deterministic function of the observation sequence).  When fewer than
    ``reservoir_size`` values have been observed the reservoir *is* the full
    sample and percentiles are exact.
    """

    kind = "histogram"

    def __init__(self, name: str, labels: LabelKey = (),
                 reservoir_size: int = 2048) -> None:
        if reservoir_size <= 0:
            raise ValueError(f"reservoir_size must be positive: {reservoir_size}")
        self.name = name
        self.labels = labels
        self.reservoir_size = reservoir_size
        self._reservoir: list[float] = []
        self._rng = np.random.default_rng(0)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._reservoir) < self.reservoir_size:
            self._reservoir.append(value)
        else:
            slot = int(self._rng.integers(0, self.count))
            if slot < self.reservoir_size:
                self._reservoir[slot] = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")

    def samples(self) -> np.ndarray:
        """The retained reservoir (== all observations while under capacity)."""
        return np.asarray(self._reservoir, dtype=np.float64)

    def percentile(self, q: float | list[float]) -> float | np.ndarray:
        """Reservoir percentile(s); ``nan`` when nothing has been observed."""
        if not self._reservoir:
            if isinstance(q, (list, tuple, np.ndarray)):
                return np.full(len(q), float("nan"))
            return float("nan")
        out = np.percentile(self.samples(), q)
        return float(out) if np.ndim(out) == 0 else out

    def snapshot(self) -> dict:
        p50, p95, p99 = (self.percentile([50, 95, 99]) if self._reservoir
                         else (float("nan"),) * 3)
        return {"type": self.kind, "name": self.name,
                "labels": dict(self.labels), "count": self.count,
                "sum": self.sum, "mean": self.mean,
                "min": self.min if self.count else float("nan"),
                "max": self.max if self.count else float("nan"),
                "p50": float(p50), "p95": float(p95), "p99": float(p99)}

    def __repr__(self) -> str:
        return (f"Histogram({self.name!r}, labels={dict(self.labels)}, "
                f"count={self.count})")


class MetricsRegistry:
    """Instrument store keyed by ``(name, sorted labels)``.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the first call
    for a key fixes its type, and asking for the same key as a different type
    raises (a name cannot be both a counter and a gauge).
    """

    def __init__(self, reservoir_size: int = 2048) -> None:
        self.reservoir_size = reservoir_size
        self._instruments: dict[tuple[str, LabelKey], object] = {}

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self) -> Iterator:
        """Instruments in deterministic (name, labels) order."""
        return iter(sorted(self._instruments.values(),
                           key=lambda m: (m.name, m.labels)))

    def _get_or_create(self, cls, name: str,
                       labels: Mapping[str, object] | None, **kwargs):
        key = (name, _label_key(labels))
        inst = self._instruments.get(key)
        if inst is None:
            inst = cls(name, key[1], **kwargs)
            self._instruments[key] = inst
        elif not isinstance(inst, cls):
            raise TypeError(f"metric {name!r} with labels {dict(key[1])} is a "
                            f"{inst.kind}, not a {cls.kind}")
        return inst

    def counter(self, name: str, labels: Mapping[str, object] | None = None,
                ) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, labels: Mapping[str, object] | None = None,
              ) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(self, name: str, labels: Mapping[str, object] | None = None,
                  reservoir_size: int | None = None) -> Histogram:
        return self._get_or_create(
            Histogram, name, labels,
            reservoir_size=reservoir_size or self.reservoir_size)

    def get(self, name: str, labels: Mapping[str, object] | None = None):
        """Fetch an existing instrument or ``None`` (never creates)."""
        return self._instruments.get((name, _label_key(labels)))

    def snapshot(self) -> list[dict]:
        """All instruments as plain dicts, deterministically ordered."""
        return [inst.snapshot() for inst in self]

    def reset(self) -> None:
        self._instruments.clear()
