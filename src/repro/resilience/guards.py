"""Serving-path guards: retries with backoff, deadlines, circuit breaking.

The online module (§IV-D) sits between ad requests and a bulk embedding
store; a slow or flapping store must degrade the lookup, never the request.
Three cooperating guards implement that:

* :class:`RetryPolicy` — bounded retries with exponential backoff, capped by
  a per-call deadline budget so tail latency stays bounded;
* :class:`CircuitBreaker` — after ``failure_threshold`` consecutive failures
  the breaker *opens* and lookups skip the store entirely (failing over to
  the stale snapshot / default chain) until a ``reset_seconds`` cool-down,
  after which a single *half-open* probe decides whether to close again;
* :class:`DeadlineExceeded` — the error surfaced when the budget runs out.

Both classes take injectable ``clock``/``sleep`` callables so tests (and the
deterministic fault-injection harness) can drive them without wall-clock
waits.  All state changes emit counters through :mod:`repro.obs`.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.obs import runtime as obs

__all__ = ["RetryPolicy", "CircuitBreaker", "CircuitOpenError",
           "DeadlineExceeded"]


class DeadlineExceeded(TimeoutError):
    """The per-call deadline budget ran out before a retry succeeded."""


class CircuitOpenError(RuntimeError):
    """A call was refused because the circuit breaker is open."""


class RetryPolicy:
    """Retry a callable with exponential backoff under a deadline budget.

    Parameters
    ----------
    max_attempts:
        Total tries (first call included).
    backoff_seconds:
        Sleep before the second attempt; doubles (times ``multiplier``) each
        retry, capped at ``max_backoff_seconds``.
    deadline_seconds:
        Wall-clock budget for the whole call including backoff sleeps;
        ``None`` disables the budget.
    retry_on:
        Exception types considered transient; anything else propagates
        immediately.
    """

    def __init__(self, max_attempts: int = 3, backoff_seconds: float = 0.05,
                 multiplier: float = 2.0, max_backoff_seconds: float = 1.0,
                 deadline_seconds: float | None = None,
                 retry_on: tuple[type[BaseException], ...] = (Exception,),
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        if max_attempts <= 0:
            raise ValueError(f"max_attempts must be positive: {max_attempts}")
        if backoff_seconds < 0 or max_backoff_seconds < 0:
            raise ValueError("backoff must be non-negative")
        self.max_attempts = max_attempts
        self.backoff_seconds = backoff_seconds
        self.multiplier = multiplier
        self.max_backoff_seconds = max_backoff_seconds
        self.deadline_seconds = deadline_seconds
        self.retry_on = retry_on
        self.clock = clock
        self.sleep = sleep

    def call(self, fn: Callable[[], object], name: str = "call"):
        """Run ``fn`` with retries; raises the last error when exhausted.

        Raises :class:`DeadlineExceeded` when the deadline budget would be
        blown by waiting for another attempt.
        """
        start = self.clock()
        backoff = self.backoff_seconds
        last_error: BaseException | None = None
        for attempt in range(self.max_attempts):
            if attempt > 0:
                if self.deadline_seconds is not None and \
                        self.clock() - start + backoff > self.deadline_seconds:
                    obs.count("retry.deadline_exceeded", op=name)
                    raise DeadlineExceeded(
                        f"{name}: deadline of {self.deadline_seconds}s "
                        f"exhausted after {attempt} attempts") from last_error
                self.sleep(backoff)
                backoff = min(backoff * self.multiplier,
                              self.max_backoff_seconds)
                obs.count("retry.attempts", op=name)
                obs.event("retry.attempt", op=name, attempt=attempt + 1)
            try:
                return fn()
            except self.retry_on as exc:
                last_error = exc
                obs.count("retry.failures", op=name)
                obs.event("retry.failure", op=name, attempt=attempt + 1,
                          error=type(exc).__name__)
        assert last_error is not None
        raise last_error


class CircuitBreaker:
    """Trip after consecutive failures; probe again after a cool-down.

    States (the classic three):

    * ``closed`` — calls flow; failures are counted, ``failure_threshold``
      consecutive ones open the breaker.
    * ``open`` — calls are refused (:meth:`allow` returns ``False``) until
      ``reset_seconds`` have passed.
    * ``half_open`` — one probe call is let through; success closes the
      breaker, failure re-opens it and restarts the cool-down.
    """

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"

    def __init__(self, failure_threshold: int = 5, reset_seconds: float = 30.0,
                 clock: Callable[[], float] = time.monotonic,
                 name: str = "store") -> None:
        if failure_threshold <= 0:
            raise ValueError(
                f"failure_threshold must be positive: {failure_threshold}")
        self.failure_threshold = failure_threshold
        self.reset_seconds = reset_seconds
        self.clock = clock
        self.name = name
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.opened_at: float | None = None
        self.trips = 0  # total closed/half-open -> open transitions

    def _transition(self, state: str) -> None:
        if state == self.state:
            return
        self.state = state
        obs.count("breaker.transitions", breaker=self.name, to=state)
        obs.event("breaker.transition", breaker=self.name, to=state)
        obs.gauge_set("breaker.state", {self.CLOSED: 0.0, self.HALF_OPEN: 1.0,
                                        self.OPEN: 2.0}[state],
                      breaker=self.name)

    def allow(self) -> bool:
        """May a call proceed right now?  (Open → half-open after cool-down.)"""
        if self.state == self.OPEN:
            if self.opened_at is not None and \
                    self.clock() - self.opened_at >= self.reset_seconds:
                self._transition(self.HALF_OPEN)
                return True
            obs.count("breaker.rejected", breaker=self.name)
            return False
        return True

    def record_success(self) -> None:
        self.consecutive_failures = 0
        if self.state != self.CLOSED:
            self._transition(self.CLOSED)

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state == self.HALF_OPEN or (
                self.state == self.CLOSED
                and self.consecutive_failures >= self.failure_threshold):
            self.trips += 1
            self.opened_at = self.clock()
            self._transition(self.OPEN)

    def call(self, fn: Callable[[], object]):
        """Guarded invocation: refuse when open, record the outcome."""
        if not self.allow():
            raise CircuitOpenError(
                f"circuit '{self.name}' is open "
                f"({self.consecutive_failures} consecutive failures)")
        try:
            result = fn()
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result
