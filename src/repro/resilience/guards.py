"""Serving-path guards: retries with backoff, deadlines, circuit breaking.

The online module (§IV-D) sits between ad requests and a bulk embedding
store; a slow or flapping store must degrade the lookup, never the request.
Four cooperating guards implement that:

* :class:`Deadline` — a remaining-time budget carried with one request from
  admission (``MicroBatcher.submit``) through the proxy, retry chain, and
  store; propagated along the logical flow of control via a
  :mod:`contextvars` scope (:func:`deadline_scope` / :func:`current_deadline`)
  so nothing below the batcher needs an extra parameter;
* :class:`RetryPolicy` — bounded retries with exponential backoff, capped by
  a per-call deadline budget so tail latency stays bounded; when a
  :class:`Deadline` is in scope, backoff that would outlive the remaining
  budget raises instead of sleeping;
* :class:`CircuitBreaker` — after ``failure_threshold`` consecutive failures
  the breaker *opens* and lookups skip the store entirely (failing over to
  the stale snapshot / default chain) until a ``reset_seconds`` cool-down,
  after which exactly one *half-open* probe decides whether to close again
  (concurrent callers are refused while the probe is in flight);
* :class:`DeadlineExceeded` — the error surfaced when the budget runs out.

All classes take injectable ``clock``/``sleep`` callables so tests (and the
deterministic chaos harness in :mod:`repro.loadtest`) can drive them without
wall-clock waits.  All state changes emit counters through :mod:`repro.obs`.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable

from repro.obs import runtime as obs

__all__ = ["Deadline", "RetryPolicy", "CircuitBreaker", "CircuitOpenError",
           "DeadlineExceeded", "current_deadline", "deadline_scope"]


class DeadlineExceeded(TimeoutError):
    """The per-call deadline budget ran out before a retry succeeded."""


class CircuitOpenError(RuntimeError):
    """A call was refused because the circuit breaker is open."""


class Deadline:
    """A remaining-time budget for one request.

    Created at admission with the request's total latency budget and carried
    (via :func:`deadline_scope`) through every layer that might block —
    retries consult :meth:`allows` before sleeping, the serving proxy
    consults :attr:`expired` before even attempting a store read, so an
    expired request short-circuits straight to the degraded tiers instead of
    queuing behind a slow dependency.

    The clock is injectable (``ManualClock`` in tests and the load-test
    harness) and shared with whatever retry/breaker instances guard the same
    request, so budget accounting is deterministic.
    """

    __slots__ = ("expires_at", "clock")

    def __init__(self, budget_seconds: float,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if budget_seconds < 0:
            raise ValueError(
                f"budget_seconds must be non-negative: {budget_seconds}")
        self.clock = clock
        self.expires_at = clock() + budget_seconds

    @classmethod
    def at(cls, expires_at: float,
           clock: Callable[[], float] = time.monotonic) -> "Deadline":
        """Build a deadline from an absolute expiry on ``clock``'s timeline."""
        deadline = cls(0.0, clock=clock)
        deadline.expires_at = float(expires_at)
        return deadline

    def remaining(self) -> float:
        """Seconds of budget left (negative once expired)."""
        return self.expires_at - self.clock()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def allows(self, seconds: float) -> bool:
        """Would spending ``seconds`` still finish inside the budget?"""
        return self.remaining() >= seconds

    def check(self, op: str = "call") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is already spent."""
        if self.expired:
            obs.count("deadline.expired", op=op)
            raise DeadlineExceeded(
                f"{op}: deadline expired {-self.remaining():.4f}s ago")

    def __repr__(self) -> str:
        return f"Deadline(remaining={self.remaining():.4f}s)"


_DEADLINE: ContextVar[Deadline | None] = ContextVar("repro_deadline",
                                                    default=None)


def current_deadline() -> Deadline | None:
    """The deadline governing the current logical request, if any."""
    return _DEADLINE.get()


@contextmanager
def deadline_scope(deadline: Deadline | None):
    """Make ``deadline`` current for the block (``None`` clears the scope).

    The batcher activates the flushed batch's governing deadline around its
    ``flush_fn`` call; everything beneath — proxy, retries, store — then
    reads it with :func:`current_deadline` without parameter threading.
    """
    token = _DEADLINE.set(deadline)
    try:
        yield deadline
    finally:
        _DEADLINE.reset(token)


class RetryPolicy:
    """Retry a callable with exponential backoff under a deadline budget.

    Parameters
    ----------
    max_attempts:
        Total tries (first call included).
    backoff_seconds:
        Sleep before the second attempt; doubles (times ``multiplier``) each
        retry, capped at ``max_backoff_seconds``.
    deadline_seconds:
        Wall-clock budget for the whole call including backoff sleeps;
        ``None`` disables the budget.
    retry_on:
        Exception types considered transient; anything else propagates
        immediately.
    """

    def __init__(self, max_attempts: int = 3, backoff_seconds: float = 0.05,
                 multiplier: float = 2.0, max_backoff_seconds: float = 1.0,
                 deadline_seconds: float | None = None,
                 retry_on: tuple[type[BaseException], ...] = (Exception,),
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        if max_attempts <= 0:
            raise ValueError(f"max_attempts must be positive: {max_attempts}")
        if backoff_seconds < 0 or max_backoff_seconds < 0:
            raise ValueError("backoff must be non-negative")
        self.max_attempts = max_attempts
        self.backoff_seconds = backoff_seconds
        self.multiplier = multiplier
        self.max_backoff_seconds = max_backoff_seconds
        self.deadline_seconds = deadline_seconds
        self.retry_on = retry_on
        self.clock = clock
        self.sleep = sleep

    def call(self, fn: Callable[[], object], name: str = "call",
             deadline: Deadline | None = None):
        """Run ``fn`` with retries; raises the last error when exhausted.

        Raises :class:`DeadlineExceeded` when the deadline budget would be
        blown by waiting for another attempt.  Two budgets apply: the
        policy's own ``deadline_seconds`` (a per-call cap), and the
        *request's* :class:`Deadline` — passed explicitly or picked up from
        :func:`current_deadline` — whose remaining budget bounds both the
        first attempt and every backoff sleep.
        """
        if deadline is None:
            deadline = current_deadline()
        if deadline is not None:
            deadline.check(name)
        start = self.clock()
        backoff = self.backoff_seconds
        last_error: BaseException | None = None
        for attempt in range(self.max_attempts):
            if attempt > 0:
                if self.deadline_seconds is not None and \
                        self.clock() - start + backoff > self.deadline_seconds:
                    obs.count("retry.deadline_exceeded", op=name)
                    raise DeadlineExceeded(
                        f"{name}: deadline of {self.deadline_seconds}s "
                        f"exhausted after {attempt} attempts") from last_error
                if deadline is not None and not deadline.allows(backoff):
                    obs.count("retry.deadline_exceeded", op=name)
                    raise DeadlineExceeded(
                        f"{name}: request budget ({deadline.remaining():.4f}s "
                        f"left) cannot cover a {backoff:.4f}s backoff after "
                        f"{attempt} attempts") from last_error
                self.sleep(backoff)
                backoff = min(backoff * self.multiplier,
                              self.max_backoff_seconds)
                obs.count("retry.attempts", op=name)
                obs.event("retry.attempt", op=name, attempt=attempt + 1)
            try:
                return fn()
            except self.retry_on as exc:
                last_error = exc
                obs.count("retry.failures", op=name)
                obs.event("retry.failure", op=name, attempt=attempt + 1,
                          error=type(exc).__name__)
        assert last_error is not None
        raise last_error


class CircuitBreaker:
    """Trip after consecutive failures; probe again after a cool-down.

    States (the classic three):

    * ``closed`` — calls flow; failures are counted, ``failure_threshold``
      consecutive ones open the breaker.
    * ``open`` — calls are refused (:meth:`allow` returns ``False``) until
      ``reset_seconds`` have passed.
    * ``half_open`` — exactly one probe call is let through; success closes
      the breaker, failure re-opens it and restarts the cool-down.

    Thread-safe: concurrent serving threads race on the open → half-open
    edge, and without coordination a cool-down expiry would let a thundering
    herd of "probes" through at once.  All state transitions happen under a
    lock, and at most one probe is in flight in the half-open state — other
    callers are refused until that probe's outcome is recorded.
    """

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"

    def __init__(self, failure_threshold: int = 5, reset_seconds: float = 30.0,
                 clock: Callable[[], float] = time.monotonic,
                 name: str = "store") -> None:
        if failure_threshold <= 0:
            raise ValueError(
                f"failure_threshold must be positive: {failure_threshold}")
        self.failure_threshold = failure_threshold
        self.reset_seconds = reset_seconds
        self.clock = clock
        self.name = name
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.opened_at: float | None = None
        self.trips = 0  # total closed/half-open -> open transitions
        self._lock = threading.Lock()
        self._probe_in_flight = False
        self._probe_started: float | None = None

    def _transition(self, state: str) -> None:
        if state == self.state:
            return
        self.state = state
        obs.count("breaker.transitions", breaker=self.name, to=state)
        obs.event("breaker.transition", breaker=self.name, to=state)
        obs.gauge_set("breaker.state", {self.CLOSED: 0.0, self.HALF_OPEN: 1.0,
                                        self.OPEN: 2.0}[state],
                      breaker=self.name)

    def allow(self) -> bool:
        """May a call proceed right now?  (Open → half-open after cool-down.)

        In the half-open state only the caller that won the transition (or,
        after a probe's outcome is recorded without a state change, the next
        caller in) gets ``True``; everyone else is refused while the single
        probe is in flight.
        """
        with self._lock:
            if self.state == self.OPEN:
                if self.opened_at is not None and \
                        self.clock() - self.opened_at >= self.reset_seconds:
                    self._transition(self.HALF_OPEN)
                    self._probe_in_flight = True
                    self._probe_started = self.clock()
                    return True
                obs.count("breaker.rejected", breaker=self.name)
                return False
            if self.state == self.HALF_OPEN:
                if self._probe_in_flight:
                    # A probe whose caller vanished without recording an
                    # outcome (direct allow() use, or a BaseException that
                    # bypassed call()'s bookkeeping) must not wedge the
                    # breaker forever: after a full cool-down the probe slot
                    # is reclaimed by the next caller.
                    if self._probe_started is not None and \
                            self.clock() - self._probe_started >= \
                            self.reset_seconds:
                        obs.count("breaker.probe_reclaimed",
                                  breaker=self.name)
                        self._probe_started = self.clock()
                        return True
                    obs.count("breaker.rejected", breaker=self.name)
                    return False
                self._probe_in_flight = True
                self._probe_started = self.clock()
                return True
            return True

    def record_success(self) -> None:
        with self._lock:
            self._probe_in_flight = False
            self._probe_started = None
            self.consecutive_failures = 0
            if self.state != self.CLOSED:
                self._transition(self.CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            self._probe_in_flight = False
            self._probe_started = None
            self.consecutive_failures += 1
            if self.state == self.HALF_OPEN or (
                    self.state == self.CLOSED
                    and self.consecutive_failures >= self.failure_threshold):
                self.trips += 1
                self.opened_at = self.clock()
                self._transition(self.OPEN)

    def call(self, fn: Callable[[], object]):
        """Guarded invocation: refuse when open, record the outcome."""
        if not self.allow():
            raise CircuitOpenError(
                f"circuit '{self.name}' is open "
                f"({self.consecutive_failures} consecutive failures)")
        try:
            result = fn()
        except BaseException:
            # BaseException included: a KeyboardInterrupt/SystemExit escaping
            # a half-open probe must still release the probe slot, or the
            # breaker stays wedged refusing every later call.
            self.record_failure()
            raise
        self.record_success()
        return result
