"""Seeded fault injection for distributed training and serving.

The paper's production runs span days on a parameter-server cluster; worker
crashes, stragglers, and dropped gradient pushes are routine there.  This
module provides the fault *model* the simulation layer injects:

* :class:`FaultConfig` + :class:`FaultSchedule` — a reproducible (seeded)
  schedule of fault events over the ``(step, worker)`` grid;
* :func:`simulate_faulty_run` — a synchronous-data-parallel timeline model
  that prices a schedule under a recovery strategy
  (:data:`RecoveryStrategy.CHECKPOINT_RESTART` replays work from the last
  checkpoint after a crash; :data:`RecoveryStrategy.GRADIENT_SKIP` drops the
  affected worker's update and keeps going);
* :class:`FlakyEmbeddingStore` — a store wrapper that raises
  :class:`StoreUnavailableError` on a seeded fraction of lookups, used to
  exercise the serving fallback chain.

:meth:`repro.distributed.DistributedTrainingSimulator.measure_with_faults`
combines the *measured* compute profile with this *modelled* fault timeline,
mirroring how the simulator already treats the network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Sequence

import numpy as np

from repro.obs import runtime as obs
from repro.utils.rng import new_rng

__all__ = ["FaultKind", "FaultEvent", "FaultConfig", "FaultSchedule",
           "RecoveryStrategy", "FaultyRunResult", "simulate_faulty_run",
           "StoreUnavailableError", "FlakyEmbeddingStore"]


class FaultKind:
    """Kinds of injected faults (plain strings so they serialise cleanly)."""

    WORKER_CRASH = "worker_crash"      # the worker process dies mid-step
    STRAGGLER = "straggler"            # the worker runs `magnitude`× slower
    DROPPED_PUSH = "dropped_push"      # the worker's gradient push is lost
    SERVER_CRASH = "server_crash"      # a parameter server drops out

    ALL = (WORKER_CRASH, STRAGGLER, DROPPED_PUSH, SERVER_CRASH)


class RecoveryStrategy:
    """How the cluster reacts to a worker crash."""

    CHECKPOINT_RESTART = "checkpoint_restart"  # restart job from last ckpt
    GRADIENT_SKIP = "gradient_skip"            # skip the update, keep going

    ALL = (CHECKPOINT_RESTART, GRADIENT_SKIP)


@dataclass(frozen=True, order=True)
class FaultEvent:
    """One injected fault: ``kind`` hits ``worker`` at global ``step``."""

    step: int
    worker: int          # -1 for cluster-level events (server crash)
    kind: str
    magnitude: float = 1.0   # straggler slowdown factor; unused otherwise


@dataclass(frozen=True)
class FaultConfig:
    """Per worker-step fault probabilities (all independent Bernoulli draws).

    ``server_crash_steps`` lists deterministic steps at which one parameter
    server is lost — server loss is a rare, operator-visible event, so it is
    scheduled explicitly rather than drawn.
    """

    crash_rate: float = 0.0
    straggler_rate: float = 0.0
    straggler_slowdown: float = 4.0
    dropped_push_rate: float = 0.0
    server_crash_steps: tuple[int, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("crash_rate", "straggler_rate", "dropped_push_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be a probability: {rate}")
        if self.straggler_slowdown < 1.0:
            raise ValueError(
                f"straggler_slowdown must be >= 1: {self.straggler_slowdown}")


@dataclass
class FaultSchedule:
    """A concrete, reproducible list of fault events for one simulated run."""

    n_steps: int
    n_workers: int
    events: list[FaultEvent] = field(default_factory=list)

    @classmethod
    def generate(cls, n_steps: int, n_workers: int,
                 config: FaultConfig) -> "FaultSchedule":
        """Draw a schedule from ``config`` — same seed, same schedule."""
        if n_steps < 0 or n_workers <= 0:
            raise ValueError(
                f"need n_steps >= 0 and n_workers > 0: {n_steps}, {n_workers}")
        rng = new_rng(config.seed)
        events: list[FaultEvent] = []
        shape = (n_steps, n_workers)
        # Draw order is part of the schedule contract: crash, straggler, drop.
        crash = rng.random(shape) < config.crash_rate
        straggle = rng.random(shape) < config.straggler_rate
        dropped = rng.random(shape) < config.dropped_push_rate
        for step, worker in zip(*np.nonzero(crash)):
            events.append(FaultEvent(int(step), int(worker),
                                     FaultKind.WORKER_CRASH))
        for step, worker in zip(*np.nonzero(straggle & ~crash)):
            events.append(FaultEvent(int(step), int(worker),
                                     FaultKind.STRAGGLER,
                                     magnitude=config.straggler_slowdown))
        for step, worker in zip(*np.nonzero(dropped & ~crash)):
            events.append(FaultEvent(int(step), int(worker),
                                     FaultKind.DROPPED_PUSH))
        for step in config.server_crash_steps:
            if 0 <= step < n_steps:
                events.append(FaultEvent(int(step), -1, FaultKind.SERVER_CRASH))
        return cls(n_steps=n_steps, n_workers=n_workers, events=sorted(events))

    def at(self, step: int) -> list[FaultEvent]:
        return [e for e in self.events if e.step == step]

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    def by_step(self) -> dict[int, list[FaultEvent]]:
        out: dict[int, list[FaultEvent]] = {}
        for event in self.events:
            out.setdefault(event.step, []).append(event)
        return out


@dataclass
class FaultyRunResult:
    """Timeline accounting for one fault-injected run."""

    strategy: str
    n_steps: int
    n_workers: int
    wall_clock: float
    fault_free_wall_clock: float
    lost_steps: int = 0            # steps of work redone after crashes
    max_lost_steps: int = 0        # worst single crash (≤ checkpoint interval)
    skipped_updates: int = 0       # gradient pushes dropped/skipped
    n_crashes: int = 0
    n_stragglers: int = 0
    n_dropped: int = 0
    checkpoint_writes: int = 0
    checkpoint_seconds: float = 0.0

    @property
    def overhead(self) -> float:
        """Relative wall-clock overhead vs the fault-free run."""
        if self.fault_free_wall_clock <= 0:
            return 0.0
        return self.wall_clock / self.fault_free_wall_clock - 1.0


def simulate_faulty_run(*, step_seconds: float, n_steps: int, n_workers: int,
                        schedule: FaultSchedule, strategy: str,
                        sync_seconds: float | Sequence[float] = 0.0,
                        checkpoint_interval: int = 50,
                        checkpoint_write_seconds: float = 1.0,
                        restart_seconds: float = 10.0,
                        crash_detection_seconds: float = 0.5,
                        baseline_sync_seconds: float | None = None,
                        ) -> FaultyRunResult:
    """Price a fault schedule under a recovery strategy.

    The cluster runs synchronous data-parallel steps: every step costs the
    barrier maximum of the workers' compute (``step_seconds``, inflated by
    stragglers) plus the per-step synchronisation cost.  On a worker crash:

    * ``checkpoint_restart`` — the job restarts from the last checkpoint:
      ``restart_seconds`` of restart latency plus a replay of the lost steps
      at fault-free speed.  Periodic checkpoint writes every
      ``checkpoint_interval`` steps cost ``checkpoint_write_seconds`` each,
      and bound the loss per crash to one interval.
    * ``gradient_skip`` — the crashed worker's update is skipped and a warm
      standby takes over next step; only ``crash_detection_seconds`` of
      barrier stall is paid, but the update is lost (a quality, not time,
      cost — tracked as ``skipped_updates``).

    Dropped pushes are retried under ``checkpoint_restart`` (one extra sync
    round-trip) and skipped under ``gradient_skip``.
    """
    if strategy not in RecoveryStrategy.ALL:
        raise ValueError(f"unknown recovery strategy '{strategy}'; "
                         f"use one of {RecoveryStrategy.ALL}")
    if checkpoint_interval <= 0:
        raise ValueError(
            f"checkpoint_interval must be positive: {checkpoint_interval}")
    sync = np.broadcast_to(np.asarray(sync_seconds, dtype=np.float64),
                           (n_steps,)) if n_steps else np.zeros(0)
    mean_sync = float(sync.mean()) if n_steps else 0.0
    # The fault-free reference run pays the *undegraded* sync cost — when the
    # caller models server loss as a degraded sync array, that slowdown must
    # count as fault overhead, not inflate the baseline.
    if baseline_sync_seconds is None:
        baseline_sync_seconds = mean_sync
    fault_free = n_steps * (step_seconds + baseline_sync_seconds)
    result = FaultyRunResult(strategy=strategy, n_steps=n_steps,
                             n_workers=n_workers, wall_clock=0.0,
                             fault_free_wall_clock=fault_free)

    events_by_step = schedule.by_step()
    wall = 0.0
    last_checkpoint = 0
    for step in range(n_steps):
        events = events_by_step.get(step, ())
        slowdown = 1.0
        crashes = 0
        drops = 0
        for event in events:
            if event.kind == FaultKind.STRAGGLER:
                slowdown = max(slowdown, event.magnitude)
                result.n_stragglers += 1
            elif event.kind == FaultKind.WORKER_CRASH:
                crashes += 1
                result.n_crashes += 1
            elif event.kind == FaultKind.DROPPED_PUSH:
                drops += 1
                result.n_dropped += 1
        wall += step_seconds * slowdown + float(sync[step])

        if strategy == RecoveryStrategy.CHECKPOINT_RESTART:
            for __ in range(drops):       # pushes are retransmitted
                wall += float(sync[step])
            completed = step + 1
            if completed % checkpoint_interval == 0:
                wall += checkpoint_write_seconds
                result.checkpoint_writes += 1
                result.checkpoint_seconds += checkpoint_write_seconds
                last_checkpoint = completed
            for __ in range(crashes):
                lost = completed - last_checkpoint
                result.lost_steps += lost
                result.max_lost_steps = max(result.max_lost_steps, lost)
                wall += restart_seconds + lost * (step_seconds + mean_sync)
        else:  # gradient skip
            if crashes:
                wall += crash_detection_seconds * crashes
            result.skipped_updates += crashes + drops

    result.wall_clock = wall
    obs.count("faults.injected", len(schedule.events))
    return result


# -- serving-side fault injection -----------------------------------------------

class StoreUnavailableError(ConnectionError):
    """The embedding store failed to answer a lookup (transient)."""


class FlakyEmbeddingStore:
    """Wrap an embedding store so a seeded fraction of lookups fail.

    Duck-types :class:`repro.lookalike.EmbeddingStore`; writes are passed
    through untouched, reads raise :class:`StoreUnavailableError` with
    probability ``failure_rate`` (or deterministically after
    :meth:`fail_next`).  Used by tests, the resilience smoke script, and the
    serving degradation experiment.

    A second, nastier failure mode returns *wrong data* instead of raising:
    with probability ``corruption_rate`` (or deterministically after
    :meth:`corrupt_next`) a read succeeds but hands back corrupted rows —
    NaN-filled vectors, or a wrong-dimension matrix when
    ``corruption_mode="wrong_dim"``.  This models bit rot / truncated RPC
    payloads that a naive client would serve straight to ranking; the
    :class:`~repro.lookalike.serving.ServingProxy` is expected to detect it
    and fall back instead.
    """

    def __init__(self, store, failure_rate: float = 0.2,
                 rng: np.random.Generator | int | None = 0,
                 corruption_rate: float = 0.0,
                 corruption_mode: str = "nan") -> None:
        if not 0.0 <= failure_rate <= 1.0:
            raise ValueError(f"failure_rate must be a probability: {failure_rate}")
        if not 0.0 <= corruption_rate <= 1.0:
            raise ValueError(
                f"corruption_rate must be a probability: {corruption_rate}")
        if corruption_mode not in ("nan", "wrong_dim"):
            raise ValueError(
                f"corruption_mode must be 'nan' or 'wrong_dim': "
                f"{corruption_mode!r}")
        self.store = store
        self.failure_rate = failure_rate
        self.corruption_rate = corruption_rate
        self.corruption_mode = corruption_mode
        self._rng = new_rng(rng)
        self._forced_failures = 0
        self._forced_corruptions = 0
        self.injected_failures = 0
        self.injected_corruptions = 0

    @property
    def dim(self) -> int:
        return self.store.dim

    def __len__(self) -> int:
        return len(self.store)

    def __contains__(self, key: Hashable) -> bool:
        return key in self.store

    def fail_next(self, n: int = 1) -> None:
        """Force the next ``n`` reads to fail (deterministic tests)."""
        self._forced_failures += n

    def corrupt_next(self, n: int = 1) -> None:
        """Force the next ``n`` reads to return corrupted rows."""
        self._forced_corruptions += n

    def _maybe_fail(self) -> None:
        if self._forced_failures > 0:
            self._forced_failures -= 1
        elif not (self.failure_rate and self._rng.random() < self.failure_rate):
            return
        self.injected_failures += 1
        obs.count("store.injected_failures")
        raise StoreUnavailableError("injected store failure")

    def _maybe_corrupt(self) -> bool:
        if self._forced_corruptions > 0:
            self._forced_corruptions -= 1
        elif not (self.corruption_rate
                  and self._rng.random() < self.corruption_rate):
            return False
        self.injected_corruptions += 1
        obs.count("store.injected_corruptions")
        return True

    def _corrupt_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """Corrupted stand-in for a read result (same row count)."""
        if self.corruption_mode == "wrong_dim":
            return np.zeros((len(matrix), matrix.shape[1] + 1)
                            if matrix.ndim == 2 else (matrix.shape[0] + 1,))
        return np.full_like(matrix, np.nan)

    def get(self, key: Hashable):
        self._maybe_fail()
        vec = self.store.get(key)
        if vec is not None and self._maybe_corrupt():
            return self._corrupt_matrix(np.atleast_1d(vec))
        return vec

    def get_many(self, keys: Iterable[Hashable]):
        self._maybe_fail()
        out = self.store.get_many(keys)
        if self._maybe_corrupt():
            return self._corrupt_matrix(out)
        return out

    def get_batch(self, keys):
        """One failure roll for the whole batch — a batch read is one RPC."""
        self._maybe_fail()
        matrix, found = self.store.get_batch(keys)
        if self._maybe_corrupt():
            return self._corrupt_matrix(matrix), found
        return matrix, found

    def as_matrix(self):
        return self.store.as_matrix()

    def put(self, key: Hashable, vector) -> None:
        self.store.put(key, vector)

    def put_many(self, keys, matrix) -> None:
        self.store.put_many(keys, matrix)

    def keys(self):
        return self.store.keys()
