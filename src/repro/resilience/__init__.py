"""``repro.resilience`` — surviving partial failure at production scale.

The paper's system trains for days on a parameter-server cluster and serves
lookalike traffic online (§IV-D); at that scale worker loss, pre-empted jobs,
and store misses are the normal case.  This package holds the three legs of
the repo's fault story:

* :mod:`repro.resilience.checkpoint` — atomic, digest-verified training
  checkpoints with bit-exact resume (wired into
  :meth:`repro.core.trainer.Trainer.fit`);
* :mod:`repro.resilience.faults` — seeded fault schedules (worker crashes,
  stragglers, dropped pushes, server loss) injected into the distributed
  training simulation, plus recovery-strategy timeline modelling;
* :mod:`repro.resilience.guards` — retry-with-backoff, deadline budgets, and
  a circuit breaker for serving-path store lookups.

Import discipline: like :mod:`repro.obs`, this package is imported from hot
paths (`core`, `distributed`, `lookalike`) and therefore only depends on
numpy/stdlib plus ``repro.obs`` and ``repro.utils``.
"""

from repro.resilience.checkpoint import (Checkpoint, CheckpointError,
                                         Checkpointer, model_state_arrays,
                                         restore_model_state)
from repro.resilience.faults import (FaultConfig, FaultEvent, FaultKind,
                                     FaultSchedule, FaultyRunResult,
                                     FlakyEmbeddingStore, RecoveryStrategy,
                                     StoreUnavailableError,
                                     simulate_faulty_run)
from repro.resilience.guards import (CircuitBreaker, CircuitOpenError,
                                     Deadline, DeadlineExceeded, RetryPolicy,
                                     current_deadline, deadline_scope)

__all__ = [
    "Checkpoint", "CheckpointError", "Checkpointer",
    "model_state_arrays", "restore_model_state",
    "FaultConfig", "FaultEvent", "FaultKind", "FaultSchedule",
    "FaultyRunResult", "RecoveryStrategy", "simulate_faulty_run",
    "FlakyEmbeddingStore", "StoreUnavailableError",
    "CircuitBreaker", "CircuitOpenError", "Deadline", "DeadlineExceeded",
    "RetryPolicy", "current_deadline", "deadline_scope",
]
