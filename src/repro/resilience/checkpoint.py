"""Crash-safe training checkpoints.

The paper's production FVAE trains for days on a parameter-server cluster
(§IV-D); at that horizon a lost worker or pre-empted job is routine, and a
training system that cannot resume is a training system that loses days of
work.  :class:`Checkpointer` provides the storage half of the resume story:

* **atomic** — archives are staged to a temp file and ``os.replace``\\ d into
  place (:mod:`repro.utils.fileio`), so a crash mid-save never corrupts the
  newest-but-one checkpoint;
* **self-verifying** — every archive carries a ``.sha256`` sidecar; a
  truncated or bit-rotten checkpoint raises :class:`CheckpointError` on load
  and :meth:`Checkpointer.latest` transparently falls back to the newest
  *valid* one;
* **bounded** — a retention policy keeps the last ``keep_last`` archives.

The *content* of a training checkpoint (model parameters, optimizer moments,
hash tables, RNG states, epoch/batch cursor) is assembled by
:meth:`repro.core.trainer.Trainer.fit`; the helpers here
(:func:`model_state_arrays` / :func:`restore_model_state`) capture the
model-side state for any :class:`~repro.nn.layers.Module`-shaped model and
know how to snapshot FVAE dynamic hash tables.
"""

from __future__ import annotations

import json
import logging
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.obs import runtime as obs
from repro.utils.fileio import (DigestMismatchError, atomic_savez,
                                digest_path_for, verify_digest)

__all__ = ["CheckpointError", "Checkpoint", "Checkpointer",
           "model_state_arrays", "restore_model_state"]

logger = logging.getLogger(__name__)

FORMAT_VERSION = 1

_META_KEY = "__checkpoint_meta__"
_TABLE_KEYS = "table_keys/"
_TABLE_ROWS = "table_rows/"
_PARAM = "param/"


class CheckpointError(RuntimeError):
    """A checkpoint cannot be read: missing, corrupt, or wrong format."""


@dataclass
class Checkpoint:
    """One loaded checkpoint: its path, parsed metadata, and raw arrays."""

    path: Path
    meta: dict
    arrays: dict[str, np.ndarray]

    @property
    def step(self) -> int:
        return int(self.meta["step"])


class Checkpointer:
    """Atomic, digest-verified, retention-bounded checkpoint store.

    Parameters
    ----------
    directory:
        Where archives live (created on first save).
    keep_last:
        Retention: after a successful save, only the newest ``keep_last``
        checkpoints (and their digests) are kept.
    prefix:
        Archive name prefix; files are ``<prefix>-step<NNNNNNNNNN>.npz``.
    """

    def __init__(self, directory: str | Path, keep_last: int = 3,
                 prefix: str = "ckpt") -> None:
        if keep_last <= 0:
            raise ValueError(f"keep_last must be positive: {keep_last}")
        self.directory = Path(directory)
        self.keep_last = keep_last
        self.prefix = prefix

    # -- writing ---------------------------------------------------------------

    def path_for(self, step: int) -> Path:
        return self.directory / f"{self.prefix}-step{step:010d}.npz"

    def save(self, arrays: dict[str, np.ndarray], meta: dict, step: int) -> Path:
        """Atomically persist one checkpoint and apply the retention policy."""
        meta = dict(meta)
        meta.setdefault("format_version", FORMAT_VERSION)
        meta["step"] = int(step)
        payload = dict(arrays)
        payload[_META_KEY] = np.asarray(json.dumps(meta))
        path = self.path_for(step)
        with obs.latency("checkpoint.save_seconds"):
            atomic_savez(path, payload)
        obs.count("checkpoint.saves")
        obs.gauge_set("checkpoint.bytes", float(path.stat().st_size))
        self._prune()
        return path

    def _prune(self) -> None:
        stale = self.checkpoint_paths()[:-self.keep_last]
        for path in stale:
            path.unlink(missing_ok=True)
            digest_path_for(path).unlink(missing_ok=True)
            obs.count("checkpoint.pruned")

    # -- reading ---------------------------------------------------------------

    def checkpoint_paths(self) -> list[Path]:
        """All archive paths in this store, oldest first."""
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob(f"{self.prefix}-step*.npz"))

    def load(self, path: str | Path) -> Checkpoint:
        """Load and verify one checkpoint; raises :class:`CheckpointError`."""
        path = Path(path)
        if not path.is_file():
            raise CheckpointError(f"no checkpoint at {path}")
        try:
            if digest_path_for(path).exists():
                verify_digest(path)
            with np.load(path, allow_pickle=True) as payload:
                if _META_KEY not in payload.files:
                    raise CheckpointError(
                        f"{path} is not a checkpoint archive (no metadata)")
                meta = json.loads(str(payload[_META_KEY]))
                arrays = {name: payload[name] for name in payload.files
                          if name != _META_KEY}
        except CheckpointError:
            raise
        except (DigestMismatchError, OSError, ValueError,
                json.JSONDecodeError) as exc:
            obs.count("checkpoint.corrupt")
            raise CheckpointError(f"checkpoint {path} is unreadable: {exc}") from exc
        if meta.get("format_version") != FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint {path} has format {meta.get('format_version')}; "
                f"this build reads {FORMAT_VERSION}")
        return Checkpoint(path=path, meta=meta, arrays=arrays)

    def latest(self) -> Checkpoint | None:
        """Newest *valid* checkpoint, skipping (and logging) corrupt ones."""
        for path in reversed(self.checkpoint_paths()):
            try:
                return self.load(path)
            except CheckpointError as exc:
                logger.warning("skipping unreadable checkpoint: %s", exc)
        return None


# -- model-side state capture ---------------------------------------------------

def model_state_arrays(model) -> dict[str, np.ndarray]:
    """Snapshot a model's parameters (and FVAE hash tables) as flat arrays."""
    arrays: dict[str, np.ndarray] = {}
    for name, values in model.state_dict().items():
        arrays[f"{_PARAM}{name}"] = values
    for field, table in _tables_of(model).items():
        items = list(table.items())
        arrays[f"{_TABLE_KEYS}{field}"] = np.asarray(
            [k for k, __ in items], dtype=object)
        arrays[f"{_TABLE_ROWS}{field}"] = np.asarray(
            [v for __, v in items], dtype=np.int64)
    return arrays


def restore_model_state(model, arrays: dict[str, np.ndarray]) -> None:
    """Restore :func:`model_state_arrays` *exactly* (shapes included).

    Unlike :meth:`~repro.nn.layers.Module.load_state_dict` (which tolerates
    grown sparse parameters), resume requires each parameter to take the
    saved array verbatim — optimizer moments are saved at the same shapes,
    and any extra rows would desynchronise the run from its uninterrupted
    twin.
    """
    for field, table in _tables_of(model).items():
        keys_name, rows_name = f"{_TABLE_KEYS}{field}", f"{_TABLE_ROWS}{field}"
        if keys_name not in arrays:
            raise CheckpointError(f"checkpoint lacks hash table for '{field}'")
        keys = [_plain_key(k) for k in arrays[keys_name]]
        table.load_items(keys, arrays[rows_name].tolist())
    params = dict(model.named_parameters())
    missing = [name for name in params if f"{_PARAM}{name}" not in arrays]
    if missing:
        raise CheckpointError(f"checkpoint lacks parameters: {sorted(missing)}")
    for name, param in params.items():
        param.data = np.array(arrays[f"{_PARAM}{name}"], copy=True)


def _tables_of(model) -> dict[str, object]:
    """FVAE-style dynamic hash tables keyed by field name ({} otherwise)."""
    schema = getattr(model, "schema", None)
    encoder = getattr(model, "encoder", None)
    if schema is None or encoder is None or not hasattr(encoder, "bag"):
        return {}
    return {spec.name: encoder.bag(spec.name).table for spec in schema}


def _plain_key(key):
    """npz round-trips Python scalars as numpy scalars; normalise them back."""
    if isinstance(key, np.integer):
        return int(key)
    if isinstance(key, np.str_):
        return str(key)
    return key
