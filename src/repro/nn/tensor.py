"""Reverse-mode automatic differentiation on NumPy arrays.

This module is the numerical substrate for every model in the library.  The
original paper implements the FVAE on TensorFlow; no deep-learning framework
is available in this environment, so we provide a compact but complete
autograd engine:

* :class:`Tensor` wraps a ``numpy.ndarray`` and records the operations that
  produced it in a dynamic computation graph.
* :meth:`Tensor.backward` walks the graph in reverse topological order and
  accumulates gradients.
* :class:`Parameter` marks trainable leaves.  A parameter may be declared
  *row-sparse* (``sparse=True``), in which case gather-style operations record
  ``(rows, grad_rows)`` pairs instead of materialising a dense gradient.  This
  is the mechanism behind the paper's dynamic-hash-table embeddings and
  batched softmax: the cost of one optimizer step is proportional to the
  number of *touched* rows rather than the full feature vocabulary.

Only the operations needed by the models in this repository are implemented,
but each supports full NumPy broadcasting and is exercised by finite-difference
gradient checks in the test suite.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "Parameter", "no_grad", "is_grad_enabled", "as_tensor",
           "inference_mode", "is_inference",
           "stable_sigmoid", "coalesce_rows"]


_GRAD_ENABLED = True
_INFERENCE_MODE = False


def stable_sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid of a raw array.

    Computed from a single ``exp(-|x|)`` temporary: for ``x >= 0`` this is
    ``1 / (1 + e^-x)``, for ``x < 0`` it is ``e^x / (1 + e^x)`` — both branches
    share the same exponential, so no overflow and no boolean-mask fancy
    indexing.  Shared by :meth:`Tensor.sigmoid` and
    :func:`repro.nn.functional.softplus`'s backward pass.
    """
    x = np.asarray(x)
    e = np.exp(-np.abs(x))
    return np.where(x >= 0, 1.0 / (1.0 + e), e / (1.0 + e))


def coalesce_rows(rows: np.ndarray, grads: np.ndarray,
                  ) -> tuple[np.ndarray, np.ndarray]:
    """Sum duplicate row gradients: ``(rows, grads) -> (unique_rows, summed)``.

    The segment-sum formulation — stable sort, then ``np.add.reduceat`` over
    run starts — replaces the ``np.unique`` + ``np.add.at`` scatter, which is
    10–100× slower on duplicate-heavy index arrays because ``np.add.at``
    dispatches per element.  Rows come back sorted ascending; inputs that are
    already strictly increasing are returned as-is (no copy).
    """
    rows = np.asarray(rows, dtype=np.int64)
    grads = np.asarray(grads)
    if rows.size <= 1:
        return rows, grads
    deltas = np.diff(rows)
    if np.all(deltas > 0):          # sorted and duplicate-free already
        return rows, grads
    order = np.argsort(rows, kind="stable")
    rows = rows[order]
    grads = grads[order]
    starts = np.flatnonzero(np.concatenate(([True], rows[1:] != rows[:-1])))
    if starts.size == rows.size:    # unique after sorting: nothing to sum
        return rows, grads
    return rows[starts], np.add.reduceat(grads, starts, axis=0)


class no_grad:
    """Context manager that disables graph construction (inference mode)."""

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return _GRAD_ENABLED


class inference_mode:
    """:class:`no_grad` plus permission to skip Tensor allocation entirely.

    ``no_grad`` stops graph construction but every op still wraps its result
    in a fresh :class:`Tensor` and captures a backward closure's worth of
    locals.  Inside ``inference_mode`` modules that provide a raw-array fast
    path (``forward_arrays`` on the encoder stack) detect the flag via
    :func:`is_inference` and run on plain ``np.ndarray``s — same arithmetic,
    zero wrapper allocation.  Serving-side forwards (proxy ``infer_fn``,
    look-alike expansion) live in this context.
    """

    def __enter__(self) -> "inference_mode":
        global _GRAD_ENABLED, _INFERENCE_MODE
        self._prev = (_GRAD_ENABLED, _INFERENCE_MODE)
        _GRAD_ENABLED = False
        _INFERENCE_MODE = True
        return self

    def __exit__(self, *exc) -> None:
        global _GRAD_ENABLED, _INFERENCE_MODE
        _GRAD_ENABLED, _INFERENCE_MODE = self._prev


def is_inference() -> bool:
    """Return whether the raw-array inference fast path is requested."""
    return _INFERENCE_MODE


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing broadcast dimensions."""
    if grad.shape == shape:
        return grad
    # Sum away leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy array plus the autograd bookkeeping to differentiate through it.

    Parameters
    ----------
    data:
        Anything convertible to ``np.ndarray`` (stored as float64 unless the
        input already has a floating dtype).
    requires_grad:
        Whether gradients should flow to this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data, requires_grad: bool = False, name: str | None = None) -> None:
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data)
        if not np.issubdtype(arr.dtype, np.floating):
            arr = arr.astype(np.float64)
        self.data: np.ndarray = arr
        self.grad: np.ndarray | None = None
        self.requires_grad: bool = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # -- construction helpers -------------------------------------------------

    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        """Build a non-leaf tensor, recording the graph only when needed."""
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    # -- basic introspection ---------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_tag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_tag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    # -- gradient machinery ----------------------------------------------------

    def _accumulate(self, grad: np.ndarray) -> None:
        # Gradients are never mutated in place anywhere in the engine, so
        # storing the incoming array directly is safe; accumulation allocates.
        if self.grad is None:
            self.grad = grad
        else:
            self.grad = self.grad + grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to 1 for scalar outputs; non-scalar outputs require
        an explicit seed gradient of matching shape.
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() on a non-scalar tensor requires an explicit gradient")
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.data.shape:
                raise ValueError(f"seed gradient shape {grad.shape} != tensor shape {self.data.shape}")

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
                # Free intermediate gradients and graph references eagerly:
                # leaves (parameters / inputs) keep their grads.
                node._backward = None
                node._parents = ()
                node.grad = None if node is not self else node.grad

    def zero_grad(self) -> None:
        self.grad = None

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(-grad * self.data / (other.data ** 2), other.shape))

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log instead")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)
        a, b = self.data, other.data
        if a.ndim > 2 or b.ndim > 2:
            raise ValueError("matmul supports 1-D and 2-D operands only")
        out_data = a @ b

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if a.ndim == 1 and b.ndim == 1:      # dot -> scalar
                    ga = grad * b
                elif a.ndim == 1:                     # vector @ matrix -> vector
                    ga = grad @ b.T
                elif b.ndim == 1:                     # matrix @ vector -> vector
                    ga = np.outer(grad, b)
                else:                                 # matrix @ matrix
                    ga = grad @ b.T
                self._accumulate(ga)
            if other.requires_grad:
                if a.ndim == 1 and b.ndim == 1:
                    gb = grad * a
                elif a.ndim == 1:
                    gb = np.outer(a, grad)
                elif b.ndim == 1:
                    gb = a.T @ grad
                else:
                    gb = a.T @ grad
                other._accumulate(gb)

        return Tensor._make(out_data, (self, other), backward)

    # -- shape ops ---------------------------------------------------------

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        in_shape = self.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(in_shape))

        return Tensor._make(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        out_data = self.data.T

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.T)

        return Tensor._make(out_data, (self,), backward)

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]

        def backward(grad: np.ndarray) -> None:
            if isinstance(self, Parameter) and not self.sparse \
                    and isinstance(key, np.ndarray) \
                    and np.issubdtype(key.dtype, np.integer) and key.ndim == 1:
                self.scatter_add_grad(key, grad)
                return
            full = np.zeros_like(self.data)
            np.add.at(full, key, grad)
            self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    # -- reductions ----------------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # -- elementwise nonlinearities -------------------------------------------

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data ** 2))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = stable_sigmoid(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)


class Parameter(Tensor):
    """A trainable leaf tensor.

    Parameters declared with ``sparse=True`` participate in row-gather
    operations (:func:`repro.nn.functional.rows`, ``embedding_bag``,
    ``sparse_logits``) by recording ``(rows, grad_rows)`` pairs in
    :attr:`sparse_grad_parts` instead of a dense gradient.  Optimizers in
    :mod:`repro.nn.optim` consume those parts with per-row updates, which is
    what makes training cost independent of the vocabulary size.
    """

    __slots__ = ("sparse", "sparse_grad_parts", "_grad_buffer")

    def __init__(self, data, name: str | None = None, sparse: bool = False) -> None:
        super().__init__(data, requires_grad=True, name=name)
        self.sparse = bool(sparse)
        self.sparse_grad_parts: list[tuple[np.ndarray, np.ndarray]] = []
        self._grad_buffer: np.ndarray | None = None

    def add_sparse_grad(self, rows: np.ndarray, grad_rows: np.ndarray,
                        assume_unique: bool = False) -> None:
        """Record a row-sparse gradient contribution ``dL/dW[rows] += grad_rows``.

        Duplicate rows within the part are coalesced here (sort + segment
        sum), so the optimizer's sparse step — and gradient clipping's norm —
        see each touched row exactly once per part.

        ``assume_unique=True`` is a caller promise that ``rows`` are already
        duplicate-free (e.g. a candidate feature set), letting the part be
        recorded as-is: row-wise optimizer updates are independent, so only
        the row → gradient pairing matters, not row order, and the sort +
        segment sum here would be pure overhead.
        """
        if assume_unique:
            self.sparse_grad_parts.append((rows, grad_rows))
        else:
            self.sparse_grad_parts.append(coalesce_rows(rows, grad_rows))

    @property
    def grad_buffer(self) -> np.ndarray:
        """Reusable zeroed dense-gradient workspace matching ``self.data``.

        Steady-state training reuses one buffer per parameter instead of
        allocating ``np.zeros_like(data)`` every backward pass; the buffer is
        recreated only when the parameter grows (dynamic hash tables).  Each
        access re-zeroes the buffer, so callers get scratch space ready for
        scatter-accumulation.
        """
        buf = self._grad_buffer
        if buf is None or buf.shape != self.data.shape \
                or buf.dtype != self.data.dtype:
            buf = np.zeros_like(self.data)
            self._grad_buffer = buf
        else:
            buf[...] = 0.0
        return buf

    def scatter_add_grad(self, index: np.ndarray, grad_rows: np.ndarray,
                         assume_unique: bool = False) -> None:
        """Accumulate a gather-op gradient ``dL/dW[index] += grad_rows``.

        Sparse parameters record a coalesced sparse part; dense parameters
        scatter into the reusable :attr:`grad_buffer` workspace (duplicate
        indices pre-summed by :func:`coalesce_rows`, so the scatter is a
        plain vectorised fancy-index add rather than ``np.add.at``).
        ``assume_unique`` as in :meth:`add_sparse_grad`.
        """
        if self.sparse:
            self.add_sparse_grad(index, grad_rows, assume_unique=assume_unique)
            return
        if assume_unique:
            rows, grads = index, grad_rows
        else:
            rows, grads = coalesce_rows(index, grad_rows)
        if self.grad is None:
            buf = self.grad_buffer
            buf[rows] += grads
            self.grad = buf
        elif self.grad is self._grad_buffer:
            # The workspace already holds this parameter's gradient: scatter
            # in place (nothing else can reference the buffer).
            self.grad[rows] += grads
        else:
            # Rare: a dense op already accumulated a foreign array; keep the
            # never-mutate-shared-grads invariant by adding a fresh scatter.
            full = np.zeros_like(self.data)
            full[rows] += grads
            self._accumulate(full)

    def zero_grad(self) -> None:
        self.grad = None
        self.sparse_grad_parts = []

    def densify_grad(self) -> np.ndarray:
        """Materialise the full gradient (dense part + sparse parts).

        Used by gradient checks and by dense optimizers applied to sparse
        parameters; training loops should prefer the sparse path.
        """
        full = np.zeros_like(self.data) if self.grad is None else self.grad.copy()
        for rows, grad_rows in self.sparse_grad_parts:
            np.add.at(full, rows, grad_rows)
        return full

    def __repr__(self) -> str:
        tag = f" '{self.name}'" if self.name else ""
        sparse = ", sparse" if self.sparse else ""
        return f"Parameter{tag}(shape={self.shape}{sparse})"


def as_tensor(value) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no copy when already one)."""
    return value if isinstance(value, Tensor) else Tensor(value)
