"""Reverse-mode automatic differentiation on NumPy arrays.

This module is the numerical substrate for every model in the library.  The
original paper implements the FVAE on TensorFlow; no deep-learning framework
is available in this environment, so we provide a compact but complete
autograd engine:

* :class:`Tensor` wraps a ``numpy.ndarray`` and records the operations that
  produced it in a dynamic computation graph.
* :meth:`Tensor.backward` walks the graph in reverse topological order and
  accumulates gradients.
* :class:`Parameter` marks trainable leaves.  A parameter may be declared
  *row-sparse* (``sparse=True``), in which case gather-style operations record
  ``(rows, grad_rows)`` pairs instead of materialising a dense gradient.  This
  is the mechanism behind the paper's dynamic-hash-table embeddings and
  batched softmax: the cost of one optimizer step is proportional to the
  number of *touched* rows rather than the full feature vocabulary.

Every differentiable operation is expressed as an *op kernel*: a pair of
static methods ``forward(ws, args, *parent_arrays)`` / ``backward(grad,
parents, saved, args)`` on a small op class.  The dynamic path wraps a kernel
call in one closure per op; the static-graph capture layer
(:mod:`repro.nn.graph`) records the kernel sequence once and replays it with
preallocated workspaces.  Because both paths run the *same* kernel code, they
are bit-identical by construction.  ``ws`` is ``None`` on the dynamic path
(fresh allocations) or a tape node exposing ``out_view``/``buf`` workspace
views on the replay path.

Only the operations needed by the models in this repository are implemented,
but each supports full NumPy broadcasting and is exercised by finite-difference
gradient checks in the test suite.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "Parameter", "no_grad", "is_grad_enabled", "as_tensor",
           "inference_mode", "is_inference",
           "stable_sigmoid", "coalesce_rows", "GraphError"]


_GRAD_ENABLED = True
_INFERENCE_MODE = False

#: Active capture tape (or ``None``).  Set exclusively by
#: :mod:`repro.nn.graph` while tracing or replaying a captured step; every op
#: dispatch consults it.  Kept here (not in graph.py) so the hot-path check is
#: a plain module-global load with no cross-module indirection.
_ACTIVE_TAPE = None


class GraphError(RuntimeError):
    """Raised when static-graph capture cannot represent an operation."""


def stable_sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid of a raw array.

    Computed from a single ``exp(-|x|)`` temporary: for ``x >= 0`` this is
    ``1 / (1 + e^-x)``, for ``x < 0`` it is ``e^x / (1 + e^x)`` — both branches
    share the same exponential, so no overflow and no boolean-mask fancy
    indexing.  Dtype-preserving: the Python scalar constants do not upcast
    float32 inputs under NEP 50.  Shared by :meth:`Tensor.sigmoid` and
    :func:`repro.nn.functional.softplus`'s backward pass.
    """
    x = np.asarray(x)
    e = np.exp(-np.abs(x))
    return np.where(x >= 0, 1.0 / (1.0 + e), e / (1.0 + e))


def coalesce_rows(rows: np.ndarray, grads: np.ndarray,
                  ) -> tuple[np.ndarray, np.ndarray]:
    """Sum duplicate row gradients: ``(rows, grads) -> (unique_rows, summed)``.

    The segment-sum formulation — stable sort, then ``np.add.reduceat`` over
    run starts — replaces the ``np.unique`` + ``np.add.at`` scatter, which is
    10–100× slower on duplicate-heavy index arrays because ``np.add.at``
    dispatches per element.  Rows come back sorted ascending; inputs that are
    already strictly increasing are returned as-is (no copy).
    """
    rows = np.asarray(rows, dtype=np.int64)
    grads = np.asarray(grads)
    if rows.size <= 1:
        return rows, grads
    deltas = np.diff(rows)
    if np.all(deltas > 0):          # sorted and duplicate-free already
        return rows, grads
    order = np.argsort(rows, kind="stable")
    rows = rows[order]
    grads = grads[order]
    starts = np.flatnonzero(np.concatenate(([True], rows[1:] != rows[:-1])))
    if starts.size == rows.size:    # unique after sorting: nothing to sum
        return rows, grads
    return rows[starts], np.add.reduceat(grads, starts, axis=0)


class no_grad:
    """Context manager that disables graph construction (inference mode)."""

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return _GRAD_ENABLED


class inference_mode:
    """:class:`no_grad` plus permission to skip Tensor allocation entirely.

    ``no_grad`` stops graph construction but every op still wraps its result
    in a fresh :class:`Tensor` and captures a backward closure's worth of
    locals.  Inside ``inference_mode`` modules that provide a raw-array fast
    path (``forward_arrays`` on the encoder stack) detect the flag via
    :func:`is_inference` and run on plain ``np.ndarray``s — same arithmetic,
    zero wrapper allocation.  Serving-side forwards (proxy ``infer_fn``,
    look-alike expansion) live in this context.

    Entering inference mode *inside a captured region* (while a trace or
    replay tape is active) raises: the raw-array fast path would bypass op
    dispatch entirely, silently desynchronising the tape cursor.
    """

    def __enter__(self) -> "inference_mode":
        if _ACTIVE_TAPE is not None:
            raise GraphError(
                "inference_mode cannot be entered inside a captured "
                "(trace/replay) region: the raw-array fast path bypasses op "
                "dispatch and would desynchronise the tape")
        global _GRAD_ENABLED, _INFERENCE_MODE
        self._prev = (_GRAD_ENABLED, _INFERENCE_MODE)
        _GRAD_ENABLED = False
        _INFERENCE_MODE = True
        return self

    def __exit__(self, *exc) -> None:
        global _GRAD_ENABLED, _INFERENCE_MODE
        _GRAD_ENABLED, _INFERENCE_MODE = self._prev


def is_inference() -> bool:
    """Return whether the raw-array inference fast path is requested."""
    return _INFERENCE_MODE


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing broadcast dimensions."""
    if grad.shape == shape:
        return grad
    # Sum away leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


# -- workspace helpers shared by every op kernel ------------------------------

def _out(ws, shape: tuple[int, ...], dtype) -> np.ndarray:
    """The op's output buffer: fresh on the dynamic path, arena view on replay."""
    if ws is None:
        return np.empty(shape, dtype)
    return ws.out_view(shape, dtype)


def _buf(ws, key: str, shape: tuple[int, ...], dtype) -> np.ndarray:
    """A named scratch buffer that survives until the node's backward runs."""
    if ws is None:
        return np.empty(shape, dtype)
    return ws.buf(key, shape, dtype)


def _mm(ws, key: str, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a @ b`` into a keyed workspace when both operands are 2-D."""
    if ws is None or a.ndim != 2 or b.ndim != 2:
        return a @ b
    out = ws.buf(key, (a.shape[0], b.shape[1]), np.result_type(a, b))
    return np.matmul(a, b, out=out)


def _reduce_shape(shape: tuple[int, ...], axis, keepdims: bool,
                  ) -> tuple[int, ...]:
    """Output shape of ``sum(axis=..., keepdims=...)`` over ``shape``."""
    if axis is None:
        return tuple(1 for _ in shape) if keepdims else ()
    axes = axis if isinstance(axis, tuple) else (axis,)
    axes = {a % len(shape) for a in axes}
    if keepdims:
        return tuple(1 if i in axes else s for i, s in enumerate(shape))
    return tuple(s for i, s in enumerate(shape) if i not in axes)


def _pow_data(a: np.ndarray, e: float, out: np.ndarray) -> np.ndarray:
    """``a ** e`` into ``out``, replicating ndarray's scalar-power fast paths
    (square / sqrt / reciprocal / copy) so results stay bit-identical to the
    allocating ``a ** e`` expression."""
    if e == 2.0:
        return np.square(a, out=out)
    if e == 0.5:
        return np.sqrt(a, out=out)
    if e == -1.0:
        return np.reciprocal(a, out=out)
    if e == 1.0:
        return np.positive(a, out=out)
    return np.power(a, e, out=out)


# -- op kernels ---------------------------------------------------------------
#
# Each op is a namespace class with two static methods:
#
#   forward(ws, args, *parent_arrays) -> (out_data, saved)
#       ``ws`` is None (dynamic: allocate fresh) or a tape node (replay: write
#       into reused workspace views).  ``saved`` carries forward-pass values
#       the backward needs (activation outputs, masks, gathered rows).
#   backward(grad, parents, saved, args) -> None
#       Accumulates into ``parents[i].grad`` / sparse parts.  Reads parent
#       data *live* (``parents[i].data``), so dynamic-hash-table growth
#       between steps is transparent to a replayed tape.
#
# The dynamic path binds one closure per op call around these kernels; the
# capture layer stores (op, parents, args) once and calls the statics.

class OpAdd:
    name = "add"

    @staticmethod
    def forward(ws, args, a, b):
        out = _out(ws, np.broadcast_shapes(a.shape, b.shape),
                   np.result_type(a, b))
        np.add(a, b, out=out)
        return out, None

    @staticmethod
    def backward(grad, parents, saved, args):
        p0, p1 = parents
        if p0.requires_grad:
            p0._accumulate(_unbroadcast(grad, p0.data.shape))
        if p1.requires_grad:
            p1._accumulate(_unbroadcast(grad, p1.data.shape))


class OpNeg:
    name = "neg"

    @staticmethod
    def forward(ws, args, a):
        out = _out(ws, a.shape, a.dtype)
        np.negative(a, out=out)
        return out, None

    @staticmethod
    def backward(grad, parents, saved, args):
        parents[0]._accumulate(-grad)


class OpMul:
    name = "mul"

    @staticmethod
    def forward(ws, args, a, b):
        out = _out(ws, np.broadcast_shapes(a.shape, b.shape),
                   np.result_type(a, b))
        np.multiply(a, b, out=out)
        return out, None

    @staticmethod
    def backward(grad, parents, saved, args):
        p0, p1 = parents
        if p0.requires_grad:
            p0._accumulate(_unbroadcast(grad * p1.data, p0.data.shape))
        if p1.requires_grad:
            p1._accumulate(_unbroadcast(grad * p0.data, p1.data.shape))


class OpDiv:
    name = "div"

    @staticmethod
    def forward(ws, args, a, b):
        out = _out(ws, np.broadcast_shapes(a.shape, b.shape),
                   np.result_type(a, b))
        np.divide(a, b, out=out)
        return out, None

    @staticmethod
    def backward(grad, parents, saved, args):
        p0, p1 = parents
        if p0.requires_grad:
            p0._accumulate(_unbroadcast(grad / p1.data, p0.data.shape))
        if p1.requires_grad:
            p1._accumulate(_unbroadcast(-grad * p0.data / (p1.data ** 2),
                                        p1.data.shape))


class OpPow:
    name = "pow"

    @staticmethod
    def forward(ws, args, a):
        if ws is None:
            return a ** args, None
        out = _out(ws, a.shape, a.dtype)
        _pow_data(a, args, out)
        return out, None

    @staticmethod
    def backward(grad, parents, saved, args):
        p = parents[0]
        p._accumulate(grad * args * p.data ** (args - 1))


class OpMatmul:
    name = "matmul"

    @staticmethod
    def forward(ws, args, a, b):
        if ws is not None and a.ndim == 2 and b.ndim == 2:
            out = _out(ws, (a.shape[0], b.shape[1]), np.result_type(a, b))
            np.matmul(a, b, out=out)
            return out, ws
        return a @ b, ws

    @staticmethod
    def backward(grad, parents, saved, args):
        p0, p1 = parents
        a, b = p0.data, p1.data
        ws = saved                              # tape node or None
        if p0.requires_grad:
            if a.ndim == 1 and b.ndim == 1:      # dot -> scalar
                ga = grad * b
            elif a.ndim == 1:                     # vector @ matrix -> vector
                ga = grad @ b.T
            elif b.ndim == 1:                     # matrix @ vector -> vector
                ga = np.outer(grad, b)
            else:                                 # matrix @ matrix
                ga = _mm(ws, "ga", grad, b.T)
            p0._accumulate(ga)
        if p1.requires_grad:
            if a.ndim == 1 and b.ndim == 1:
                gb = grad * a
            elif a.ndim == 1:
                gb = np.outer(a, grad)
            elif b.ndim == 1:
                gb = a.T @ grad
            else:
                gb = _mm(ws, "gb", a.T, grad)
            p1._accumulate(gb)


class OpReshape:
    name = "reshape"

    @staticmethod
    def forward(ws, args, a):
        return a.reshape(args), None            # view: no workspace needed

    @staticmethod
    def backward(grad, parents, saved, args):
        p = parents[0]
        p._accumulate(grad.reshape(p.data.shape))


class OpTranspose:
    name = "T"

    @staticmethod
    def forward(ws, args, a):
        return a.T, None                        # view: no workspace needed

    @staticmethod
    def backward(grad, parents, saved, args):
        parents[0]._accumulate(grad.T)


class OpGetitem:
    name = "getitem"

    @staticmethod
    def forward(ws, args, a):
        return a[args], None

    @staticmethod
    def backward(grad, parents, saved, args):
        p = parents[0]
        key = args
        if isinstance(p, Parameter) and not p.sparse \
                and isinstance(key, np.ndarray) \
                and np.issubdtype(key.dtype, np.integer) and key.ndim == 1:
            p.scatter_add_grad(key, grad)
            return
        full = np.zeros_like(p.data)
        np.add.at(full, key, grad)
        p._accumulate(full)


class OpSum:
    name = "sum"

    @staticmethod
    def forward(ws, args, a):
        axis, keepdims = args
        if ws is None:
            return a.sum(axis=axis, keepdims=keepdims), None
        out = _out(ws, _reduce_shape(a.shape, axis, keepdims), a.dtype)
        np.sum(a, axis=axis, out=out, keepdims=keepdims)
        return out, None

    @staticmethod
    def backward(grad, parents, saved, args):
        axis, keepdims = args
        p = parents[0]
        g = grad
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis)
        p._accumulate(np.broadcast_to(g, p.data.shape).copy())


class OpExp:
    name = "exp"

    @staticmethod
    def forward(ws, args, a):
        out = _out(ws, a.shape, a.dtype)
        np.exp(a, out=out)
        return out, out

    @staticmethod
    def backward(grad, parents, saved, args):
        parents[0]._accumulate(grad * saved)


class OpLog:
    name = "log"

    @staticmethod
    def forward(ws, args, a):
        out = _out(ws, a.shape, a.dtype)
        np.log(a, out=out)
        return out, None

    @staticmethod
    def backward(grad, parents, saved, args):
        p = parents[0]
        p._accumulate(grad / p.data)


class OpTanh:
    name = "tanh"

    @staticmethod
    def forward(ws, args, a):
        out = _out(ws, a.shape, a.dtype)
        np.tanh(a, out=out)
        return out, out

    @staticmethod
    def backward(grad, parents, saved, args):
        parents[0]._accumulate(grad * (1.0 - saved ** 2))


class OpSigmoid:
    name = "sigmoid"

    @staticmethod
    def forward(ws, args, a):
        out = stable_sigmoid(a)                 # np.where output: fresh array
        return out, out

    @staticmethod
    def backward(grad, parents, saved, args):
        parents[0]._accumulate(grad * saved * (1.0 - saved))


class OpRelu:
    name = "relu"

    @staticmethod
    def forward(ws, args, a):
        if ws is None:
            mask = a > 0
            return a * mask, mask
        mask = _buf(ws, "mask", a.shape, np.bool_)
        np.greater(a, 0, out=mask)
        out = _out(ws, a.shape, a.dtype)
        np.multiply(a, mask, out=out)
        return out, mask

    @staticmethod
    def backward(grad, parents, saved, args):
        parents[0]._accumulate(grad * saved)


# -- dispatch -----------------------------------------------------------------

def _op_closure(op, parents, saved, args) -> Callable[[np.ndarray], None]:
    def backward(grad: np.ndarray) -> None:
        op.backward(grad, parents, saved, args)
    return backward


def _dispatch(op, parents: tuple, args, *pdata) -> "Tensor":
    """Run an op kernel: dynamically, or through the active capture tape.

    ``parents`` are the input Tensors, ``args`` the op's non-tensor arguments
    (index arrays, axes, exponents...), ``pdata`` the parents' arrays.  On the
    dynamic path this builds exactly one closure; while a tape is active the
    call is recorded (trace) or matched against the tape cursor and executed
    into preallocated workspaces (replay) — see :mod:`repro.nn.graph`.
    """
    tape = _ACTIVE_TAPE
    if tape is not None:
        return tape.dispatch(op, parents, args, pdata)
    out_data, saved = op.forward(None, args, *pdata)
    requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
    out = Tensor(out_data, requires_grad=requires)
    if requires:
        out._parents = parents
        out._backward = _op_closure(op, parents, saved, args)
    return out


def _topo_order(root: "Tensor") -> list["Tensor"]:
    """Iterative DFS topological order of the graph below ``root``."""
    topo: list[Tensor] = []
    visited: set[int] = set()
    stack: list[tuple[Tensor, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            topo.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent in node._parents:
            if parent.requires_grad and id(parent) not in visited:
                stack.append((parent, False))
    return topo


class Tensor:
    """A NumPy array plus the autograd bookkeeping to differentiate through it.

    Parameters
    ----------
    data:
        Anything convertible to ``np.ndarray`` (stored as float64 unless the
        input already has a floating dtype).
    requires_grad:
        Whether gradients should flow to this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    # Make ``ndarray <op> Tensor`` defer to our reflected operators instead
    # of numpy's sequence-iteration fallback, which would silently build an
    # object array of per-element getitem ops (wrong dtype, O(numel) graph
    # nodes, and an op sequence the static tape cannot replay).
    __array_priority__ = 100

    def __init__(self, data, requires_grad: bool = False, name: str | None = None) -> None:
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data)
        if not np.issubdtype(arr.dtype, np.floating):
            arr = arr.astype(np.float64)
        self.data: np.ndarray = arr
        self.grad: np.ndarray | None = None
        self.requires_grad: bool = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # -- construction helpers -------------------------------------------------

    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        """Build a non-leaf tensor from an ad-hoc closure (legacy/test hook).

        Library ops go through :func:`_dispatch` with static kernels; this
        remains for tests that monkeypatch ops with handwritten closures.
        Such ops carry no replayable kernel, so they refuse to run while a
        capture tape is active rather than silently desynchronising it.
        """
        if _ACTIVE_TAPE is not None:
            raise GraphError(
                "Tensor._make closures cannot be captured; define a static "
                "op kernel and dispatch it instead")
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    # -- basic introspection ---------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_tag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_tag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    # -- gradient machinery ----------------------------------------------------

    def _accumulate(self, grad: np.ndarray) -> None:
        # Gradients are never mutated in place anywhere in the engine, so
        # storing the incoming array directly is safe; accumulation allocates.
        if self.grad is None:
            self.grad = grad
        else:
            self.grad = self.grad + grad

    def backward(self, grad: np.ndarray | None = None,
                 order_out: list | None = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to 1 for scalar outputs; non-scalar outputs require
        an explicit seed gradient of matching shape.  ``order_out``, when
        given, collects every tensor whose backward actually ran, in
        processing order — the capture tape records this once at trace time
        and replays it without re-deriving the topological sort.
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() on a non-scalar tensor requires an explicit gradient")
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.data.shape:
                raise ValueError(f"seed gradient shape {grad.shape} != tensor shape {self.data.shape}")

        topo = _topo_order(self)

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
                if order_out is not None:
                    order_out.append(node)
                # Free intermediate gradients and graph references eagerly:
                # leaves (parameters / inputs) keep their grads.
                node._backward = None
                node._parents = ()
                node.grad = None if node is not self else node.grad

    def zero_grad(self) -> None:
        self.grad = None

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other) -> "Tensor":
        other = as_tensor(other, like=self.data.dtype)
        return _dispatch(OpAdd, (self, other), None, self.data, other.data)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        return _dispatch(OpNeg, (self,), None, self.data)

    def __sub__(self, other) -> "Tensor":
        return self + (-as_tensor(other, like=self.data.dtype))

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other, like=self.data.dtype) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other, like=self.data.dtype)
        return _dispatch(OpMul, (self, other), None, self.data, other.data)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other, like=self.data.dtype)
        return _dispatch(OpDiv, (self, other), None, self.data, other.data)

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other, like=self.data.dtype) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log instead")
        return _dispatch(OpPow, (self,), exponent, self.data)

    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)
        if self.data.ndim > 2 or other.data.ndim > 2:
            raise ValueError("matmul supports 1-D and 2-D operands only")
        return _dispatch(OpMatmul, (self, other), None, self.data, other.data)

    # -- shape ops ---------------------------------------------------------

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return _dispatch(OpReshape, (self,), shape, self.data)

    @property
    def T(self) -> "Tensor":
        return _dispatch(OpTranspose, (self,), None, self.data)

    def __getitem__(self, key) -> "Tensor":
        return _dispatch(OpGetitem, (self,), key, self.data)

    # -- reductions ----------------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        return _dispatch(OpSum, (self,), (axis, keepdims), self.data)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # -- elementwise nonlinearities -------------------------------------------

    def exp(self) -> "Tensor":
        return _dispatch(OpExp, (self,), None, self.data)

    def log(self) -> "Tensor":
        return _dispatch(OpLog, (self,), None, self.data)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def tanh(self) -> "Tensor":
        return _dispatch(OpTanh, (self,), None, self.data)

    def sigmoid(self) -> "Tensor":
        return _dispatch(OpSigmoid, (self,), None, self.data)

    def relu(self) -> "Tensor":
        return _dispatch(OpRelu, (self,), None, self.data)


class Parameter(Tensor):
    """A trainable leaf tensor.

    Parameters declared with ``sparse=True`` participate in row-gather
    operations (:func:`repro.nn.functional.rows`, ``embedding_bag``,
    ``sparse_logits``) by recording ``(rows, grad_rows)`` pairs in
    :attr:`sparse_grad_parts` instead of a dense gradient.  Optimizers in
    :mod:`repro.nn.optim` consume those parts with per-row updates, which is
    what makes training cost independent of the vocabulary size.
    """

    __slots__ = ("sparse", "sparse_grad_parts", "_grad_buffer")

    def __init__(self, data, name: str | None = None, sparse: bool = False) -> None:
        super().__init__(data, requires_grad=True, name=name)
        self.sparse = bool(sparse)
        self.sparse_grad_parts: list[tuple[np.ndarray, np.ndarray]] = []
        self._grad_buffer: np.ndarray | None = None

    def add_sparse_grad(self, rows: np.ndarray, grad_rows: np.ndarray,
                        assume_unique: bool = False) -> None:
        """Record a row-sparse gradient contribution ``dL/dW[rows] += grad_rows``.

        Duplicate rows within the part are coalesced here (sort + segment
        sum), so the optimizer's sparse step — and gradient clipping's norm —
        see each touched row exactly once per part.

        ``assume_unique=True`` is a caller promise that ``rows`` are already
        duplicate-free (e.g. a candidate feature set), letting the part be
        recorded as-is: row-wise optimizer updates are independent, so only
        the row → gradient pairing matters, not row order, and the sort +
        segment sum here would be pure overhead.
        """
        if assume_unique:
            self.sparse_grad_parts.append((rows, grad_rows))
        else:
            self.sparse_grad_parts.append(coalesce_rows(rows, grad_rows))

    @property
    def grad_buffer(self) -> np.ndarray:
        """Reusable zeroed dense-gradient workspace matching ``self.data``.

        Steady-state training reuses one buffer per parameter instead of
        allocating ``np.zeros_like(data)`` every backward pass; the buffer is
        recreated only when the parameter grows (dynamic hash tables).  Each
        access re-zeroes the buffer, so callers get scratch space ready for
        scatter-accumulation.
        """
        buf = self._grad_buffer
        if buf is None or buf.shape != self.data.shape \
                or buf.dtype != self.data.dtype:
            buf = np.zeros_like(self.data)
            self._grad_buffer = buf
        else:
            buf[...] = 0.0
        return buf

    def scatter_add_grad(self, index: np.ndarray, grad_rows: np.ndarray,
                         assume_unique: bool = False) -> None:
        """Accumulate a gather-op gradient ``dL/dW[index] += grad_rows``.

        Sparse parameters record a coalesced sparse part; dense parameters
        scatter into the reusable :attr:`grad_buffer` workspace (duplicate
        indices pre-summed by :func:`coalesce_rows`, so the scatter is a
        plain vectorised fancy-index add rather than ``np.add.at``).
        ``assume_unique`` as in :meth:`add_sparse_grad`.
        """
        if self.sparse:
            self.add_sparse_grad(index, grad_rows, assume_unique=assume_unique)
            return
        if assume_unique:
            rows, grads = index, grad_rows
        else:
            rows, grads = coalesce_rows(index, grad_rows)
        if self.grad is None:
            buf = self.grad_buffer
            buf[rows] += grads
            self.grad = buf
        elif self.grad is self._grad_buffer:
            # The workspace already holds this parameter's gradient: scatter
            # in place (nothing else can reference the buffer).
            self.grad[rows] += grads
        else:
            # Rare: a dense op already accumulated a foreign array; keep the
            # never-mutate-shared-grads invariant by adding a fresh scatter.
            full = np.zeros_like(self.data)
            full[rows] += grads
            self._accumulate(full)

    def zero_grad(self) -> None:
        self.grad = None
        self.sparse_grad_parts = []

    def densify_grad(self) -> np.ndarray:
        """Materialise the full gradient (dense part + sparse parts).

        Used by gradient checks and by dense optimizers applied to sparse
        parameters; training loops should prefer the sparse path.
        """
        full = np.zeros_like(self.data) if self.grad is None else self.grad.copy()
        for rows, grad_rows in self.sparse_grad_parts:
            np.add.at(full, rows, grad_rows)
        return full

    def __repr__(self) -> str:
        tag = f" '{self.name}'" if self.name else ""
        sparse = ", sparse" if self.sparse else ""
        return f"Parameter{tag}(shape={self.shape}{sparse})"


def as_tensor(value, like=None) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no copy when already one).

    ``like`` is a dtype hint honoured only by *dtype-free* operands — Python
    scalars and integer arrays adopt it instead of the float64 default, so
    float32 tensors survive arithmetic with literal constants without
    upcasting.  Operands that already carry a floating dtype keep it.
    """
    if isinstance(value, Tensor):
        return value
    if like is not None:
        if isinstance(value, (bool, int, float)):
            return Tensor(np.asarray(value, dtype=like))
        arr = np.asarray(value)
        if not np.issubdtype(arr.dtype, np.floating):
            return Tensor(arr.astype(like))
        return Tensor(arr)
    return Tensor(value)
