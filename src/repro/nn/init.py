"""Weight initialization schemes."""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "normal", "zeros"]


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator,
                   gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialization for ``(fan_in, fan_out)`` weights."""
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator,
                  gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier normal initialization."""
    fan_in, fan_out = _fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def normal(shape: tuple[int, ...], rng: np.random.Generator,
           std: float = 0.01) -> np.ndarray:
    """Zero-mean Gaussian initialization with fixed standard deviation."""
    return rng.normal(0.0, std, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive
