"""Minimal NumPy deep-learning substrate (autograd, layers, optimizers).

The paper builds the FVAE on TensorFlow; this package replaces that dependency
with a from-scratch reverse-mode autograd engine featuring the row-sparse
gradient path the paper's efficiency tricks require.
"""

from repro.nn import functional
from repro.nn.graph import (CapturedFunction, ReplayMismatch, StepCapturer,
                            Tape, batch_signature, capture_function)
from repro.nn.layers import (MLP, Dropout, Embedding, LayerNorm, Linear,
                             Module, Sequential)
from repro.nn.losses import gaussian_kl, gaussian_kl_to, mse, multinomial_nll
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.schedules import (ConstantLR, CosineDecay, StepDecay,
                                WarmupWrapper, clip_grad_norm)
from repro.nn.tensor import (Parameter, Tensor, as_tensor, coalesce_rows,
                             inference_mode, is_grad_enabled, is_inference,
                             no_grad, stable_sigmoid)

__all__ = [
    "functional",
    "Tensor", "Parameter", "as_tensor", "no_grad", "is_grad_enabled",
    "inference_mode", "is_inference",
    "coalesce_rows", "stable_sigmoid",
    "Module", "Linear", "MLP", "Dropout", "Sequential", "Embedding", "LayerNorm",
    "Optimizer", "SGD", "Adam",
    "ConstantLR", "StepDecay", "CosineDecay", "WarmupWrapper", "clip_grad_norm",
    "multinomial_nll", "gaussian_kl", "gaussian_kl_to", "mse",
    "Tape", "StepCapturer", "CapturedFunction", "capture_function",
    "batch_signature", "ReplayMismatch",
]
