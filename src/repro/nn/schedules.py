"""Learning-rate schedules and gradient clipping.

Schedules are callables ``step -> multiplier``; the trainer multiplies the
optimizer's base learning rate by the current value each step.  Clipping
operates on the global gradient norm, covering both dense gradients and
row-sparse parts.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.nn.tensor import Parameter

__all__ = ["ConstantLR", "StepDecay", "CosineDecay", "WarmupWrapper",
           "clip_grad_norm"]


class ConstantLR:
    """Multiplier fixed at 1 (the default behaviour)."""

    def __call__(self, step: int) -> float:
        return 1.0

    def __repr__(self) -> str:
        return "ConstantLR()"


class StepDecay:
    """Multiply by ``gamma`` every ``step_size`` steps."""

    def __init__(self, step_size: int, gamma: float = 0.5) -> None:
        if step_size <= 0:
            raise ValueError(f"step_size must be positive: {step_size}")
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1]: {gamma}")
        self.step_size = step_size
        self.gamma = gamma

    def __call__(self, step: int) -> float:
        return self.gamma ** (step // self.step_size)

    def __repr__(self) -> str:
        return f"StepDecay(step_size={self.step_size}, gamma={self.gamma})"


class CosineDecay:
    """Cosine from 1 down to ``floor`` over ``total_steps`` steps."""

    def __init__(self, total_steps: int, floor: float = 0.0) -> None:
        if total_steps <= 0:
            raise ValueError(f"total_steps must be positive: {total_steps}")
        if not 0.0 <= floor < 1.0:
            raise ValueError(f"floor must be in [0, 1): {floor}")
        self.total_steps = total_steps
        self.floor = floor

    def __call__(self, step: int) -> float:
        progress = min(step / self.total_steps, 1.0)
        return self.floor + (1.0 - self.floor) * 0.5 * (
            1.0 + math.cos(math.pi * progress))

    def __repr__(self) -> str:
        return f"CosineDecay(total_steps={self.total_steps}, floor={self.floor})"


class WarmupWrapper:
    """Linear warm-up from 0 over ``warmup_steps``, then delegate."""

    def __init__(self, schedule, warmup_steps: int) -> None:
        if warmup_steps < 0:
            raise ValueError(f"warmup_steps must be non-negative: {warmup_steps}")
        self.schedule = schedule
        self.warmup_steps = warmup_steps

    def __call__(self, step: int) -> float:
        if self.warmup_steps and step < self.warmup_steps:
            return (step + 1) / self.warmup_steps
        return self.schedule(step)

    def __repr__(self) -> str:
        return f"WarmupWrapper({self.schedule!r}, warmup_steps={self.warmup_steps})"


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Covers dense gradients and row-sparse parts.  Returns the pre-clip norm.
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive: {max_norm}")
    params = list(params)
    total_sq = 0.0
    for p in params:
        if p.grad is not None:
            total_sq += float((p.grad ** 2).sum())
        for __, grad_rows in p.sparse_grad_parts:
            total_sq += float((grad_rows ** 2).sum())
    norm = math.sqrt(total_sq)
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for p in params:
            if p.grad is not None:
                p.grad = p.grad * scale
            p.sparse_grad_parts = [(rows, grad_rows * scale)
                                   for rows, grad_rows in p.sparse_grad_parts]
    return norm
