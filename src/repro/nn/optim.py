"""Optimizers with dense and row-sparse update paths.

``Adam`` and ``SGD`` understand the row-sparse gradients recorded by
:func:`repro.nn.functional.rows` / ``embedding_bag`` / ``take`` on sparse
parameters: instead of materialising a full-vocabulary gradient, only the
rows touched in the current step are updated.  This is the optimizer-side
half of the paper's complexity reduction (§IV-C) — the per-step cost becomes
proportional to the number of *observed* features, not to ``J``.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.tensor import Parameter, coalesce_rows

__all__ = ["Optimizer", "SGD", "Adam"]


def _coalesce(parts: list[tuple[np.ndarray, np.ndarray]]) -> tuple[np.ndarray, np.ndarray]:
    """Merge sparse gradient parts into unique rows with summed gradients.

    Individual parts are duplicate-free by construction —
    ``Parameter.add_sparse_grad`` coalesces on entry unless the caller
    promised uniqueness — so a single part is consumed as-is (rows may be
    unsorted, which the row-wise optimizer updates don't care about) and
    only multi-part gradients need the cross-part coalesce.
    """
    if len(parts) == 1:
        return parts[0]
    rows = np.concatenate([r for r, __ in parts])
    grads = np.concatenate([g for __, g in parts])
    return coalesce_rows(rows, grads)


class Optimizer:
    """Base class holding the parameter list and shared bookkeeping."""

    def __init__(self, params: Iterable[Parameter]) -> None:
        self.params: list[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        for p in self.params:
            if not isinstance(p, Parameter):
                raise TypeError(f"optimizer parameters must be Parameter, got {type(p)!r}")

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- checkpoint support ----------------------------------------------------
    #
    # Optimizer state is addressed by *parameter position* (the param list is
    # fixed at construction), so checkpoints stay valid as long as the model
    # is rebuilt with the same architecture — the contract resume already
    # requires for the parameters themselves.

    def state_arrays(self) -> dict[str, np.ndarray]:
        """Internal state as flat arrays (see ``load_state_arrays``)."""
        return {}

    def load_state_arrays(self, arrays: dict[str, np.ndarray]) -> None:
        """Restore state captured by :meth:`state_arrays` (exact shapes)."""


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum.

    Momentum is only applied on the dense path; sparse parts fall back to
    plain SGD per touched row (momentum on sparse rows is ill-defined without
    decaying stale rows).
    """

    def __init__(self, params: Iterable[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(params)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive: {lr}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: dict[int, np.ndarray] = {}

    def step(self) -> None:
        for p in self.params:
            if p.sparse_grad_parts:
                rows, grads = _coalesce(p.sparse_grad_parts)
                if self.weight_decay:
                    grads = grads + self.weight_decay * p.data[rows]
                p.data[rows] -= self.lr * grads
            if p.grad is not None:
                grad = p.grad
                if self.weight_decay:
                    grad = grad + self.weight_decay * p.data
                if self.momentum:
                    vel = self._velocity.get(id(p))
                    vel = self.momentum * vel + grad if vel is not None else grad.copy()
                    self._velocity[id(p)] = vel
                    grad = vel
                p.data -= self.lr * grad

    def state_arrays(self) -> dict[str, np.ndarray]:
        out: dict[str, np.ndarray] = {}
        for i, p in enumerate(self.params):
            vel = self._velocity.get(id(p))
            if vel is not None:
                out[f"vel/{i}"] = vel.copy()
        return out

    def load_state_arrays(self, arrays: dict[str, np.ndarray]) -> None:
        self._velocity.clear()
        for i, p in enumerate(self.params):
            vel = arrays.get(f"vel/{i}")
            if vel is not None:
                self._velocity[id(p)] = np.array(vel, copy=True)


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with a lazy row-sparse path.

    For sparse gradient parts only the first/second-moment rows that were
    touched are updated (the behaviour of torch.optim.SparseAdam); bias
    correction uses the global step count.
    """

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(params)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive: {lr}")
        if not (0.0 <= betas[0] < 1.0 and 0.0 <= betas[1] < 1.0):
            raise ValueError(f"betas must be in [0, 1): {betas}")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.t = 0
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}

    def _state(self, p: Parameter) -> tuple[np.ndarray, np.ndarray]:
        key = id(p)
        if key not in self._m:
            self._m[key] = np.zeros_like(p.data)
            self._v[key] = np.zeros_like(p.data)
        m, v = self._m[key], self._v[key]
        if m.shape != p.data.shape:  # dynamic hash table grew the parameter
            grown_m = np.zeros_like(p.data)
            grown_m[tuple(slice(0, s) for s in m.shape)] = m
            grown_v = np.zeros_like(p.data)
            grown_v[tuple(slice(0, s) for s in v.shape)] = v
            self._m[key], self._v[key] = grown_m, grown_v
            m, v = grown_m, grown_v
        return m, v

    def step(self) -> None:
        self.t += 1
        bc1 = 1.0 - self.beta1 ** self.t
        bc2 = 1.0 - self.beta2 ** self.t
        step_size = self.lr * np.sqrt(bc2) / bc1
        for p in self.params:
            if p.sparse_grad_parts:
                rows, grads = _coalesce(p.sparse_grad_parts)
                if self.weight_decay:
                    grads = grads + self.weight_decay * p.data[rows]
                m, v = self._state(p)
                m_rows = m[rows]
                m_rows *= self.beta1
                m_rows += (1.0 - self.beta1) * grads
                sq = np.multiply(grads, grads)  # grads stays caller-visible
                sq *= (1.0 - self.beta2)
                v_rows = v[rows]
                v_rows *= self.beta2
                v_rows += sq
                m[rows] = m_rows
                v[rows] = v_rows
                denom = np.sqrt(v_rows, out=v_rows)
                denom += self.eps
                update = np.multiply(m_rows, step_size, out=m_rows)
                update /= denom
                p.data[rows] -= update
            if p.grad is not None:
                grad = p.grad
                if self.weight_decay:
                    grad = grad + self.weight_decay * p.data
                m, v = self._state(p)
                m *= self.beta1
                m += (1.0 - self.beta1) * grad
                v *= self.beta2
                v += (1.0 - self.beta2) * grad ** 2
                p.data -= step_size * m / (np.sqrt(v) + self.eps)

    def state_arrays(self) -> dict[str, np.ndarray]:
        out: dict[str, np.ndarray] = {"t": np.asarray(self.t, dtype=np.int64)}
        for i, p in enumerate(self.params):
            if id(p) in self._m:
                out[f"m/{i}"] = self._m[id(p)].copy()
                out[f"v/{i}"] = self._v[id(p)].copy()
        return out

    def load_state_arrays(self, arrays: dict[str, np.ndarray]) -> None:
        self.t = int(arrays.get("t", 0))
        self._m.clear()
        self._v.clear()
        for i, p in enumerate(self.params):
            m = arrays.get(f"m/{i}")
            if m is not None:
                self._m[id(p)] = np.array(m, copy=True)
                self._v[id(p)] = np.array(arrays[f"v/{i}"], copy=True)
