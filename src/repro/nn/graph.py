"""Static-graph capture: trace one training step, replay it with workspaces.

The dynamic engine in :mod:`repro.nn.tensor` rebuilds one Python closure and
several fresh NumPy buffers per op per step, and re-derives the backward
topological order on every ``backward()`` call.  None of that is necessary:
for a fixed batch signature the op *sequence* of a training step never
changes, only the data flowing through it.  This module exploits that:

* **Trace** — run one step through the normal dynamic path with a
  :class:`Tape` active.  Every op dispatch is recorded as a :class:`TapeNode`
  (op kernel, parent tensors, non-tensor args, output tensor); the backward
  pass records the exact node processing order once (``backward(order_out=)``).
* **Replay** — re-run the step's Python code with the tape in replay mode.
  Each op dispatch is matched against the tape cursor and executed through
  the *same static kernel* as the dynamic path, but writing into the node's
  preallocated workspace arena and returning the node's existing output
  Tensor (data pointer swapped in place).  Zero closures are constructed, no
  topological sort runs, and steady-state intermediate allocations drop to
  the few small temporaries the kernels still make.  Backward walks the
  recorded order calling static backward kernels — bit-identical accumulation
  order, hence bit-identical gradients.

Shapes are *not* assumed static: FVAE batch shapes are content-dependent
(candidate-set sizes, flat-index counts), so each node owns flat 1-D slabs
that grow monotonically and are viewed at the step's exact shape.  Dynamic
hash-table growth is equally transparent — kernels read ``parent.data`` live,
so a capacity-doubling rebind between steps just works.

If a replay detects *structural* divergence (a different op sequence, e.g.
feature dropout emptying a field so its branch is skipped), it raises
:class:`ReplayMismatch`; :class:`StepCapturer` then restores the model's
declared RNG streams (``capture_rng_sources()``) to their pre-attempt state
and re-runs the step dynamically — bit-identical to a never-captured run.

Correctness is enforced three ways in ``repro check``: the
``nn.graph.replay_vs_dynamic`` differential oracle (exact equality of losses
and final parameters), the full gradcheck registry run through
``capture_function`` replay, and golden-digest equality of a captured
training run against the committed dynamic digests.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

from repro.nn import tensor as _tensor
from repro.nn.tensor import GraphError, Tensor
from repro.obs import runtime as obs

__all__ = ["Tape", "TapeNode", "ReplayMismatch", "GraphError",
           "StepCapturer", "CapturedFunction", "capture_function",
           "batch_signature", "active_tape"]


class ReplayMismatch(GraphError):
    """The current step's op sequence diverged from the recorded tape."""


def active_tape() -> "Tape | None":
    """The tape currently tracing or replaying, if any."""
    return _tensor._ACTIVE_TAPE


class _activate:
    """Install ``tape`` as the engine's active tape for a ``with`` block."""

    def __init__(self, tape: "Tape | None") -> None:
        self._tape = tape

    def __enter__(self):
        self._prev = _tensor._ACTIVE_TAPE
        _tensor._ACTIVE_TAPE = self._tape
        return self._tape

    def __exit__(self, *exc) -> None:
        _tensor._ACTIVE_TAPE = self._prev


class TapeNode:
    """One recorded op: kernel, inputs, per-step args, and workspace access.

    The node itself is a thin record; workspace views are carved from the
    owning tape's per-dtype bump arena (:meth:`Tape.arena_view`), so
    step-to-step shape variation is tolerated for free — the arena offset
    resets every replay and the slabs only grow.
    """

    __slots__ = ("op", "parents", "args", "saved", "out", "requires",
                 "tape")

    def __init__(self, op, parents: list, args, out: Tensor,
                 requires: bool, tape: "Tape") -> None:
        self.op = op
        self.parents = parents
        self.args = args
        self.saved = None
        self.out = out
        self.requires = requires
        self.tape = tape

    # -- workspace protocol (the ``ws`` argument of op kernels) --------------
    #
    # Both methods carve from the owning tape's bump arena.  Per-node
    # dedicated slabs were tried first and *lost* to the dynamic path: they
    # spread the step's working set over a large, cache-cold footprint,
    # while glibc recycles the dynamic path's fresh buffers through the same
    # hot addresses.  A single bump arena reset per step keeps the footprint
    # as compact (and the addresses as stable) as malloc's free lists, with
    # zero allocator traffic.

    def out_view(self, shape: tuple[int, ...], dtype) -> np.ndarray:
        return self.tape.arena_view(shape, dtype)

    def buf(self, key: str, shape: tuple[int, ...], dtype) -> np.ndarray:
        return self.tape.arena_view(shape, dtype)


# Allocation accounting: cheap module-level tallies flushed to the obs
# registry once per step (per-op obs calls would dominate the replay win).
_ALLOC_BYTES = 0
_REUSES = 0


def _note_alloc(nbytes: int) -> None:
    global _ALLOC_BYTES
    _ALLOC_BYTES += nbytes


def _note_reuse() -> None:
    global _REUSES
    _REUSES += 1


def _flush_alloc_stats(tape: "Tape") -> None:
    global _ALLOC_BYTES, _REUSES
    if _REUSES:
        obs.count("nn.alloc.arena_reuses", _REUSES)
        _REUSES = 0
    if _ALLOC_BYTES:
        obs.count("nn.alloc.workspace_bytes", _ALLOC_BYTES)
        _ALLOC_BYTES = 0
        obs.gauge_set("nn.alloc.workspace_bytes_live", tape.workspace_bytes())


def _run_node(node: TapeNode, pdata: tuple) -> tuple:
    """Execute one replayed node's forward kernel.

    Module-level seam so tests can monkeypatch it to corrupt a workspace
    write and prove the replay-vs-dynamic oracle and captured gradcheck bite.
    """
    return node.op.forward(node, node.args, *pdata)


class Tape:
    """A recorded training step: op sequence, backward order, workspaces."""

    def __init__(self, label: str = "step") -> None:
        self.label = label
        self.nodes: list[TapeNode] = []
        self.order: list[TapeNode] = []      # backward processing order
        self.root: TapeNode | None = None
        self.index: dict[int, TapeNode] = {}  # id(out tensor) -> node
        self.replaying = False
        self.cursor = 0
        self.replays = 0
        self._arena: dict = {}      # dtype -> flat slab
        self._arena_off: dict = {}  # dtype -> bump offset (elements)

    # -- workspace arena ------------------------------------------------------

    def arena_view(self, shape: tuple[int, ...], dtype) -> np.ndarray:
        """Carve a contiguous ``shape`` view from the step's bump arena.

        One grow-only slab per dtype; the offset resets at ``begin_replay``
        so every step reuses the same compact address range.  Carves are
        64-byte aligned.  A mid-step grow leaves earlier carves valid (their
        views keep the old slab alive) and only redirects later ones.
        """
        dtype = np.dtype(dtype)
        n = math.prod(shape) if shape else 1
        slab = self._arena.get(dtype)
        off = self._arena_off.get(dtype, 0)
        align = (64 // dtype.itemsize) or 1
        off = -(-off // align) * align
        need = off + n
        if slab is None or slab.size < need:
            size = max(need, 0 if slab is None else 2 * slab.size, 1024)
            slab = np.empty(size, dtype)
            self._arena[dtype] = slab
            _note_alloc(slab.nbytes)
        else:
            _note_reuse()
        self._arena_off[dtype] = need
        return slab[off:need].reshape(shape)

    # -- recording (trace mode) ----------------------------------------------

    def dispatch(self, op, parents: Sequence[Tensor], args, pdata) -> Tensor:
        if self.replaying:
            return self._replay_op(op, parents, args)
        out_data, saved = op.forward(None, args, *pdata)
        requires = _tensor._GRAD_ENABLED and \
            any(p.requires_grad for p in parents)
        out = Tensor(out_data, requires_grad=requires)
        node = TapeNode(op, list(parents), args, out, requires, self)
        node.saved = saved
        self.nodes.append(node)
        self.index[id(out)] = node
        if requires:
            out._parents = tuple(parents)
            out._backward = _node_closure(node)
        return out

    def finalize(self, loss: Tensor, order: list[Tensor]) -> None:
        """Freeze the tape after the traced step's backward pass."""
        self.order = [self.index[id(t)] for t in order if id(t) in self.index]
        root = self.index.get(id(loss))
        if root is None:
            raise GraphError("traced loss tensor is not a recorded op output")
        self.root = root

    # -- replay ---------------------------------------------------------------

    def _replay_op(self, op, parents: Sequence[Tensor], args) -> Tensor:
        if self.cursor >= len(self.nodes):
            raise ReplayMismatch(
                f"step runs more ops than the recorded tape "
                f"({len(self.nodes)}); op {op.name} has no node")
        node = self.nodes[self.cursor]
        if node.op is not op:
            raise ReplayMismatch(
                f"op #{self.cursor}: traced {node.op.name}, got {op.name}")
        self.cursor += 1
        rec = node.parents
        if len(rec) != len(parents):
            raise ReplayMismatch(
                f"op #{self.cursor - 1} ({op.name}): arity changed")
        i = 0
        pdata = []
        for cur in parents:
            r = rec[i]
            if cur is not r:
                # Fresh leaf tensors (per-step noise, annealed scalars,
                # detached views) are rebound in place; a *different op
                # output* in this slot means real structural divergence.
                if id(r) in self.index or id(cur) in self.index \
                        or cur.requires_grad != r.requires_grad:
                    raise ReplayMismatch(
                        f"op #{self.cursor - 1} ({op.name}): parent {i} "
                        "changed structurally")
                rec[i] = cur
            pdata.append(cur.data)
            i += 1
        node.args = args
        out_data, saved = _run_node(node, pdata)
        node.saved = saved
        out = node.out
        out.data = out_data if isinstance(out_data, np.ndarray) \
            else np.asarray(out_data)
        return out

    def begin_replay(self) -> None:
        self.replaying = True
        self.cursor = 0
        for dt in self._arena_off:
            self._arena_off[dt] = 0

    def end_replay(self, complete: bool) -> None:
        self.replaying = False
        if complete and self.cursor != len(self.nodes):
            raise ReplayMismatch(
                f"step ran {self.cursor} ops but the tape recorded "
                f"{len(self.nodes)}")

    def backward(self) -> None:
        """Replay the recorded backward order with static kernels."""
        root = self.root
        if root is None:
            raise GraphError("tape was never finalized with a backward pass")
        root.out.grad = np.ones_like(root.out.data)
        for node in self.order:
            t = node.out
            grad = t.grad
            if grad is None:
                continue
            node.op.backward(grad, node.parents, node.saved, node.args)
            if node is not root:
                t.grad = None
        self.replays += 1
        _flush_alloc_stats(self)

    def workspace_bytes(self) -> int:
        return sum(slab.nbytes for slab in self._arena.values())

    def __repr__(self) -> str:
        return (f"Tape({self.label!r}, ops={len(self.nodes)}, "
                f"replays={self.replays})")


def _node_closure(node: TapeNode) -> Callable[[np.ndarray], None]:
    # Trace-time backward closure: identical arithmetic to the replayed
    # static call, so the traced step is itself bit-exact dynamic execution.
    def backward(grad: np.ndarray) -> None:
        node.op.backward(grad, node.parents, node.saved, node.args)
    return backward


# -- batch signatures ---------------------------------------------------------

def batch_signature(batch, model=None) -> tuple:
    """A hashable key identifying a batch's captured op sequence.

    Models may override via a ``capture_signature(batch)`` method; the
    generic fallback keys on the batch length and per-field presence
    (fields that are absent or empty skip their encoder/decoder branches,
    changing the op sequence), plus the model's train/eval flag.
    """
    if model is not None and hasattr(model, "capture_signature"):
        return model.capture_signature(batch)
    sig: list = []
    users = getattr(batch, "user_ids", None)
    if users is not None:
        sig.append(len(users))
    fields = getattr(batch, "fields", None)
    if fields is not None:
        sig.append(tuple(sorted(
            (name, fb.indices.size > 0) for name, fb in fields.items())))
    if model is not None:
        sig.append(bool(getattr(model, "training", True)))
    return tuple(sig)


# -- RNG snapshot for mismatch fallback ---------------------------------------

def _rng_sources(model) -> list:
    hook = getattr(model, "capture_rng_sources", None)
    return list(hook()) if hook is not None else []


def _snapshot_rngs(gens: list) -> list:
    return [g.bit_generator.state for g in gens]


def _restore_rngs(gens: list, states: list) -> None:
    for g, state in zip(gens, states):
        g.bit_generator.state = state


# -- the trainer-facing capturer ----------------------------------------------

class StepCapturer:
    """Signature-keyed cache of :class:`CapturedStep` tapes for a model.

    Usage (what ``Trainer.fit(capture=True)`` does)::

        capturer = StepCapturer(model)
        loss, diag = capturer.forward(batch, step)
        capturer.backward(loss)          # trace, replay, or dynamic fallback
        optimizer.step()                 # unchanged: grads are real either way

    The first step of each new batch signature is *traced* (a fully dynamic,
    bit-exact run that records the tape); later steps with the same signature
    *replay*.  A :class:`ReplayMismatch` mid-forward restores the model's
    declared RNG streams and re-runs the step dynamically, so a fallback step
    is indistinguishable from a never-captured one.
    """

    def __init__(self, model) -> None:
        self.model = model
        self.tapes: dict[tuple, Tape] = {}
        self.captures = 0
        self.replays = 0
        self.fallbacks = 0
        self._mode: str | None = None
        self._tape: Tape | None = None

    def forward(self, batch, step: int):
        sig = batch_signature(batch, self.model)
        tape = self.tapes.get(sig)
        if tape is None:
            return self._trace(sig, batch, step)
        snapshot = _snapshot_rngs(_rng_sources(self.model))
        tape.begin_replay()
        try:
            with _activate(tape):
                result = self.model.loss_on_batch(batch, step)
            tape.end_replay(complete=True)
        except ReplayMismatch:
            tape.end_replay(complete=False)
            return self._fallback(batch, step, snapshot)
        self._mode, self._tape = "replay", tape
        self.replays += 1
        obs.count("nn.graph.replays")
        return result

    def backward(self, loss: Tensor) -> None:
        mode, tape = self._mode, self._tape
        self._mode = self._tape = None
        if mode == "trace":
            order: list[Tensor] = []
            loss.backward(order_out=order)
            tape.finalize(loss, order)
        elif mode == "replay":
            if loss is not tape.root.out:
                raise GraphError(
                    "backward() called with a loss that is not the replayed "
                    "tape's root")
            tape.backward()
        else:
            loss.backward()

    # -- internals ------------------------------------------------------------

    def _trace(self, sig: tuple, batch, step: int):
        tape = Tape(label=f"sig={sig}")
        with _activate(tape):
            result = self.model.loss_on_batch(batch, step)
        self.tapes[sig] = tape
        self._mode, self._tape = "trace", tape
        self.captures += 1
        obs.count("nn.graph.captures")
        return result

    def _fallback(self, batch, step: int, snapshot: list):
        # Growth side effects (hash-table registrations, capacity doubling)
        # that happened before the mismatch are committed state a dynamic run
        # would have produced identically; only the declared RNG streams are
        # rewound so the dynamic re-run draws the same noise.
        _restore_rngs(_rng_sources(self.model), snapshot)
        self._mode, self._tape = "dynamic", None
        self.fallbacks += 1
        obs.count("nn.graph.fallbacks")
        obs.count("nn.alloc.dynamic_fallbacks")
        return self.model.loss_on_batch(batch, step)

    def stats(self) -> dict:
        return {"captures": self.captures, "replays": self.replays,
                "fallbacks": self.fallbacks,
                "workspace_bytes": sum(t.workspace_bytes()
                                       for t in self.tapes.values())}


# -- function capture (gradcheck / oracle harness) ----------------------------

class CapturedFunction:
    """A traced closure ``fn() -> scalar Tensor`` that can be replayed.

    :func:`capture_function` traces ``fn`` once (forward + backward, fully
    dynamic) and returns this handle; :meth:`replay` re-executes forward and
    backward entirely through the tape.  Gradcheck uses it to push every
    registered op case through the captured path.
    """

    def __init__(self, fn: Callable[[], Tensor], tape: Tape) -> None:
        self._fn = fn
        self.tape = tape

    def replay(self) -> Tensor:
        self.tape.begin_replay()
        try:
            with _activate(self.tape):
                out = self._fn()
        except BaseException:
            self.tape.end_replay(complete=False)
            raise
        self.tape.end_replay(complete=True)
        if out is not self.tape.root.out:
            raise GraphError("captured function returned a different root "
                             "tensor on replay")
        self.tape.backward()
        return out


def capture_function(fn: Callable[[], Tensor]) -> CapturedFunction:
    """Trace ``fn`` (forward + backward) once and return a replayable handle."""
    tape = Tape(label="function")
    with _activate(tape):
        out = fn()
    order: list[Tensor] = []
    out.backward(order_out=order)
    tape.finalize(out, order)
    return CapturedFunction(fn, tape)
