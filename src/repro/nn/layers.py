"""Neural-network modules built on the autograd engine.

The :class:`Module` base class provides parameter registration, recursive
traversal, train/eval modes and a simple state-dict, mirroring the familiar
PyTorch API surface the paper's models need.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.tensor import Parameter, Tensor
from repro.utils.rng import new_rng

__all__ = ["Module", "Linear", "MLP", "Dropout", "Sequential", "Embedding",
           "LayerNorm"]

_ACTIVATIONS = {
    "relu": F.relu,
    "tanh": F.tanh,
    "sigmoid": F.sigmoid,
    "identity": lambda x: x,
}


class Module:
    """Base class for all layers and models."""

    def __init__(self) -> None:
        self._parameters: dict[str, Parameter] = {}
        self._modules: dict[str, "Module"] = {}
        self.training: bool = True

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def register_module(self, name: str, module: "Module") -> None:
        """Explicitly register a child module (for modules held in lists)."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    def parameters(self) -> Iterator[Parameter]:
        """Yield all parameters of this module and its children (deduplicated)."""
        seen: set[int] = set()
        for __, param in self.named_parameters():
            if id(param) not in seen:
                seen.add(id(param))
                yield param

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def state_dict(self) -> dict[str, np.ndarray]:
        """Snapshot all parameter values (copies)."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore parameter values from :meth:`state_dict`.

        Row-sparse parameters (dynamic hash-table embeddings) may have grown
        since the snapshot; the saved prefix is restored in that case.
        """
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        if missing:
            raise KeyError(f"state dict is missing parameters: {sorted(missing)}")
        for name, value in state.items():
            if name not in params:
                continue
            param = params[name]
            if param.data.shape == value.shape:
                param.data[...] = value
            elif param.sparse and param.data.shape[1:] == value.shape[1:] \
                    and param.data.shape[0] >= value.shape[0]:
                param.data[: value.shape[0]] = value
            else:
                raise ValueError(
                    f"shape mismatch for '{name}': {param.data.shape} vs {value.shape}")

    def astype(self, dtype) -> "Module":
        """Cast every parameter to ``dtype`` in place (float32 training mode).

        Gradients and optimizer state built before the cast become stale;
        call this before constructing the optimizer, as ``Trainer`` does for
        ``precision="float32"`` runs.
        """
        dtype = np.dtype(dtype)
        for param in self.parameters():
            if param.data.dtype != dtype:
                param.data = param.data.astype(dtype)
        return self

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


class Linear(Module):
    """Affine map ``y = x W + b`` with Xavier-initialised weights."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | int | None = None) -> None:
        super().__init__()
        rng = new_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng),
                                name="weight")
        self.bias = Parameter(init.zeros((out_features,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def forward_arrays(self, x: np.ndarray) -> np.ndarray:
        """Raw-array affine map for inference mode; same op order as forward."""
        out = x @ self.weight.data
        if self.bias is not None:
            out += self.bias.data  # in-place into the fresh matmul output
        return out

    def __repr__(self) -> str:
        return f"Linear({self.in_features} -> {self.out_features})"


class Dropout(Module):
    """Inverted dropout layer (active only in training mode)."""

    def __init__(self, p: float = 0.5, rng: np.random.Generator | int | None = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1): {p}")
        self.p = p
        self._rng = new_rng(rng)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self._rng, training=self.training)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"


class Sequential(Module):
    """Run child modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._order: list[Module] = []
        for i, module in enumerate(modules):
            self.register_module(f"layer{i}", module)
            self._order.append(module)

    def forward(self, x: Tensor) -> Tensor:
        for module in self._order:
            x = module(x)
        return x

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, i: int) -> Module:
        return self._order[i]


class MLP(Module):
    """Multilayer perceptron with a configurable activation.

    ``dims = [in, h1, ..., out]``.  The activation is applied after every
    layer except the last (unless ``activate_last=True``).
    """

    def __init__(self, dims: list[int], activation: str = "tanh",
                 activate_last: bool = False,
                 rng: np.random.Generator | int | None = None) -> None:
        super().__init__()
        if len(dims) < 2:
            raise ValueError("MLP needs at least input and output dimensions")
        if activation not in _ACTIVATIONS:
            raise ValueError(f"unknown activation '{activation}'; "
                             f"choose from {sorted(_ACTIVATIONS)}")
        rng = new_rng(rng)
        self.dims = list(dims)
        self.activation = activation
        self._layers: list[Linear] = []
        for i, (d_in, d_out) in enumerate(zip(dims[:-1], dims[1:])):
            layer = Linear(d_in, d_out, rng=rng)
            self.register_module(f"fc{i}", layer)
            self._layers.append(layer)
        self.activate_last = activate_last

    def forward(self, x: Tensor) -> Tensor:
        act = _ACTIVATIONS[self.activation]
        last = len(self._layers) - 1
        for i, layer in enumerate(self._layers):
            x = layer(x)
            if i < last or self.activate_last:
                x = act(x)
        return x

    def __repr__(self) -> str:
        return f"MLP(dims={self.dims}, activation='{self.activation}')"


class LayerNorm(Module):
    """Layer normalisation over the last dimension with learned affine.

    Used by deeper encoder variants (RecVAE's original architecture stacks
    dense blocks with layer norm); provided as a substrate building block.
    """

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        if dim <= 0:
            raise ValueError(f"dim must be positive: {dim}")
        self.dim = dim
        self.eps = eps
        self.gain = Parameter(np.ones(dim), name="gain")
        self.bias = Parameter(np.zeros(dim), name="bias")

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered * (var + self.eps) ** -0.5
        return normed * self.gain + self.bias

    def __repr__(self) -> str:
        return f"LayerNorm({self.dim})"


class Embedding(Module):
    """Dense lookup table with optional row-sparse gradients.

    Used directly for Item2Vec/Job2Vec; the FVAE encoder uses the grow-able
    :class:`repro.core.encoder.HashedEmbeddingBag` built on the same machinery.
    """

    def __init__(self, num_embeddings: int, dim: int, sparse: bool = True,
                 std: float = 0.01, rng: np.random.Generator | int | None = None) -> None:
        super().__init__()
        rng = new_rng(rng)
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(init.normal((num_embeddings, dim), rng, std=std),
                                name="weight", sparse=sparse)

    def forward(self, index: np.ndarray) -> Tensor:
        return F.rows(self.weight, index)

    def __repr__(self) -> str:
        return f"Embedding({self.num_embeddings}, {self.dim})"
