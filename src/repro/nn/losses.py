"""Loss functions used by the VAE family of models.

The two building blocks of the paper's ELBO (Eq. 7):

* :func:`multinomial_nll` — negative multinomial log-likelihood
  ``-Σ_j F_ij · log π_j(z_i)`` (Eq. 4), computed from log-probabilities so it
  composes with the batched softmax.
* :func:`gaussian_kl` — KL divergence between the diagonal-Gaussian posterior
  ``q(z|u) = N(μ, σ²)`` and the standard-normal prior.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor, as_tensor

__all__ = ["multinomial_nll", "gaussian_kl", "gaussian_kl_to", "mse"]


def multinomial_nll(log_probs: Tensor, targets: np.ndarray,
                    reduce_mean: bool = True) -> Tensor:
    """Negative multinomial log-likelihood.

    Parameters
    ----------
    log_probs:
        ``(B, C)`` log-probabilities (output of ``log_softmax``).
    targets:
        ``(B, C)`` non-negative counts / multi-hot indicators ``F_ij``.
    reduce_mean:
        Average over the batch dimension if True, else sum.
    """
    targets = np.asarray(targets)
    if targets.shape != log_probs.shape:
        raise ValueError(f"targets shape {targets.shape} != log_probs shape {log_probs.shape}")
    total = -(as_tensor(targets, like=log_probs.data.dtype) * log_probs).sum()
    if reduce_mean:
        total = total * (1.0 / log_probs.shape[0])
    return total


def gaussian_kl(mu: Tensor, logvar: Tensor, reduce_mean: bool = True) -> Tensor:
    """KL( N(mu, exp(logvar)) || N(0, I) ), summed over latent dims.

    Closed form: ``0.5 Σ (exp(logvar) + mu² − 1 − logvar)``.
    """
    kl = (mu * mu + logvar.exp() - logvar - 1.0).sum() * 0.5
    if reduce_mean:
        kl = kl * (1.0 / mu.shape[0])
    return kl


def gaussian_kl_to(mu_q: Tensor, logvar_q: Tensor,
                   mu_p: np.ndarray, logvar_p: np.ndarray,
                   reduce_mean: bool = True) -> Tensor:
    """KL( N(mu_q, exp(logvar_q)) || N(mu_p, exp(logvar_p)) ) with a *fixed* prior.

    ``mu_p``/``logvar_p`` are treated as constants (no gradient), matching the
    RecVAE composite prior where the prior is a frozen copy of earlier
    parameters.
    """
    mu_p = as_tensor(np.asarray(mu_p))
    logvar_p_arr = np.asarray(logvar_p)
    inv_var_p = as_tensor(np.exp(-logvar_p_arr))
    diff = mu_q - mu_p
    kl = ((logvar_p_arr - logvar_q) * 0.5
          + (logvar_q.exp() + diff * diff) * inv_var_p * 0.5
          - 0.5).sum()
    if reduce_mean:
        kl = kl * (1.0 / mu_q.shape[0])
    return kl


def mse(pred: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error (used in tests and small baselines)."""
    diff = pred - as_tensor(np.asarray(target), like=pred.data.dtype)
    return (diff * diff).mean()
