"""Functional operations on :class:`~repro.nn.tensor.Tensor`.

Besides the usual activations this module implements the three operations the
paper's efficiency section (§IV-C) relies on:

* :func:`rows` / :func:`take` — gather rows (or scalar entries) of a
  parameter.  For row-sparse parameters the backward pass records
  ``(rows, grad_rows)`` pairs instead of a dense gradient, so the update cost
  is proportional to the gathered rows only.  Together with
  :class:`repro.hashing.DynamicHashTable` this is the "dynamic hash table"
  encoder input layer.
* :func:`embedding_bag` — segment-sum of gathered rows, i.e. the first encoder
  layer computed directly from sparse feature ids (cost ``O(N̄·D)`` instead of
  ``O(J·D)``).
* The decoder's *batched softmax* is the composition
  ``log_softmax(h @ rows(W, cand).T + take(b, cand))`` — logits are computed
  for the batch's candidate feature set only (cost ``O(N̄_b·D)``).

Every op follows the static-kernel protocol of :mod:`repro.nn.tensor`
(``forward(ws, args, *parent_arrays)`` / ``backward(grad, parents, saved,
args)``), so the dynamic autograd path and the captured-replay path of
:mod:`repro.nn.graph` execute the same code and stay bit-identical.  All ops
are dtype-preserving: float32 inputs produce float32 outputs (the dropout
mask and sampled-softmax targets are cast to the operand dtype instead of
silently promoting to float64).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.tensor import (Parameter, Tensor, _buf, _dispatch, _out,
                             as_tensor, coalesce_rows, stable_sigmoid)

__all__ = [
    "relu", "tanh", "sigmoid", "exp", "log", "softplus",
    # embedding_bag_data (raw-array forward shared with embedding_bag) is
    # deliberately not in __all__: the gradcheck coverage sweep requires a
    # case for every export, and the helper has no gradient of its own.
    "rows", "take", "embedding_bag", "sampled_softmax_nll",
    "softmax", "log_softmax", "dropout", "concat", "stack_rows",
]


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit, ``max(x, 0)``."""
    return as_tensor(x).relu()


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return as_tensor(x).tanh()


def sigmoid(x: Tensor) -> Tensor:
    """Numerically stable logistic sigmoid."""
    return as_tensor(x).sigmoid()


def exp(x: Tensor) -> Tensor:
    return as_tensor(x).exp()


def log(x: Tensor) -> Tensor:
    return as_tensor(x).log()


class OpSoftplus:
    name = "softplus"

    @staticmethod
    def forward(ws, args, a):
        if ws is None:
            return np.maximum(a, 0.0) + np.log1p(np.exp(-np.abs(a))), None
        t = _buf(ws, "t", a.shape, a.dtype)
        np.abs(a, out=t)
        np.negative(t, out=t)
        np.exp(t, out=t)
        np.log1p(t, out=t)
        out = _out(ws, a.shape, a.dtype)
        np.maximum(a, 0.0, out=out)
        np.add(out, t, out=out)
        return out, None

    @staticmethod
    def backward(grad, parents, saved, args):
        p = parents[0]
        p._accumulate(grad * stable_sigmoid(p.data))


def softplus(x: Tensor) -> Tensor:
    """``log(1 + e^x)`` computed stably as ``max(x,0) + log1p(e^-|x|)``."""
    x = as_tensor(x)
    return _dispatch(OpSoftplus, (x,), None, x.data)


def _is_sparse_param(t: Tensor) -> bool:
    return isinstance(t, Parameter) and t.sparse


def _scatter_grad(weight: Tensor, index: np.ndarray, grad_rows: np.ndarray,
                  assume_unique: bool = False) -> None:
    """Route a gather-op gradient to ``weight``.

    Parameters take the coalesced path (sparse part or reusable dense
    workspace, see :meth:`Parameter.scatter_add_grad`); plain tensors fall
    back to a freshly allocated dense scatter.  ``assume_unique`` promises
    ``index`` is duplicate-free, skipping the coalesce (see
    :meth:`Parameter.add_sparse_grad`).
    """
    if isinstance(weight, Parameter):
        weight.scatter_add_grad(index, grad_rows, assume_unique=assume_unique)
        return
    if assume_unique:
        unique, summed = index, grad_rows
    else:
        unique, summed = coalesce_rows(index, grad_rows)
    full = np.zeros_like(weight.data)
    full[unique] += summed
    weight._accumulate(full)


class OpRows:
    name = "rows"

    @staticmethod
    def forward(ws, args, w):
        if ws is None:
            return w[args], None
        out = _out(ws, args.shape + w.shape[1:], w.dtype)
        np.take(w, args, axis=0, out=out, mode="clip")
        return out, None

    @staticmethod
    def backward(grad, parents, saved, args):
        _scatter_grad(parents[0], args, grad)


def rows(weight: Tensor, index: np.ndarray) -> Tensor:
    """Gather ``weight[index]`` (rows of a 2-D tensor).

    For row-sparse parameters the gradient is recorded as a sparse part; for
    everything else duplicate indices are coalesced with a segment sum and
    scattered into the parameter's reusable gradient workspace.
    """
    index = np.asarray(index, dtype=np.int64)
    return _dispatch(OpRows, (weight,), index, weight.data)


def take(weight: Tensor, index: np.ndarray) -> Tensor:
    """Gather entries of a 1-D tensor (e.g. per-feature biases)."""
    index = np.asarray(index, dtype=np.int64)
    if weight.data.ndim != 1:
        raise ValueError("take() expects a 1-D tensor; use rows() for matrices")
    return _dispatch(OpRows, (weight,), index, weight.data)


def embedding_bag_data(weight_data: np.ndarray, indices: np.ndarray,
                       offsets: np.ndarray,
                       per_index_weights: np.ndarray | None = None,
                       segment: np.ndarray | None = None,
                       out: np.ndarray | None = None,
                       gather_out: np.ndarray | None = None,
                       ) -> tuple[np.ndarray, np.ndarray]:
    """Raw-array forward of :func:`embedding_bag`: ``(out, segment)``.

    This is the single implementation of the segment-sum forward — the
    autograd :func:`embedding_bag` wraps it, and inference-mode callers
    (``FieldAwareEncoder.forward_arrays``) call it directly with a plain
    weight matrix.  One implementation means the two paths are bit-identical
    by construction, not by testing alone.  ``out`` / ``gather_out`` are
    optional preallocated workspaces (the captured-replay path reuses them
    across steps); values are identical either way.
    """
    indices = np.asarray(indices, dtype=np.int64)
    offsets = np.asarray(offsets, dtype=np.int64)
    if offsets.ndim != 1 or offsets.size < 1:
        raise ValueError("offsets must be a 1-D array of length B+1")
    n_bags = offsets.size - 1
    if offsets[0] != 0 or offsets[-1] != indices.size:
        raise ValueError("offsets must start at 0 and end at len(indices)")

    lengths = np.diff(offsets)
    if segment is None:
        # segment ids: bag index for each flat index
        segment = np.repeat(np.arange(n_bags), lengths)
    else:
        segment = np.asarray(segment, dtype=np.int64)
        if segment.size != indices.size:
            raise ValueError("segment must have one bag id per index")

    if gather_out is None:
        gathered = weight_data[indices]
    else:
        gathered = gather_out
        np.take(weight_data, indices, axis=0, out=gathered, mode="clip")
    if per_index_weights is not None:
        per_index_weights = np.asarray(per_index_weights,
                                       dtype=weight_data.dtype)
        gathered *= per_index_weights[:, None]  # fresh gather: in-place safe
    if out is None:
        out_data = np.zeros((n_bags, weight_data.shape[1]),
                            dtype=weight_data.dtype)
    else:
        out_data = out
        out_data[...] = 0.0
    if indices.size:
        # Contiguous segment sum: reduceat over the starts of non-empty bags.
        # Because every element between two non-empty starts belongs to the
        # first one, each reduceat slice is exactly one bag; empty bags keep
        # their zero row (reduceat would otherwise echo a single element).
        nonempty = np.flatnonzero(lengths > 0)
        out_data[nonempty] = np.add.reduceat(gathered, offsets[nonempty], axis=0)
    return out_data, segment


class OpEmbeddingBag:
    # Replay intentionally does NOT route this kernel's gather/output matrices
    # through the workspace arena: A/B benchmarks (see docs/PERFORMANCE.md,
    # "rejected alternatives") showed arena reuse for these bandwidth-bound
    # buffers running ~10% slower than glibc's recycled fresh allocations,
    # dragging whole-step replay below the dynamic path.
    name = "embedding_bag"

    @staticmethod
    def forward(ws, args, w):
        indices, offsets, per_index_weights, segment = args
        out_data, segment = embedding_bag_data(
            w, indices, offsets, per_index_weights, segment)
        piw = per_index_weights
        if piw is not None:
            piw = np.asarray(piw, dtype=w.dtype)
        return out_data, (segment, piw)

    @staticmethod
    def backward(grad, parents, saved, args):
        segment, piw = saved
        indices = args[0]
        grad_rows = grad[segment]
        if piw is not None:
            grad_rows *= piw[:, None]  # fresh gather
        _scatter_grad(parents[0], indices, grad_rows)


def embedding_bag(weight: Tensor, indices: np.ndarray, offsets: np.ndarray,
                  per_index_weights: np.ndarray | None = None,
                  segment: np.ndarray | None = None) -> Tensor:
    """Segment-sum of embedding rows: the sparse first encoder layer.

    Parameters
    ----------
    weight:
        ``(capacity, D)`` embedding matrix (typically a sparse
        :class:`Parameter` backed by a dynamic hash table).
    indices:
        Flat ``int64`` array of row ids for all bags, concatenated.
    offsets:
        ``(B + 1,)`` array; bag ``i`` covers ``indices[offsets[i]:offsets[i+1]]``.
        Empty bags are allowed and produce a zero row.
    per_index_weights:
        Optional multiplicative weight per index (feature weights/counts).
    segment:
        Optional precomputed bag-id-per-index array, i.e.
        ``np.repeat(np.arange(B), np.diff(offsets))``.  Batches cache this
        (see :meth:`FieldBatch.segment_ids`) so repeated forwards skip the
        ``np.repeat`` rebuild.

    Returns
    -------
    Tensor of shape ``(B, D)`` where row ``i`` is the (weighted) sum of the
    gathered embedding rows of bag ``i``.
    """
    indices = np.asarray(indices, dtype=np.int64)
    offsets = np.asarray(offsets, dtype=np.int64)
    return _dispatch(OpEmbeddingBag, (weight,),
                     (indices, offsets, per_index_weights, segment),
                     weight.data)


class OpSampledSoftmaxNLL:
    name = "sampled_softmax_nll"

    @staticmethod
    def forward(ws, args, h, w, b):
        cand, targets, scale = args
        # One (B, C) working buffer carried through logits → shifted →
        # log_probs; every in-place step keeps the op order (and hence
        # rounding) of the unfused ``rows → matmul → take → log_softmax →
        # mul → sum → neg → mul`` reference chain, so losses and gradients
        # stay bit-identical to it.  Like OpEmbeddingBag, the big (B, C) and
        # (C, D) matrices deliberately stay fresh allocations on replay:
        # arena reuse for them measured slower than malloc's recycled hot
        # buffers (docs/PERFORMANCE.md, "rejected alternatives").
        w_rows = w[cand]
        logits = h @ w_rows.T
        logits += b[cand]
        np.subtract(logits, logits.max(axis=-1, keepdims=True), out=logits)
        e = np.exp(logits)
        logsumexp = e.sum(axis=-1, keepdims=True)
        np.log(logsumexp, out=logsumexp)
        log_probs = np.subtract(logits, logsumexp, out=logits)
        prod = np.multiply(targets, log_probs, out=e)
        nll = -prod.sum() * scale
        return np.asarray(nll), (w_rows, log_probs)

    @staticmethod
    def backward(grad, parents, saved, args):
        h, weight, bias = parents
        cand, targets, scale = args
        w_rows, log_probs = saved
        coef = -(grad * scale)
        g = coef * targets
        soft = np.exp(log_probs)
        soft *= g.sum(axis=-1, keepdims=True)
        glogits = np.subtract(g, soft, out=g)
        if h.requires_grad:
            h._accumulate(glogits @ w_rows)
        if weight.requires_grad:
            # (h.T @ glogits).T — not glogits.T @ h — to replicate the
            # reference path's transposed matmul rounding exactly; the copy
            # makes the row-major layout the optimizer's ufuncs expect.
            # Candidate rows are unique by construction, so the coalesce
            # sort + segment sum is skipped outright.
            gw = np.ascontiguousarray((h.data.T @ glogits).T)
            _scatter_grad(weight, cand, gw, assume_unique=True)
        if bias.requires_grad:
            _scatter_grad(bias, cand, glogits.sum(axis=0), assume_unique=True)


def sampled_softmax_nll(h: Tensor, weight: Tensor, bias: Tensor,
                        candidate_rows: np.ndarray, targets: np.ndarray,
                        scale: float = 1.0) -> Tensor:
    """Fused batched-softmax reconstruction NLL over a candidate set.

    Computes, in one forward and one backward kernel,

    .. code-block:: python

        logits    = h @ weight[cand].T + bias[cand]
        log_probs = log_softmax(logits, axis=-1)
        nll       = -(targets * log_probs).sum() * scale

    which is bit-identical to the unfused reference chain
    ``rows → matmul → take → log_softmax → mul → sum → neg → mul`` but
    materializes no intermediate Tensors and builds no autograd sub-graph:
    the backward pass produces ``h.grad`` densely and row-sparse (coalesced)
    gradients for ``weight``/``bias``.

    Parameters
    ----------
    h:
        ``(B, D)`` decoder trunk activations.
    weight, bias:
        Output head parameters of shape ``(J, D)`` and ``(J,)``; dense or
        row-sparse :class:`Parameter` (sparse params record coalesced parts).
    candidate_rows:
        ``(C,)`` int64 row ids of the batch's candidate features.
    targets:
        ``(B, C)`` dense target matrix aligned with ``candidate_rows``.
    scale:
        Multiplier applied to the summed NLL (e.g. ``1 / n_users``).
    """
    h = as_tensor(h)
    cand = np.asarray(candidate_rows, dtype=np.int64)
    # Cast targets to the logits dtype (not a hard-coded float64) so a
    # float32 model runs float32 throughout.
    targets = np.asarray(targets,
                         dtype=np.result_type(h.data.dtype, weight.data.dtype))
    return _dispatch(OpSampledSoftmaxNLL, (h, weight, bias),
                     (cand, targets, scale), h.data, weight.data, bias.data)


class OpSoftmax:
    name = "softmax"

    @staticmethod
    def forward(ws, args, a):
        if ws is None:
            shifted = a - a.max(axis=args, keepdims=True)
            e = np.exp(shifted)
            out = e / e.sum(axis=args, keepdims=True)
            return out, out
        s = _buf(ws, "s", a.shape, a.dtype)
        np.subtract(a, a.max(axis=args, keepdims=True), out=s)
        np.exp(s, out=s)
        out = _out(ws, a.shape, a.dtype)
        np.divide(s, s.sum(axis=args, keepdims=True), out=out)
        return out, out

    @staticmethod
    def backward(grad, parents, saved, args):
        dot = (grad * saved).sum(axis=args, keepdims=True)
        parents[0]._accumulate(saved * (grad - dot))


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` (differentiable, numerically stable)."""
    x = as_tensor(x)
    return _dispatch(OpSoftmax, (x,), axis, x.data)


class OpLogSoftmax:
    name = "log_softmax"

    @staticmethod
    def forward(ws, args, a):
        if ws is None:
            shifted = a - a.max(axis=args, keepdims=True)
            logsumexp = np.log(np.exp(shifted).sum(axis=args, keepdims=True))
            out = shifted - logsumexp
            return out, out
        s = _buf(ws, "s", a.shape, a.dtype)
        np.subtract(a, a.max(axis=args, keepdims=True), out=s)
        e = _buf(ws, "e", a.shape, a.dtype)
        np.exp(s, out=e)
        logsumexp = e.sum(axis=args, keepdims=True)
        np.log(logsumexp, out=logsumexp)
        out = _out(ws, a.shape, a.dtype)
        np.subtract(s, logsumexp, out=out)
        return out, out

    @staticmethod
    def backward(grad, parents, saved, args):
        soft = np.exp(saved)
        parents[0]._accumulate(
            grad - soft * grad.sum(axis=args, keepdims=True))


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Log-softmax along ``axis`` (differentiable, numerically stable)."""
    x = as_tensor(x)
    return _dispatch(OpLogSoftmax, (x,), axis, x.data)


class OpDropout:
    name = "dropout"

    @staticmethod
    def forward(ws, args, a):
        p, rng = args
        # The uniform draw stays float64 (the generator's native stream, so
        # float32 and float64 models drop the same features), but the mask is
        # materialised in the input dtype: no silent promotion of the output.
        if ws is None:
            keep = rng.random(a.shape) >= p
            mask = keep.astype(a.dtype)
        else:
            draw = _buf(ws, "draw", a.shape, np.float64)
            rng.random(out=draw)
            mask = _buf(ws, "mask", a.shape, a.dtype)
            np.greater_equal(draw, p, out=mask)
        mask /= (1.0 - p)
        if ws is None:
            out = a * mask
        else:
            out = _out(ws, a.shape, a.dtype)
            np.multiply(a, mask, out=out)
        return out, mask

    @staticmethod
    def backward(grad, parents, saved, args):
        parents[0]._accumulate(grad * saved)


def dropout(x: Tensor, p: float, rng: np.random.Generator,
            training: bool = True) -> Tensor:
    """Inverted dropout: zero with probability ``p``, scale kept by ``1/(1-p)``."""
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1): {p}")
    x = as_tensor(x)
    if not training or p == 0.0:
        return x
    return _dispatch(OpDropout, (x,), (p, rng), x.data)


class OpConcat:
    name = "concat"

    @staticmethod
    def forward(ws, args, *arrs):
        axis, splits = args
        if ws is None:
            return np.concatenate(arrs, axis=axis), None
        shape = list(arrs[0].shape)
        ax = axis % len(shape)
        shape[ax] = sum(a.shape[ax] for a in arrs)
        out = _out(ws, tuple(shape), np.result_type(*arrs))
        np.concatenate(arrs, axis=axis, out=out)
        return out, None

    @staticmethod
    def backward(grad, parents, saved, args):
        axis, splits = args
        pieces = np.split(grad, splits, axis=axis)
        for t, piece in zip(parents, pieces):
            if t.requires_grad:
                t._accumulate(piece)


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis``."""
    tensors = tuple(as_tensor(t) for t in tensors)
    sizes = [t.data.shape[axis] for t in tensors]
    splits = np.cumsum(sizes)[:-1]
    return _dispatch(OpConcat, tensors, (axis, splits),
                     *(t.data for t in tensors))


class OpStackRows:
    name = "stack_rows"

    @staticmethod
    def forward(ws, args, *arrs):
        if ws is None:
            return np.stack(arrs, axis=0), None
        out = _out(ws, (len(arrs),) + arrs[0].shape, np.result_type(*arrs))
        np.stack(arrs, axis=0, out=out)
        return out, None

    @staticmethod
    def backward(grad, parents, saved, args):
        for i, t in enumerate(parents):
            if t.requires_grad:
                t._accumulate(grad[i])


def stack_rows(tensors: Sequence[Tensor]) -> Tensor:
    """Stack 1-D tensors into a 2-D tensor (axis 0)."""
    tensors = tuple(as_tensor(t) for t in tensors)
    return _dispatch(OpStackRows, tensors, None, *(t.data for t in tensors))
