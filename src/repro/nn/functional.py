"""Functional operations on :class:`~repro.nn.tensor.Tensor`.

Besides the usual activations this module implements the three operations the
paper's efficiency section (§IV-C) relies on:

* :func:`rows` / :func:`take` — gather rows (or scalar entries) of a
  parameter.  For row-sparse parameters the backward pass records
  ``(rows, grad_rows)`` pairs instead of a dense gradient, so the update cost
  is proportional to the gathered rows only.  Together with
  :class:`repro.hashing.DynamicHashTable` this is the "dynamic hash table"
  encoder input layer.
* :func:`embedding_bag` — segment-sum of gathered rows, i.e. the first encoder
  layer computed directly from sparse feature ids (cost ``O(N̄·D)`` instead of
  ``O(J·D)``).
* The decoder's *batched softmax* is the composition
  ``log_softmax(h @ rows(W, cand).T + take(b, cand))`` — logits are computed
  for the batch's candidate feature set only (cost ``O(N̄_b·D)``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.tensor import (Parameter, Tensor, as_tensor, coalesce_rows,
                             stable_sigmoid)

__all__ = [
    "relu", "tanh", "sigmoid", "exp", "log", "softplus",
    # embedding_bag_data (raw-array forward shared with embedding_bag) is
    # deliberately not in __all__: the gradcheck coverage sweep requires a
    # case for every export, and the helper has no gradient of its own.
    "rows", "take", "embedding_bag", "sampled_softmax_nll",
    "softmax", "log_softmax", "dropout", "concat", "stack_rows",
]


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit, ``max(x, 0)``."""
    return as_tensor(x).relu()


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return as_tensor(x).tanh()


def sigmoid(x: Tensor) -> Tensor:
    """Numerically stable logistic sigmoid."""
    return as_tensor(x).sigmoid()


def exp(x: Tensor) -> Tensor:
    return as_tensor(x).exp()


def log(x: Tensor) -> Tensor:
    return as_tensor(x).log()


def softplus(x: Tensor) -> Tensor:
    """``log(1 + e^x)`` computed stably as ``max(x,0) + log1p(e^-|x|)``."""
    x = as_tensor(x)
    data = np.maximum(x.data, 0.0) + np.log1p(np.exp(-np.abs(x.data)))

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * stable_sigmoid(x.data))

    return Tensor._make(data, (x,), backward)


def _is_sparse_param(t: Tensor) -> bool:
    return isinstance(t, Parameter) and t.sparse


def _scatter_grad(weight: Tensor, index: np.ndarray, grad_rows: np.ndarray,
                  assume_unique: bool = False) -> None:
    """Route a gather-op gradient to ``weight``.

    Parameters take the coalesced path (sparse part or reusable dense
    workspace, see :meth:`Parameter.scatter_add_grad`); plain tensors fall
    back to a freshly allocated dense scatter.  ``assume_unique`` promises
    ``index`` is duplicate-free, skipping the coalesce (see
    :meth:`Parameter.add_sparse_grad`).
    """
    if isinstance(weight, Parameter):
        weight.scatter_add_grad(index, grad_rows, assume_unique=assume_unique)
        return
    if assume_unique:
        unique, summed = index, grad_rows
    else:
        unique, summed = coalesce_rows(index, grad_rows)
    full = np.zeros_like(weight.data)
    full[unique] += summed
    weight._accumulate(full)


def rows(weight: Tensor, index: np.ndarray) -> Tensor:
    """Gather ``weight[index]`` (rows of a 2-D tensor).

    For row-sparse parameters the gradient is recorded as a sparse part; for
    everything else duplicate indices are coalesced with a segment sum and
    scattered into the parameter's reusable gradient workspace.
    """
    index = np.asarray(index, dtype=np.int64)
    out_data = weight.data[index]

    def backward(grad: np.ndarray) -> None:
        _scatter_grad(weight, index, grad)

    return Tensor._make(out_data, (weight,), backward)


def take(weight: Tensor, index: np.ndarray) -> Tensor:
    """Gather entries of a 1-D tensor (e.g. per-feature biases)."""
    index = np.asarray(index, dtype=np.int64)
    if weight.data.ndim != 1:
        raise ValueError("take() expects a 1-D tensor; use rows() for matrices")
    out_data = weight.data[index]

    def backward(grad: np.ndarray) -> None:
        _scatter_grad(weight, index, grad)

    return Tensor._make(out_data, (weight,), backward)


def embedding_bag_data(weight_data: np.ndarray, indices: np.ndarray,
                       offsets: np.ndarray,
                       per_index_weights: np.ndarray | None = None,
                       segment: np.ndarray | None = None,
                       ) -> tuple[np.ndarray, np.ndarray]:
    """Raw-array forward of :func:`embedding_bag`: ``(out, segment)``.

    This is the single implementation of the segment-sum forward — the
    autograd :func:`embedding_bag` wraps it, and inference-mode callers
    (``FieldAwareEncoder.forward_arrays``) call it directly with a plain
    weight matrix.  One implementation means the two paths are bit-identical
    by construction, not by testing alone.
    """
    indices = np.asarray(indices, dtype=np.int64)
    offsets = np.asarray(offsets, dtype=np.int64)
    if offsets.ndim != 1 or offsets.size < 1:
        raise ValueError("offsets must be a 1-D array of length B+1")
    n_bags = offsets.size - 1
    if offsets[0] != 0 or offsets[-1] != indices.size:
        raise ValueError("offsets must start at 0 and end at len(indices)")

    lengths = np.diff(offsets)
    if segment is None:
        # segment ids: bag index for each flat index
        segment = np.repeat(np.arange(n_bags), lengths)
    else:
        segment = np.asarray(segment, dtype=np.int64)
        if segment.size != indices.size:
            raise ValueError("segment must have one bag id per index")

    gathered = weight_data[indices]
    if per_index_weights is not None:
        per_index_weights = np.asarray(per_index_weights,
                                       dtype=weight_data.dtype)
        gathered *= per_index_weights[:, None]  # fresh gather: in-place safe
    out_data = np.zeros((n_bags, weight_data.shape[1]), dtype=weight_data.dtype)
    if indices.size:
        # Contiguous segment sum: reduceat over the starts of non-empty bags.
        # Because every element between two non-empty starts belongs to the
        # first one, each reduceat slice is exactly one bag; empty bags keep
        # their zero row (reduceat would otherwise echo a single element).
        nonempty = np.flatnonzero(lengths > 0)
        out_data[nonempty] = np.add.reduceat(gathered, offsets[nonempty], axis=0)
    return out_data, segment


def embedding_bag(weight: Tensor, indices: np.ndarray, offsets: np.ndarray,
                  per_index_weights: np.ndarray | None = None,
                  segment: np.ndarray | None = None) -> Tensor:
    """Segment-sum of embedding rows: the sparse first encoder layer.

    Parameters
    ----------
    weight:
        ``(capacity, D)`` embedding matrix (typically a sparse
        :class:`Parameter` backed by a dynamic hash table).
    indices:
        Flat ``int64`` array of row ids for all bags, concatenated.
    offsets:
        ``(B + 1,)`` array; bag ``i`` covers ``indices[offsets[i]:offsets[i+1]]``.
        Empty bags are allowed and produce a zero row.
    per_index_weights:
        Optional multiplicative weight per index (feature weights/counts).
    segment:
        Optional precomputed bag-id-per-index array, i.e.
        ``np.repeat(np.arange(B), np.diff(offsets))``.  Batches cache this
        (see :meth:`FieldBatch.segment_ids`) so repeated forwards skip the
        ``np.repeat`` rebuild.

    Returns
    -------
    Tensor of shape ``(B, D)`` where row ``i`` is the (weighted) sum of the
    gathered embedding rows of bag ``i``.
    """
    indices = np.asarray(indices, dtype=np.int64)
    out_data, segment = embedding_bag_data(weight.data, indices, offsets,
                                           per_index_weights, segment)
    if per_index_weights is not None:
        per_index_weights = np.asarray(per_index_weights, dtype=weight.data.dtype)

    def backward(grad: np.ndarray) -> None:
        grad_rows = grad[segment]
        if per_index_weights is not None:
            grad_rows *= per_index_weights[:, None]  # fresh gather
        _scatter_grad(weight, indices, grad_rows)

    return Tensor._make(out_data, (weight,), backward)


def sampled_softmax_nll(h: Tensor, weight: Tensor, bias: Tensor,
                        candidate_rows: np.ndarray, targets: np.ndarray,
                        scale: float = 1.0) -> Tensor:
    """Fused batched-softmax reconstruction NLL over a candidate set.

    Computes, in one forward and one backward closure,

    .. code-block:: python

        logits    = h @ weight[cand].T + bias[cand]
        log_probs = log_softmax(logits, axis=-1)
        nll       = -(targets * log_probs).sum() * scale

    which is bit-identical to the unfused reference chain
    ``rows → matmul → take → log_softmax → mul → sum → neg → mul`` but
    materializes no intermediate Tensors and builds no autograd sub-graph:
    the backward pass is a single closure producing ``h.grad`` densely and
    row-sparse (coalesced) gradients for ``weight``/``bias``.

    Parameters
    ----------
    h:
        ``(B, D)`` decoder trunk activations.
    weight, bias:
        Output head parameters of shape ``(J, D)`` and ``(J,)``; dense or
        row-sparse :class:`Parameter` (sparse params record coalesced parts).
    candidate_rows:
        ``(C,)`` int64 row ids of the batch's candidate features.
    targets:
        ``(B, C)`` dense target matrix aligned with ``candidate_rows``.
    scale:
        Multiplier applied to the summed NLL (e.g. ``1 / n_users``).
    """
    h = as_tensor(h)
    cand = np.asarray(candidate_rows, dtype=np.int64)
    targets = np.asarray(targets, dtype=np.float64)

    # One (B, C) working buffer carried through logits → shifted → log_probs;
    # every in-place step keeps the op order (and hence rounding) of the
    # unfused ``rows → matmul → take → log_softmax → mul → sum → neg → mul``
    # reference chain, so losses and gradients stay bit-identical to it.
    w_rows = weight.data[cand]
    logits = h.data @ w_rows.T
    logits += bias.data[cand]
    np.subtract(logits, logits.max(axis=-1, keepdims=True), out=logits)
    e = np.exp(logits)
    logsumexp = e.sum(axis=-1, keepdims=True)
    np.log(logsumexp, out=logsumexp)
    log_probs = np.subtract(logits, logsumexp, out=logits)
    prod = np.multiply(targets, log_probs, out=e)
    nll = -prod.sum() * scale

    def backward(grad: np.ndarray) -> None:
        coef = -(grad * scale)
        g = coef * targets
        soft = np.exp(log_probs)
        soft *= g.sum(axis=-1, keepdims=True)
        glogits = np.subtract(g, soft, out=g)
        if h.requires_grad:
            h._accumulate(glogits @ w_rows)
        if weight.requires_grad:
            # (h.T @ glogits).T — not glogits.T @ h — to replicate the
            # reference path's transposed matmul rounding exactly; the copy
            # makes the row-major layout the optimizer's ufuncs expect.
            # Candidate rows are unique by construction, so the coalesce
            # sort + segment sum is skipped outright.
            gw = np.ascontiguousarray((h.data.T @ glogits).T)
            _scatter_grad(weight, cand, gw, assume_unique=True)
        if bias.requires_grad:
            _scatter_grad(bias, cand, glogits.sum(axis=0), assume_unique=True)

    return Tensor._make(np.asarray(nll), (h, weight, bias), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` (differentiable, numerically stable)."""
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out_data = e / e.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        dot = (grad * out_data).sum(axis=axis, keepdims=True)
        x._accumulate(out_data * (grad - dot))

    return Tensor._make(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Log-softmax along ``axis`` (differentiable, numerically stable)."""
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - logsumexp

    def backward(grad: np.ndarray) -> None:
        soft = np.exp(out_data)
        x._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(out_data, (x,), backward)


def dropout(x: Tensor, p: float, rng: np.random.Generator,
            training: bool = True) -> Tensor:
    """Inverted dropout: zero with probability ``p``, scale kept by ``1/(1-p)``."""
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1): {p}")
    x = as_tensor(x)
    if not training or p == 0.0:
        return x
    mask = (rng.random(x.shape) >= p) / (1.0 - p)
    out_data = x.data * mask

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * mask)

    return Tensor._make(out_data, (x,), backward)


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    splits = np.cumsum(sizes)[:-1]

    def backward(grad: np.ndarray) -> None:
        pieces = np.split(grad, splits, axis=axis)
        for t, piece in zip(tensors, pieces):
            if t.requires_grad:
                t._accumulate(piece)

    return Tensor._make(out_data, tuple(tensors), backward)


def stack_rows(tensors: Sequence[Tensor]) -> Tensor:
    """Stack 1-D tensors into a 2-D tensor (axis 0)."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=0)

    def backward(grad: np.ndarray) -> None:
        for i, t in enumerate(tensors):
            if t.requires_grad:
                t._accumulate(grad[i])

    return Tensor._make(out_data, tuple(tensors), backward)
