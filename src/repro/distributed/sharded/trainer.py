"""Multi-process sharded parameter-server training.

This is the running system behind the analytic cost model in
:mod:`repro.distributed.parameter_server`: ``n_workers`` real OS processes
train one FVAE synchronously, with every row-sparse parameter sharded by
feature-id hash across the workers (each worker doubles as the parameter
server for its shard — the colocated-PS deployment).

Layout (per step):

* **state** — every (field, parameter) shard lives in a named
  ``multiprocessing.shared_memory`` slab in the PR-5 columnar ``(slots,
  dim)`` layout; dense parameters live in shared slabs the driver's model
  points at directly, so the post-step dense update is broadcast by the MMU,
  not by messages.  Workers *pull* the rows a batch touches as vectorised
  gathers from the slabs — zero-copy reads, no serialisation.
* **gradients** — after backward, each worker coalesces its row-sparse
  gradients (PR-3 ``coalesce_rows``) and splits them by owning shard; the
  coalesced ``(rows, grads)`` pairs are the on-wire format, routed through
  the driver to the owning worker, which applies the exact ``Adam``
  sparse-row arithmetic to its slab.
* **determinism** — the driver alone consumes RNG: it draws the epoch
  shuffle, the reparameterisation noise and the candidate sets in exactly
  the order the single-process ``Trainer.fit`` reference would, then ships
  each worker its slice.  With one worker the run is **bit-identical** to
  the reference; with many workers results differ only in float summation
  order (the ``distributed.sharded_vs_single_process`` oracle pins the
  tolerance).
* **faults** — a :class:`~repro.resilience.FaultSchedule`'s
  ``WORKER_CRASH`` events SIGKILL real worker processes mid-run; the driver
  detects the dead pipe, rolls every shard back to the latest
  :class:`~repro.resilience.Checkpointer` checkpoint (parameters, Adam
  moments, RNG states, epoch cursor), respawns the pool and replays —
  bit-identically to an uninterrupted sharded run.

Determinism rules (validated up front): the full feature vocabulary must be
pre-registered (``initialize_from_dataset``) so tables never grow mid-run,
and input/feature dropout must be off — those draw inside the worker
forward, which the driver cannot plan.  Candidate sampling
(``sampling_rate < 1``) *is* supported: the draw happens driver-side.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import time
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro.core.trainer import EpochRecord, TrainHistory
from repro.distributed.sharded import shm
from repro.distributed.sharded.layout import FieldLayout, build_field_layout
from repro.nn.optim import Adam, _coalesce
from repro.resilience.checkpoint import Checkpointer
from repro.resilience.faults import FaultKind, FaultSchedule
from repro.utils.rng import (capture_rng_tree, get_generator_state, new_rng,
                             restore_rng_tree, set_generator_state)

__all__ = ["ShardedTrainer", "WorkerDiedError", "adam_sparse_row_update"]

_STATE_KEYS = ("value", "m", "v")


class WorkerDiedError(RuntimeError):
    """A worker process died (or stopped responding) mid-step."""

    def __init__(self, rank: int, reason: str) -> None:
        super().__init__(f"worker {rank} died: {reason}")
        self.rank = rank


def adam_sparse_row_update(value: np.ndarray, m: np.ndarray, v: np.ndarray,
                           rows: np.ndarray, grads: np.ndarray, *, t: int,
                           lr: float, beta1: float = 0.9,
                           beta2: float = 0.999, eps: float = 1e-8,
                           weight_decay: float = 0.0) -> None:
    """The exact sparse-row branch of :class:`repro.nn.optim.Adam`.

    Operates on raw state arrays (shard slabs) instead of a ``Parameter``,
    replicating the reference op-for-op so a shard owner's update is
    bit-identical to what the single-process optimizer would have done to
    the same rows (pinned by ``test_adam_row_update_matches_optimizer``).
    """
    bc1 = 1.0 - beta1 ** t
    bc2 = 1.0 - beta2 ** t
    step_size = lr * np.sqrt(bc2) / bc1
    if weight_decay:
        grads = grads + weight_decay * value[rows]
    m_rows = m[rows]
    m_rows *= beta1
    m_rows += (1.0 - beta1) * grads
    sq = np.multiply(grads, grads)
    sq *= (1.0 - beta2)
    v_rows = v[rows]
    v_rows *= beta2
    v_rows += sq
    m[rows] = m_rows
    v[rows] = v_rows
    denom = np.sqrt(v_rows, out=v_rows)
    denom += eps
    update = np.multiply(m_rows, step_size, out=m_rows)
    update /= denom
    value[rows] -= update


@dataclass
class _SparseState:
    """One row-sparse parameter: its layout and per-shard state slabs."""

    pkey: str
    fieldname: str
    param: object                 # repro.nn.tensor.Parameter
    layout: FieldLayout
    slabs: dict                   # {"value"|"m"|"v": [Slab per shard]}

    def arrays(self, which: str) -> list[np.ndarray]:
        return [slab.array for slab in self.slabs[which]]


@dataclass
class _WorkerCtx:
    """Everything a forked worker inherits (never pickled: fork start method)."""

    rank: int
    n_workers: int
    model: object
    dataset: object
    sparse: dict                  # pkey -> _SparseState
    dense_params: list
    lr: float
    betas: tuple
    eps: float
    weight_decay: float


def _pull_touched(ctx: _WorkerCtx, batch, candidates: dict) -> None:
    """Refresh the rows this step reads from the authoritative shard slabs."""
    model = ctx.model
    for fname, fb in batch.fields.items():
        if fb.indices.size == 0:
            continue
        bag = model.encoder.bag(fname)
        rows = bag.table.rows_for_ids(fb.unique_features())
        state = ctx.sparse[f"bag_w.{fname}"]
        state.layout.pull_rows(rows, state.arrays("value"), bag.weight.data)
    for fname, cand in candidates.items():
        head = model.decoder.head(fname)
        rows = head.table.rows_for_ids(np.asarray(cand))
        rows = rows[rows >= 0]
        if rows.size == 0:
            continue
        for pkey, dest in ((f"head_w.{fname}", head.weight.data),
                           (f"head_b.{fname}", head.bias.data)):
            state = ctx.sparse[pkey]
            state.layout.pull_rows(rows, state.arrays("value"), dest)


def _compute_step(ctx: _WorkerCtx, msg: tuple) -> tuple:
    __, step, beta, total_users, idx, eps, candidates = msg
    # CPU seconds, not wall: on a machine with fewer cores than workers the
    # processes time-slice, and wall time would charge each worker for the
    # others' turns.  CPU time is what a dedicated core would deliver, which
    # is what the critical-path scaling metric models.
    t0 = time.process_time()
    if idx.size == 0:
        return ("grads", ctx.rank, 0.0, {}, 0, 0.0, None, {})
    model = ctx.model
    batch = ctx.dataset.batch(idx)
    _pull_touched(ctx, batch, candidates)
    model.zero_grad()
    model._step = step
    loss, diag = model.elbo_components(
        batch, beta=beta, candidates=candidates, noise=eps,
        recon_scale=1.0 / total_users, kl_weight=idx.size / total_users)
    loss.backward()
    dense = [None if p.grad is None else np.asarray(p.grad)
             for p in ctx.dense_params]
    buckets: dict[str, list] = {}
    for pkey, state in ctx.sparse.items():
        if not state.param.sparse_grad_parts:
            continue
        rows, grads = _coalesce(state.param.sparse_grad_parts)
        shards = state.layout.shard_of_row[rows]
        per_shard = []
        for s in range(ctx.n_workers):
            mine = shards == s
            per_shard.append((rows[mine], grads[mine]) if mine.any() else None)
        buckets[pkey] = per_shard
    seconds = time.process_time() - t0
    return ("grads", ctx.rank, float(loss.item()), diag, int(idx.size),
            seconds, dense, buckets)


def _apply_shard(ctx: _WorkerCtx, msg: tuple) -> tuple:
    __, adam_t, routed = msg
    t0 = time.process_time()
    for pkey, parts in routed.items():
        if not parts:
            continue
        state = ctx.sparse[pkey]
        rows, grads = _coalesce(parts)
        slots = state.layout.slot_of_row[rows]
        adam_sparse_row_update(
            state.slabs["value"][ctx.rank].array,
            state.slabs["m"][ctx.rank].array,
            state.slabs["v"][ctx.rank].array,
            slots, grads, t=adam_t, lr=ctx.lr, beta1=ctx.betas[0],
            beta2=ctx.betas[1], eps=ctx.eps, weight_decay=ctx.weight_decay)
    return ("applied", ctx.rank, time.process_time() - t0)


def _worker_loop(ctx: _WorkerCtx, conn) -> None:
    """Worker process body: serve step/apply requests until told to stop."""
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break  # driver went away: exit quietly
            kind = msg[0]
            if kind == "step":
                conn.send(_compute_step(ctx, msg))
            elif kind == "apply":
                conn.send(_apply_shard(ctx, msg))
            elif kind == "stop":
                conn.send(("bye", ctx.rank))
                break
    finally:
        conn.close()


class ShardedTrainer:
    """Synchronous data-parallel FVAE training on a real sharded PS.

    Parameters
    ----------
    model:
        An :class:`~repro.core.fvae.FVAE` whose tables already cover the
        dataset vocabulary (run ``initialize_from_dataset`` first) and whose
        config has ``input_dropout == feature_dropout == 0``.
    n_workers:
        Worker processes; also the shard count (colocated PS).
    checkpointer / checkpoint_every:
        As in :class:`~repro.core.trainer.Trainer`; required when a
        ``fault_schedule`` can kill workers.
    fault_schedule:
        ``WORKER_CRASH`` events become real ``SIGKILL``\\ s against worker
        pids; recovery rolls back to the latest checkpoint and replays.
        (Straggler/drop events model network behaviour the in-memory pipes
        don't have; they are ignored here.)
    """

    def __init__(self, model, n_workers: int = 2, lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0,
                 checkpointer: Checkpointer | str | Path | None = None,
                 checkpoint_every: int = 0,
                 fault_schedule: FaultSchedule | None = None,
                 recv_timeout: float = 120.0) -> None:
        if n_workers <= 0:
            raise ValueError(f"n_workers must be positive: {n_workers}")
        cfg = model.config
        if cfg.input_dropout or cfg.feature_dropout:
            raise ValueError(
                "sharded training requires input_dropout=0 and "
                "feature_dropout=0: dropout draws happen inside the worker "
                "forward, which the driver cannot schedule deterministically")
        self.model = model
        self.n_workers = int(n_workers)
        self.lr = float(lr)
        self.betas = betas
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        if isinstance(checkpointer, (str, Path)):
            checkpointer = Checkpointer(checkpointer)
        self.checkpointer = checkpointer
        self.checkpoint_every = int(checkpoint_every)
        self.fault_schedule = fault_schedule
        if fault_schedule is not None and checkpointer is None:
            raise ValueError("fault injection requires a checkpointer: a "
                             "killed worker is recovered from the latest "
                             "checkpoint")
        self.recv_timeout = float(recv_timeout)
        self._ctx = mp.get_context("fork")
        self._dataset = None
        self._workers: list = []          # [(Process, Connection)]
        self._sparse: dict[str, _SparseState] = {}
        self._dense_params: list = []
        self._dense_slabs: list = []
        self._dense_opt: Adam | None = None
        self._fired: set = set()          # consumed fault events
        self.recoveries = 0
        self.step_timings: list[dict] = []

    # -- public API ------------------------------------------------------------

    def fit(self, dataset, epochs: int = 1, batch_size: int = 512,
            rng=0) -> TrainHistory:
        """Train; mirrors ``Trainer.fit``'s shuffle/step/update semantics."""
        if epochs <= 0:
            raise ValueError(f"epochs must be positive: {epochs}")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive: {batch_size}")
        self._validate_vocabulary(dataset)
        rng = new_rng(rng)
        model = self.model
        model.train()
        frozen_before = {spec.name: model.encoder.bag(spec.name).table.frozen
                         for spec in model.schema}
        for spec in model.schema:
            model.encoder.bag(spec.name).table.freeze()
        self._dataset = dataset
        history = TrainHistory()
        try:
            self._build_state()
            self._spawn_workers()
            self._fit_loop(dataset, epochs, batch_size, rng, history)
        finally:
            self._teardown()
            self._dataset = None
            for spec in model.schema:
                model.encoder.bag(spec.name).table.frozen = \
                    frozen_before[spec.name]
            model.eval()
        return history

    # -- state construction ----------------------------------------------------

    def _validate_vocabulary(self, dataset) -> None:
        model = self.model
        for spec in model.schema:
            counts = dataset.feature_popularity(spec.name)
            observed = np.flatnonzero(counts)
            if observed.size == 0:
                continue
            rows = model.encoder.bag(spec.name).table.rows_for_ids(observed)
            if (rows < 0).any():
                raise ValueError(
                    f"field '{spec.name}': {int((rows < 0).sum())} dataset "
                    "features are not registered in the model's hash table; "
                    "run model.initialize_from_dataset(dataset) before "
                    "sharded training (tables are frozen for the run)")

    def _sparse_param_index(self) -> dict[str, tuple]:
        """``pkey -> (param, field, row_width)`` for every sparse parameter."""
        model = self.model
        out = {}
        for spec in model.schema:
            fname = spec.name
            bag = model.encoder.bag(fname)
            head = model.decoder.head(fname)
            out[f"bag_w.{fname}"] = (bag.weight, fname,
                                     bag.weight.data.shape[1])
            out[f"head_w.{fname}"] = (head.weight, fname,
                                      head.weight.data.shape[1])
            out[f"head_b.{fname}"] = (head.bias, fname, None)
        return out

    def _build_state(self) -> None:
        model = self.model
        sparse_index = self._sparse_param_index()
        sparse_ids = {id(p) for p, __, __ in sparse_index.values()}
        layouts: dict[str, FieldLayout] = {}
        for spec in model.schema:
            layouts[spec.name] = build_field_layout(
                spec.name, model.encoder.bag(spec.name).table, self.n_workers)

        self._sparse = {}
        for pkey, (param, fname, width) in sparse_index.items():
            if param.data.dtype != np.float64:
                raise ValueError("sharded training requires float64 "
                                 f"parameters; {pkey} is {param.data.dtype}")
            layout = layouts[fname]
            slabs = {}
            for which in _STATE_KEYS:
                per_shard = []
                for s in range(self.n_workers):
                    n = int(layout.counts[s])
                    shape = (n,) if width is None else (n, width)
                    per_shard.append(shm.create(shape, np.float64))
                slabs[which] = per_shard
            state = _SparseState(pkey=pkey, fieldname=fname, param=param,
                                 layout=layout, slabs=slabs)
            layout.scatter(param.data[: layout.n_rows], state.arrays("value"))
            self._sparse[pkey] = state

        # Dense parameters move into shared slabs the driver's model reads
        # and writes directly; forked workers see every update for free.
        self._dense_params = [p for p in model.parameters()
                              if id(p) not in sparse_ids]
        self._dense_slabs = []
        for p in self._dense_params:
            slab = shm.create(p.data.shape, p.data.dtype)
            slab.array[...] = p.data
            p.data = slab.array
            self._dense_slabs.append(slab)
        self._dense_opt = Adam(self._dense_params, lr=self.lr,
                               betas=self.betas, eps=self.eps,
                               weight_decay=self.weight_decay)

    def _spawn_workers(self) -> None:
        self._workers = []
        for rank in range(self.n_workers):
            parent, child = self._ctx.Pipe()
            ctx = _WorkerCtx(rank=rank, n_workers=self.n_workers,
                             model=self.model, dataset=self._dataset,
                             sparse=self._sparse,
                             dense_params=self._dense_params, lr=self.lr,
                             betas=self.betas, eps=self.eps,
                             weight_decay=self.weight_decay)
            proc = self._ctx.Process(target=_worker_loop, args=(ctx, child),
                                     daemon=True, name=f"repro-shard-{rank}")
            proc.start()
            child.close()
            self._workers.append((proc, parent))

    # -- the training loop -----------------------------------------------------

    def _fit_loop(self, dataset, epochs: int, batch_size: int, rng,
                  history: TrainHistory) -> None:
        n_users = len(dataset)
        total_batches = max(1, -(-n_users // batch_size))
        state = {"step": 0, "adam_t": 0, "epoch": 0, "cursor": 0,
                 "order": None, "losses": [], "recons": [], "kls": [],
                 "betas": [], "n_seen": 0, "elapsed": 0.0}
        if self.checkpointer is not None:
            # Bootstrap checkpoint: a crash on the very first step must have
            # something to roll back to.
            self._save_checkpoint(state, rng, history)

        while state["epoch"] < epochs:
            epoch = state["epoch"]
            if state["order"] is None:
                order = np.arange(n_users)
                rng.shuffle(order)
                state["order"] = order
            t_epoch = time.perf_counter()
            restart = False
            b = state["cursor"]
            while b < total_batches:
                try:
                    self._run_batch(dataset, state, b, batch_size)
                except WorkerDiedError:
                    self.recoveries += 1
                    self._recover(state, rng, history)
                    restart = True
                    break
                b += 1
                state["cursor"] = b
                if self.checkpointer is not None and self.checkpoint_every \
                        and state["step"] % self.checkpoint_every == 0:
                    self._save_checkpoint(state, rng, history)
            if restart:
                continue  # re-enter from the recovered (epoch, cursor)
            epoch_time = time.perf_counter() - t_epoch
            state["elapsed"] += epoch_time
            losses = state["losses"]
            history.epochs.append(EpochRecord(
                epoch=epoch,
                loss=float(np.mean(losses)) if losses else float("nan"),
                recon=float(np.mean(state["recons"])) if losses else float("nan"),
                kl=float(np.mean(state["kls"])) if losses else float("nan"),
                beta=state["betas"][-1] if losses else float("nan"),
                epoch_time=epoch_time,
                cumulative_time=state["elapsed"],
                users_per_second=(state["n_seen"] / epoch_time
                                  if losses and epoch_time > 0
                                  else float("nan")),
                n_batches=len(losses)))
            state.update(epoch=epoch + 1, cursor=0, order=None, losses=[],
                         recons=[], kls=[], betas=[], n_seen=0)
            if self.checkpointer is not None:
                self._save_checkpoint(state, rng, history)

    def _run_batch(self, dataset, state: dict, b: int,
                   batch_size: int) -> None:
        model = self.model
        step = state["step"]
        t_serial = time.process_time()  # CPU time: see _compute_step
        users = state["order"][b * batch_size: (b + 1) * batch_size]
        total = int(users.size)
        beta = model.beta_schedule(step)
        model._step = step
        # Reference RNG consumption order: noise first, then candidates.
        eps = model._rng.standard_normal((total, model.config.latent_dim))
        batch = dataset.batch(users)
        candidates = model._field_candidates(batch)
        bounds = np.linspace(0, total, self.n_workers + 1).astype(np.int64)
        serial_prep = time.process_time() - t_serial

        self._fire_faults(step)
        for rank in range(self.n_workers):
            lo, hi = int(bounds[rank]), int(bounds[rank + 1])
            self._send(rank, ("step", step, beta, total, users[lo:hi],
                              eps[lo:hi], candidates))
        grads = [self._recv(rank) for rank in range(self.n_workers)]

        t_serial = time.process_time()
        # Route each worker's per-shard gradient buckets to the shard owner.
        routed = [dict() for __ in range(self.n_workers)]
        for msg in grads:
            for pkey, per_shard in msg[7].items():
                for s, part in enumerate(per_shard):
                    if part is not None:
                        routed[s].setdefault(pkey, []).append(part)
        adam_t = state["adam_t"] + 1
        for rank in range(self.n_workers):
            self._send(rank, ("apply", adam_t, routed[rank]))
        # Dense update (driver-side) overlaps the workers' shard applies;
        # gradients are summed in rank order so the reduction is
        # deterministic for a fixed worker count.
        for i, p in enumerate(self._dense_params):
            parts = [msg[6][i] for msg in grads
                     if msg[6] is not None and msg[6][i] is not None]
            if not parts:
                continue
            total_grad = parts[0].copy()
            for part in parts[1:]:
                total_grad += part
            p.grad = total_grad
        self._dense_opt.step()
        serial_apply = time.process_time() - t_serial
        acks = [self._recv(rank) for rank in range(self.n_workers)]

        state["adam_t"] = adam_t
        state["step"] = step + 1
        model._step = step + 1
        state["losses"].append(float(np.sum([msg[2] for msg in grads])))
        state["recons"].append(float(np.sum(
            [msg[3].get("recon", 0.0) for msg in grads if msg[3]])))
        state["kls"].append(float(np.sum(
            [msg[3].get("kl", 0.0) * (msg[4] / total)
             for msg in grads if msg[3]])))
        state["betas"].append(float(beta))
        state["n_seen"] += total
        self.step_timings.append({
            "compute_max": max(msg[5] for msg in grads),
            "compute_sum": float(np.sum([msg[5] for msg in grads])),
            "apply_max": max(ack[2] for ack in acks),
            "apply_sum": float(np.sum([ack[2] for ack in acks])),
            "serial": serial_prep + serial_apply,
        })

    # -- messaging -------------------------------------------------------------

    def _send(self, rank: int, msg: tuple) -> None:
        __, conn = self._workers[rank]
        try:
            conn.send(msg)
        except (BrokenPipeError, OSError) as exc:
            raise WorkerDiedError(rank, f"send failed: {exc}") from exc

    def _recv(self, rank: int):
        proc, conn = self._workers[rank]
        deadline = time.monotonic() + self.recv_timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise WorkerDiedError(rank, "recv timed out")
            try:
                if conn.poll(min(remaining, 0.2)):
                    return conn.recv()
            except (EOFError, OSError) as exc:
                raise WorkerDiedError(rank, f"pipe closed: {exc}") from exc
            if not proc.is_alive():
                # Drain anything flushed before death, then report the crash.
                try:
                    if conn.poll(0):
                        return conn.recv()
                except (EOFError, OSError):
                    pass
                raise WorkerDiedError(rank, f"exit code {proc.exitcode}")

    # -- fault injection and recovery ------------------------------------------

    def _fire_faults(self, step: int) -> None:
        if self.fault_schedule is None:
            return
        for event in self.fault_schedule.at(step):
            if event.kind != FaultKind.WORKER_CRASH:
                continue
            key = (event.step, event.worker)
            if key in self._fired or not 0 <= event.worker < self.n_workers:
                continue
            self._fired.add(key)
            proc, __ = self._workers[event.worker]
            if proc.pid is not None and proc.is_alive():
                os.kill(proc.pid, signal.SIGKILL)

    def _recover(self, state: dict, rng, history: TrainHistory) -> None:
        """Roll every shard back to the latest checkpoint and respawn."""
        checkpoint = self.checkpointer.latest() if self.checkpointer else None
        if checkpoint is None:
            raise RuntimeError("worker died but no checkpoint exists to "
                               "recover from")
        self._stop_workers(force=True)
        arrays, meta = checkpoint.arrays, checkpoint.meta
        for pkey, sstate in self._sparse.items():
            for which in _STATE_KEYS:
                sstate.layout.scatter(arrays[f"sparse/{pkey}/{which}"],
                                      sstate.arrays(which))
            n = sstate.layout.n_rows
            if n:
                sstate.param.data[:n] = arrays[f"sparse/{pkey}/value"]
        for i, p in enumerate(self._dense_params):
            p.data[...] = arrays[f"dense/{i}"]
        self._dense_opt.load_state_arrays(
            {k[len("dense_opt/"):]: v for k, v in arrays.items()
             if k.startswith("dense_opt/")})
        state.update(
            step=int(meta["step"]), adam_t=int(meta["adam_t"]),
            epoch=int(meta["epoch"]), cursor=int(meta["cursor"]),
            order=arrays.get("epoch_order"),
            n_seen=int(meta.get("n_seen", 0)))
        for key, name in (("losses", "partial/losses"),
                          ("recons", "partial/recons"),
                          ("kls", "partial/kls"), ("betas", "partial/betas")):
            state[key] = arrays[name].tolist() if name in arrays else []
        set_generator_state(rng, meta["rng"]["trainer"])
        restore_rng_tree(self.model, meta["rng"]["model"])
        self.model._step = state["step"]
        history.epochs = [EpochRecord(**rec) for rec in meta.get("history", [])]
        self._spawn_workers()

    def _save_checkpoint(self, state: dict, rng, history: TrainHistory):
        arrays: dict[str, np.ndarray] = {}
        for pkey, sstate in self._sparse.items():
            for which in _STATE_KEYS:
                arrays[f"sparse/{pkey}/{which}"] = \
                    sstate.layout.gather(sstate.arrays(which))
        for i, p in enumerate(self._dense_params):
            arrays[f"dense/{i}"] = np.array(p.data, copy=True)
        for key, value in self._dense_opt.state_arrays().items():
            arrays[f"dense_opt/{key}"] = value
        if state["cursor"] > 0 and state["order"] is not None:
            arrays["epoch_order"] = np.asarray(state["order"], dtype=np.int64)
            arrays["partial/losses"] = np.asarray(state["losses"])
            arrays["partial/recons"] = np.asarray(state["recons"])
            arrays["partial/kls"] = np.asarray(state["kls"])
            arrays["partial/betas"] = np.asarray(state["betas"])
        meta = {
            "step": int(state["step"]),
            "adam_t": int(state["adam_t"]),
            "epoch": int(state["epoch"]),
            "cursor": int(state["cursor"]),
            "n_seen": int(state["n_seen"]),
            "n_workers": self.n_workers,
            "history": [asdict(rec) for rec in history.epochs],
            "rng": {"trainer": get_generator_state(rng),
                    "model": capture_rng_tree(self.model)},
        }
        return self.checkpointer.save(arrays, meta, step=int(state["step"]))

    # -- teardown --------------------------------------------------------------

    def _stop_workers(self, force: bool = False) -> None:
        for proc, conn in self._workers:
            if not force and proc.is_alive():
                try:
                    conn.send(("stop",))
                    if conn.poll(2.0):
                        conn.recv()
                except (BrokenPipeError, EOFError, OSError):
                    pass
            try:
                conn.close()
            except OSError:
                pass
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
                if proc.is_alive():  # pragma: no cover - last resort
                    proc.kill()
                    proc.join(timeout=5.0)
        self._workers = []

    def _teardown(self) -> None:
        self._stop_workers()
        # Authoritative parameter state flows from the slabs back into the
        # driver's model before the shared segments disappear.
        for sstate in self._sparse.values():
            n = sstate.layout.n_rows
            if n:
                sstate.param.data[:n] = \
                    sstate.layout.gather(sstate.arrays("value"))
            for which in _STATE_KEYS:
                for slab in sstate.slabs[which]:
                    slab.close()
        self._sparse = {}
        for p, slab in zip(self._dense_params, self._dense_slabs):
            p.data = np.array(p.data, copy=True)
            slab.close()
        self._dense_slabs = []
        self._dense_params = []
