"""Sharded embedding service: real shard-server processes, zero-IPC reads.

:class:`ShardedEmbeddingService` is the multi-process counterpart of
:class:`repro.lookalike.store.EmbeddingStore` (and duck-types its read/write
surface, so :class:`~repro.lookalike.serving.ServingProxy` fronts it
unchanged).  Rows are partitioned by the process-stable key hash
(:func:`repro.hashing.shard_for`) across ``n_shards`` *server processes*:

* **writes** route through each shard's pipe; the server process owns slot
  assignment for its shard and writes the vector into the shard's named
  shared-memory slab (PR-5 columnar ``(capacity, dim)`` layout).  Acks carry
  the assigned slots, which the client mirrors as ``key → (shard, slot)``.
* **reads** never touch a pipe: the client gathers rows straight out of the
  shard slabs through its own mapping — one fancy-indexed gather per shard,
  zero copies, zero serialisation.  This is exactly the asymmetry of the
  paper's online module (reads outnumber writes by orders of magnitude).

Because reads bypass the servers entirely, killing a shard server
(:meth:`kill_shard` — a real SIGKILL) degrades *writes only*: puts routed to
the dead shard raise :class:`~repro.resilience.faults.StoreUnavailableError`
(which the PR-2 resilience chain turns into stale/default serving), while
every previously stored embedding keeps serving at full speed.

Shard servers are started from a top-level entry point with picklable
arguments, so the service works under both ``fork`` and ``spawn`` start
methods — the ``spawn`` path is what proves slab attach-by-name works
without inherited memory.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import time
from typing import Hashable, Iterable, Sequence

import numpy as np

from repro.distributed.sharded import shm
from repro.hashing.stable import rebalance_moves, shard_for
from repro.resilience.faults import StoreUnavailableError

__all__ = ["ShardedEmbeddingService"]


def _shard_server_main(slab_name: str, capacity: int, dim: int,
                       conn) -> None:
    """Shard-server process body (top-level: importable under spawn).

    Owns slot assignment for one shard and performs every write into the
    shard's slab; replies to each put with the assigned slots so the client
    can mirror the placement for zero-IPC reads.
    """
    slab = shm.attach(slab_name, (capacity, dim), np.float64)
    slots: dict[Hashable, int] = {}
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            kind = msg[0]
            if kind == "put":
                __, keys, matrix = msg
                try:
                    assigned = []
                    for pos, key in enumerate(keys):
                        slot = slots.get(key)
                        if slot is None:
                            slot = len(slots)
                            if slot >= capacity:
                                raise MemoryError(
                                    f"shard slab full ({capacity} rows)")
                            slots[key] = slot
                        slab.array[slot] = matrix[pos]
                        assigned.append(slot)
                    conn.send(("ok", assigned))
                except MemoryError as exc:
                    conn.send(("err", str(exc)))
            elif kind == "ping":
                conn.send(("pong", len(slots)))
            elif kind == "stop":
                conn.send(("bye",))
                break
    finally:
        conn.close()
        slab.close()


class ShardedEmbeddingService:
    """Client/driver handle for a pool of shard-server processes.

    Duck-types the :class:`~repro.lookalike.store.EmbeddingStore` surface
    (``dim``/``get``/``get_many``/``get_batch``/``put``/``put_many``/
    ``keys``/``rows_for``/``as_matrix``), so everything that fronts a store —
    ``ServingProxy``, the resilience chain, the micro-batcher — fronts a
    shard pool unchanged.

    The handle is single-writer: one process (the one that built the
    service) routes all puts and owns the read mirror.  Reads are plain
    shared-memory gathers and are safe from any thread of that process.
    """

    def __init__(self, dim: int, n_shards: int = 2,
                 capacity_per_shard: int = 4096,
                 start_method: str = "fork") -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive: {dim}")
        if n_shards <= 0:
            raise ValueError(f"n_shards must be positive: {n_shards}")
        if capacity_per_shard <= 0:
            raise ValueError(
                f"capacity_per_shard must be positive: {capacity_per_shard}")
        self.dim = int(dim)
        self.n_shards = int(n_shards)
        self.capacity_per_shard = int(capacity_per_shard)
        self.start_method = start_method
        self._ctx = mp.get_context(start_method)
        #: key -> (shard, slot); insertion order defines the global row order
        #: reported by :meth:`rows_for` / :meth:`as_matrix`.
        self._mirror: dict[Hashable, tuple[int, int]] = {}
        self._slabs: list = []
        self._servers: list = []      # [(Process, Connection)]
        self._closed = False
        self._start_servers()

    # -- lifecycle -------------------------------------------------------------

    def _start_servers(self) -> None:
        self._slabs = [shm.create((self.capacity_per_shard, self.dim),
                                  np.float64)
                       for __ in range(self.n_shards)]
        self._servers = []
        for shard in range(self.n_shards):
            parent, child = self._ctx.Pipe()
            proc = self._ctx.Process(
                target=_shard_server_main,
                args=(self._slabs[shard].name, self.capacity_per_shard,
                      self.dim, child),
                daemon=True, name=f"repro-embed-shard-{shard}")
            proc.start()
            child.close()
            self._servers.append((proc, parent))

    def _stop_servers(self) -> None:
        for proc, conn in self._servers:
            if proc.is_alive():
                try:
                    conn.send(("stop",))
                    if conn.poll(2.0):
                        conn.recv()
                except (BrokenPipeError, EOFError, OSError):
                    pass
            try:
                conn.close()
            except OSError:
                pass
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
                if proc.is_alive():  # pragma: no cover - last resort
                    proc.kill()
                    proc.join(timeout=5.0)
        self._servers = []

    def close(self) -> None:
        """Stop every shard server and release the shared slabs."""
        if self._closed:
            return
        self._closed = True
        self._stop_servers()
        for slab in self._slabs:
            slab.close()
        self._slabs = []
        self._mirror = {}

    def __enter__(self) -> "ShardedEmbeddingService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- fault surface ---------------------------------------------------------

    def alive(self) -> list[bool]:
        """Liveness of each shard server."""
        return [proc.is_alive() for proc, __ in self._servers]

    def kill_shard(self, shard: int) -> None:
        """SIGKILL one shard server (chaos hook).

        Reads keep working — the slab and the client mirror outlive the
        server — but writes routed to this shard raise
        :class:`StoreUnavailableError` until the pool is rebuilt.
        """
        proc, __ = self._servers[shard]
        if proc.pid is not None and proc.is_alive():
            os.kill(proc.pid, signal.SIGKILL)
            deadline = time.monotonic() + 5.0
            while proc.is_alive() and time.monotonic() < deadline:
                proc.join(timeout=0.05)

    # -- writes (routed through the shard servers) -----------------------------

    def shard_of(self, key: Hashable) -> int:
        return shard_for(key, self.n_shards)

    def put(self, key: Hashable, vector: np.ndarray) -> None:
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.dim,):
            raise ValueError(f"vector shape {vector.shape} != ({self.dim},)")
        self.put_many([key], vector[None, :])

    def put_many(self, keys: Iterable[Hashable], matrix: np.ndarray) -> None:
        if self._closed:
            raise StoreUnavailableError("sharded service is closed")
        matrix = np.asarray(matrix, dtype=np.float64)
        keys = list(keys)
        if matrix.shape != (len(keys), self.dim):
            raise ValueError(
                f"matrix shape {matrix.shape} != ({len(keys)}, {self.dim})")
        by_shard: dict[int, list[int]] = {}
        for pos, key in enumerate(keys):
            by_shard.setdefault(self.shard_of(key), []).append(pos)
        placed: dict[int, tuple[int, int]] = {}   # position -> (shard, slot)
        for shard, positions in sorted(by_shard.items()):
            proc, conn = self._servers[shard]
            if not proc.is_alive():
                raise StoreUnavailableError(
                    f"embedding shard {shard} is down")
            shard_keys = [keys[pos] for pos in positions]
            try:
                conn.send(("put", shard_keys, matrix[positions]))
                if not conn.poll(10.0):
                    raise StoreUnavailableError(
                        f"embedding shard {shard} did not ack")
                reply = conn.recv()
            except (BrokenPipeError, EOFError, OSError) as exc:
                raise StoreUnavailableError(
                    f"embedding shard {shard} is down: {exc}") from exc
            if reply[0] != "ok":
                raise StoreUnavailableError(
                    f"embedding shard {shard} rejected write: {reply[1]}")
            for pos, slot in zip(positions, reply[1]):
                placed[pos] = (shard, slot)
        # Mirror in original key order so keys()/rows_for()/as_matrix()
        # report the same insertion order an EmbeddingStore would.
        for pos, key in enumerate(keys):
            self._mirror[key] = placed[pos]

    # -- reads (zero-IPC shared-memory gathers) --------------------------------

    def __len__(self) -> int:
        return len(self._mirror)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._mirror

    def __iter__(self):
        return iter(self._mirror)

    def keys(self) -> list[Hashable]:
        return list(self._mirror)

    def get(self, key: Hashable) -> np.ndarray | None:
        place = self._mirror.get(key)
        if place is None:
            return None
        shard, slot = place
        return self._slabs[shard].array[slot]

    def get_many(self, keys: Iterable[Hashable]) -> np.ndarray:
        """Stack vectors for ``keys``; raises on any missing key."""
        keys = list(keys)
        out = np.empty((len(keys), self.dim), dtype=np.float64)
        self._gather(keys, out, strict=True)
        return out

    def get_batch(self,
                  keys: Sequence[Hashable]) -> tuple[np.ndarray, np.ndarray]:
        """``(matrix, found_mask)`` with zero rows for absent keys."""
        out = np.zeros((len(keys), self.dim), dtype=np.float64)
        found = self._gather(list(keys), out, strict=False)
        return out, found

    def _gather(self, keys: list, out: np.ndarray,
                strict: bool) -> np.ndarray:
        """Scatter slab rows into ``out``; one fancy-indexed read per shard."""
        mirror = self._mirror
        shards = np.empty(len(keys), dtype=np.int64)
        slots = np.empty(len(keys), dtype=np.int64)
        found = np.zeros(len(keys), dtype=bool)
        for pos, key in enumerate(keys):
            place = mirror.get(key)
            if place is None:
                if strict:
                    raise KeyError(f"no embedding stored for key {key!r}")
                continue
            shards[pos], slots[pos] = place
            found[pos] = True
        for shard in np.unique(shards[found]):
            sel = found & (shards == shard)
            out[sel] = self._slabs[shard].array[slots[sel]]
        return found

    def rows_for(self, keys: Sequence[Hashable]) -> np.ndarray:
        """Global row per key (``-1`` when absent), in mirror order."""
        order = {key: row for row, key in enumerate(self._mirror)}
        return np.asarray([order.get(key, -1) for key in keys],
                          dtype=np.int64)

    def as_matrix(self) -> tuple[list[Hashable], np.ndarray]:
        """``(keys, matrix)`` gathered from the shard slabs (a copy)."""
        keys = list(self._mirror)
        matrix = np.empty((len(keys), self.dim), dtype=np.float64)
        self._gather(keys, matrix, strict=True)
        return keys, matrix

    # -- rebalancing -----------------------------------------------------------

    def reshard(self, new_n_shards: int) -> dict[str, int]:
        """Re-partition every row onto ``new_n_shards`` fresh shard servers.

        Collects the full contents client-side (zero-IPC), tears the old
        pool down, rebuilds with the new shard count and replays every row —
        so rebalancing is lossless by construction (pinned by the
        multiprocess suite).  Returns ``{"stayed": ..., "moved": ...}``
        according to :func:`repro.hashing.rebalance_moves`.
        """
        if new_n_shards <= 0:
            raise ValueError(f"new_n_shards must be positive: {new_n_shards}")
        if self._closed:
            raise StoreUnavailableError("sharded service is closed")
        keys, matrix = self.as_matrix()
        stay, move = rebalance_moves(keys, self.n_shards, new_n_shards)
        self._stop_servers()
        for slab in self._slabs:
            slab.close()
        self._mirror = {}
        self.n_shards = int(new_n_shards)
        self._start_servers()
        if keys:
            self.put_many(keys, matrix)
        return {"stayed": len(stay), "moved": len(move)}
