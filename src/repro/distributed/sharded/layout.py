"""Shard layout: deterministic placement of embedding rows across shards.

For every field the model's :class:`~repro.hashing.DynamicHashTable` maps
raw feature ids to dense rows ``0..n-1``.  The sharded parameter server
places row ``r`` (whose feature id is ``id_r``) on shard
``shard_for(id_r) % n_shards`` — routing by *key hash*, exactly like the
serving tier, so a feature's home is a pure function of its id and the
shard count, never of insertion order or process identity.

Within its shard a row gets a dense *slot* (rows enumerated in global row
order), so each shard's parameter state is one contiguous ``(n_slots, dim)``
slab — the PR-5 columnar layout — and pulls/pushes are vectorised gathers
and scatters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hashing.stable import shard_of_ids

__all__ = ["FieldLayout", "build_field_layout"]


@dataclass
class FieldLayout:
    """Row→(shard, slot) directory for one field's hash table."""

    field: str
    n_shards: int
    ids_by_row: np.ndarray     # (n,) feature id owning each global row
    shard_of_row: np.ndarray   # (n,) owning shard per global row
    slot_of_row: np.ndarray    # (n,) dense slot within the owning shard
    counts: np.ndarray         # (n_shards,) rows per shard

    @property
    def n_rows(self) -> int:
        return self.ids_by_row.size

    def rows_of_shard(self, shard: int) -> np.ndarray:
        """Global rows owned by ``shard``, ordered by slot."""
        rows = np.flatnonzero(self.shard_of_row == shard)
        return rows[np.argsort(self.slot_of_row[rows], kind="stable")]

    def scatter(self, full: np.ndarray, slabs: list[np.ndarray]) -> None:
        """Write a full ``(n, ...)`` matrix into the per-shard slabs."""
        for shard in range(self.n_shards):
            rows = self.rows_of_shard(shard)
            slabs[shard][: rows.size] = full[rows]

    def gather(self, slabs: list[np.ndarray],
               out: np.ndarray | None = None) -> np.ndarray:
        """Read the per-shard slabs back into one full ``(n, ...)`` matrix."""
        if out is None:
            out = np.empty((self.n_rows,) + tuple(slabs[0].shape[1:]),
                           dtype=slabs[0].dtype)
        for shard in range(self.n_shards):
            rows = self.rows_of_shard(shard)
            out[rows] = slabs[shard][: rows.size]
        return out

    def pull_rows(self, rows: np.ndarray, slabs: list[np.ndarray],
                  dest: np.ndarray) -> None:
        """``dest[rows] = shard_state[rows]`` — zero-copy reads per shard."""
        shards = self.shard_of_row[rows]
        for shard in np.unique(shards):
            sel = rows[shards == shard]
            dest[sel] = slabs[shard][self.slot_of_row[sel]]


def build_field_layout(field: str, table, n_shards: int) -> FieldLayout:
    """Layout for one (frozen) hash table.

    Rows are dense ``0..n-1`` in insertion order, so the id-per-row array is
    just the table's keys in iteration order; shard assignment hashes those
    ids and slots enumerate each shard's rows in global row order.
    """
    items = list(table.items())
    ids_by_row = np.asarray([k for k, __ in items], dtype=np.int64)
    if items and not np.array_equal(
            np.asarray([v for __, v in items], dtype=np.int64),
            np.arange(len(items))):
        raise ValueError(
            f"field '{field}': hash table rows are not dense insertion-order "
            "rows; cannot build a shard layout")
    if ids_by_row.size:
        shard_of_row = shard_of_ids(ids_by_row, n_shards)
    else:
        shard_of_row = np.empty(0, dtype=np.int64)
    slot_of_row = np.zeros_like(shard_of_row)
    counts = np.zeros(n_shards, dtype=np.int64)
    for shard in range(n_shards):
        mine = shard_of_row == shard
        counts[shard] = int(mine.sum())
        slot_of_row[mine] = np.arange(counts[shard])
    return FieldLayout(field=field, n_shards=n_shards, ids_by_row=ids_by_row,
                       shard_of_row=shard_of_row, slot_of_row=slot_of_row,
                       counts=counts)
