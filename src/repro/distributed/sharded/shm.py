"""Named shared-memory slabs with strict ownership and cleanup semantics.

The sharded parameter server keeps every parameter shard in a
``multiprocessing.shared_memory`` segment laid out as one contiguous
``(n_rows, dim)`` float64 matrix — the PR-5 columnar format — so workers
read parameter rows as zero-copy numpy views instead of deserialising
messages.

Cleanup is where naive ``shared_memory`` use leaks:

* the **creator process owns the segment**: :func:`create` registers every
  slab in a pid-guarded atexit hook, so segments are unlinked exactly once
  even if the driver dies before its explicit teardown — and *never* by a
  forked child that inherited the registry (the hook no-ops off-pid);
* **attachers never track**: :func:`attach` opens an existing segment by
  name and immediately detaches it from the ``resource_tracker`` (via the
  3.13+ ``track=False`` parameter or the documented ``unregister`` fallback),
  so a worker exiting — cleanly or via SIGKILL — neither unlinks a live
  segment nor triggers the "leaked shared_memory objects" warning;
* :func:`active_segments` scans ``/dev/shm`` for this module's name prefix,
  which is what the test-suite leak check diffs before/after each test.
"""

from __future__ import annotations

import atexit
import os
import secrets
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np

__all__ = ["Slab", "create", "attach", "active_segments", "SHM_PREFIX"]

#: Every segment this repo creates carries this name prefix, so leak scans
#: never confuse our slabs with segments owned by other software.
SHM_PREFIX = "repro_shm_"

_DEV_SHM = Path("/dev/shm")

#: Creator-side registry: slabs to unlink at interpreter exit, guarded by the
#: creating pid so forked children inheriting this module state do nothing.
_OWNED: dict[str, "Slab"] = {}
_OWNER_PID = os.getpid()


class Slab:
    """One shared-memory segment viewed as a numpy array.

    ``owner=True`` means this process created the segment and is responsible
    for unlinking it; attachers only ever close their local mapping.
    """

    def __init__(self, shm: shared_memory.SharedMemory, shape: tuple,
                 dtype: np.dtype, owner: bool) -> None:
        self._shm = shm
        self.name = shm.name
        self.shape = tuple(shape)
        self.dtype = np.dtype(dtype)
        self.owner = owner
        self.array = np.ndarray(self.shape, dtype=self.dtype, buffer=shm.buf)

    def close(self) -> None:
        """Drop the local mapping; the owner also unlinks the segment."""
        self.array = None
        try:
            self._shm.close()
        except (OSError, ValueError):  # pragma: no cover - already gone
            pass
        if self.owner:
            _OWNED.pop(self.name, None)
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double unlink
                pass

    def __repr__(self) -> str:
        return (f"Slab({self.name!r}, shape={self.shape}, "
                f"dtype={self.dtype}, owner={self.owner})")


def create(shape: tuple, dtype=np.float64) -> Slab:
    """Create a zero-initialised named slab owned by this process."""
    dtype = np.dtype(dtype)
    nbytes = max(1, int(np.prod(shape)) * dtype.itemsize)
    name = SHM_PREFIX + secrets.token_hex(8)
    shm = shared_memory.SharedMemory(name=name, create=True, size=nbytes)
    slab = Slab(shm, shape, dtype, owner=True)
    slab.array.fill(0)
    _OWNED[slab.name] = slab
    return slab


def attach(name: str, shape: tuple, dtype=np.float64) -> Slab:
    """Open an existing slab by name without resource-tracker registration.

    On Python < 3.13 (no ``track=False``) registration is *suppressed*, not
    undone: forked attachers share the creator's tracker process, so a
    register-then-unregister pair from a child would delete the **creator's**
    entry and turn the owner's eventual unlink into a tracker error.
    """
    try:
        shm = shared_memory.SharedMemory(name=name, create=False, track=False)
    except TypeError:
        from multiprocessing import resource_tracker

        original = resource_tracker.register

        def _skip_shm(rname, rtype):  # pragma: no cover - py<3.13 only
            if rtype != "shared_memory":
                original(rname, rtype)

        resource_tracker.register = _skip_shm
        try:
            shm = shared_memory.SharedMemory(name=name, create=False)
        finally:
            resource_tracker.register = original
    return Slab(shm, shape, np.dtype(dtype), owner=False)


def active_segments() -> set[str]:
    """Names of live ``/dev/shm`` segments created by this module."""
    if not _DEV_SHM.is_dir():  # pragma: no cover - non-Linux
        return set()
    return {p.name for p in _DEV_SHM.iterdir()
            if p.name.startswith(SHM_PREFIX)}


@atexit.register
def _cleanup_owned() -> None:  # pragma: no cover - interpreter teardown
    if os.getpid() != _OWNER_PID:
        return  # forked child inheriting the registry: not the owner
    for slab in list(_OWNED.values()):
        slab.close()
