"""Real multi-process sharded parameter server + embedding service.

Unlike :mod:`repro.distributed.simulator` (an analytic cost model), this
package runs *actual* worker processes: parameter rows are hash-sharded
across ``multiprocessing`` workers backed by named shared-memory slabs, and
the serving tier fronts a pool of shard-server processes with zero-IPC
reads.  The multiprocess test harness pins the whole thing to the
single-process reference implementation.
"""

from repro.distributed.sharded import shm
from repro.distributed.sharded.layout import FieldLayout, build_field_layout
from repro.distributed.sharded.service import ShardedEmbeddingService
from repro.distributed.sharded.shm import (SHM_PREFIX, Slab, active_segments,
                                           attach, create)
from repro.distributed.sharded.trainer import (ShardedTrainer,
                                               WorkerDiedError,
                                               adam_sparse_row_update)

__all__ = ["FieldLayout", "build_field_layout", "ShardedEmbeddingService",
           "SHM_PREFIX", "Slab", "active_segments", "attach", "create",
           "ShardedTrainer", "WorkerDiedError", "adam_sparse_row_update",
           "shm"]
