"""Distributed training: the analytic speedup simulator and the real thing.

``repro.distributed.simulator`` predicts multi-worker scaling from single
worker measurements (Fig 10); :mod:`repro.distributed.sharded` actually runs
it — a multi-process sharded parameter server plus a sharded embedding
service, pinned against the single-process reference by the multiprocess
test harness.
"""

from repro.distributed.parameter_server import ParameterServerCost
from repro.distributed.sharded import (ShardedEmbeddingService,
                                       ShardedTrainer, WorkerDiedError)
from repro.distributed.simulator import (CommunicationModel,
                                         DistributedTrainingSimulator,
                                         WorkerMeasurement)

__all__ = ["CommunicationModel", "ParameterServerCost",
           "DistributedTrainingSimulator", "WorkerMeasurement",
           "ShardedEmbeddingService", "ShardedTrainer", "WorkerDiedError"]
