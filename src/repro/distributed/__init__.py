"""Data-parallel training simulation for the distributed speedup study."""

from repro.distributed.parameter_server import ParameterServerCost
from repro.distributed.simulator import (CommunicationModel,
                                         DistributedTrainingSimulator,
                                         WorkerMeasurement)

__all__ = ["CommunicationModel", "ParameterServerCost",
           "DistributedTrainingSimulator", "WorkerMeasurement"]
