"""Parameter-server synchronisation cost model.

The paper's production training runs on a parameter-server (PS)
architecture: workers *pull* the embedding rows their batch touches and
*push* row-sparse gradients back, while dense parameters replicate everywhere.
Compared to ring-allreduce, PS traffic scales with the *touched rows per
batch* (tiny, thanks to the batched softmax) rather than with the full model,
but the servers' aggregate bandwidth is shared across workers.

Use this as the ``comm`` argument of
:class:`repro.distributed.DistributedTrainingSimulator` to study the
architecture the paper actually deployed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["ParameterServerCost"]


@dataclass(frozen=True)
class ParameterServerCost:
    """Per-step synchronisation cost of a PS deployment.

    Attributes
    ----------
    n_servers:
        Parameter-server processes sharing the load.
    latency_seconds:
        Round-trip request latency per step (pull + push pipelined).
    server_bandwidth_bytes_per_second:
        Aggregate network bandwidth *per server*.
    touched_row_bytes:
        Bytes pulled + pushed per worker per step (embedding rows touched by
        the batch; small because of the batched softmax).
    dense_bytes:
        Bytes of dense (replicated) parameters synchronised per step.
    """

    n_servers: int = 2
    latency_seconds: float = 1e-3
    server_bandwidth_bytes_per_second: float = 1.25e9
    touched_row_bytes: float = 2e6
    dense_bytes: float = 0.0

    def __post_init__(self) -> None:
        if self.n_servers <= 0:
            raise ValueError(f"n_servers must be positive: {self.n_servers}")
        if self.server_bandwidth_bytes_per_second <= 0:
            raise ValueError("server bandwidth must be positive")

    def sync_cost(self, n_workers: int, gradient_bytes: float) -> float:
        """Cost of one synchronised step with ``n_workers`` workers.

        ``gradient_bytes`` (the simulator's dense-parameter estimate) is added
        to the configured ``dense_bytes``; all traffic funnels through the
        shared server pool, so per-step transfer time grows linearly in the
        worker count once the servers saturate.
        """
        if n_workers <= 1:
            return 0.0
        per_worker = 2.0 * self.touched_row_bytes + self.dense_bytes \
            + gradient_bytes
        aggregate = per_worker * n_workers
        transfer = aggregate / (self.n_servers
                                * self.server_bandwidth_bytes_per_second)
        return self.latency_seconds + transfer

    def degraded(self, n_down: int) -> "ParameterServerCost":
        """The cost model after losing ``n_down`` servers.

        Surviving servers absorb the lost shards (consistent-hash
        re-replication), so aggregate bandwidth shrinks while traffic stays
        constant — sync cost rises accordingly.  At least one server always
        survives; losing the whole pool is a job failure, not a degradation.
        """
        if n_down < 0:
            raise ValueError(f"n_down must be non-negative: {n_down}")
        return replace(self, n_servers=max(1, self.n_servers - n_down))
