"""Simulated data-parallel distributed training (§V-E3, Fig 10).

The paper trains the FVAE on 3–12 Tencent Cloud servers and reports
near-linear speedup.  No cluster is available here, so the simulator combines
*measured* computation with a *modelled* synchronisation cost:

1. the user set is sharded evenly across ``W`` simulated workers;
2. each worker's shard is trained **for real** (in-process, sequentially) and
   its wall-clock compute time measured;
3. synchronous data-parallel wall-clock is reconstructed as
   ``max_w compute_w + steps · sync_cost(W)`` where the sync cost follows a
   ring-allreduce model (latency + gradient bytes over bandwidth).

Speedup ratios — the quantity Fig 10 plots — therefore reflect the real
compute profile of the implementation, with only the network modelled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.trainer import Trainer
from repro.data.dataset import MultiFieldDataset
from repro.resilience.faults import (FaultConfig, FaultKind, FaultSchedule,
                                     FaultyRunResult, simulate_faulty_run)
from repro.utils.rng import new_rng

__all__ = ["CommunicationModel", "WorkerMeasurement", "DistributedTrainingSimulator"]


@dataclass(frozen=True)
class CommunicationModel:
    """Ring-allreduce synchronisation cost model.

    ``cost = latency · (W − 1) + 2·(W−1)/W · bytes / bandwidth`` per step.
    """

    latency_seconds: float = 2e-4
    bandwidth_bytes_per_second: float = 1.25e9  # ~10 Gbit/s

    def sync_cost(self, n_workers: int, gradient_bytes: float) -> float:
        if n_workers <= 1:
            return 0.0
        transfer = 2.0 * (n_workers - 1) / n_workers * gradient_bytes \
            / self.bandwidth_bytes_per_second
        return self.latency_seconds * (n_workers - 1) + transfer


@dataclass
class WorkerMeasurement:
    """Result of simulating one cluster size."""

    n_workers: int
    compute_seconds: list[float]
    steps: int
    sync_seconds: float

    @property
    def wall_clock(self) -> float:
        return max(self.compute_seconds) + self.sync_seconds


class DistributedTrainingSimulator:
    """Measure simulated data-parallel wall-clock across cluster sizes.

    Parameters
    ----------
    model_factory:
        Zero-argument callable returning a fresh trainable model (must expose
        ``loss_on_batch`` / ``parameters``).  A fresh model per worker keeps
        measurements independent.
    dataset:
        Full training set to shard.
    comm:
        Synchronisation cost model.
    gradient_bytes:
        Bytes exchanged per step; ``None`` estimates it from the model's
        dense parameters (sparse embedding rows travel via the parameter
        server and are excluded, as in the paper's setup).
    """

    def __init__(self, model_factory: Callable[[], object],
                 dataset: MultiFieldDataset,
                 comm: CommunicationModel | None = None,
                 gradient_bytes: float | None = None,
                 measure_all_workers: bool = False) -> None:
        self.model_factory = model_factory
        self.dataset = dataset
        self.comm = comm or CommunicationModel()
        self.gradient_bytes = gradient_bytes
        self.measure_all_workers = measure_all_workers

    def _dense_gradient_bytes(self, model) -> float:
        total = 0
        for p in model.parameters():
            if not getattr(p, "sparse", False):
                total += p.size
        return float(total * 8)

    def measure(self, n_workers: int, epochs: int = 1, batch_size: int = 512,
                lr: float = 1e-3,
                rng: np.random.Generator | int | None = 0) -> WorkerMeasurement:
        """Train each worker's shard and reconstruct synchronous wall-clock."""
        if n_workers <= 0:
            raise ValueError(f"n_workers must be positive: {n_workers}")
        rng = new_rng(rng)
        order = rng.permutation(self.dataset.n_users)
        shards = np.array_split(order, n_workers)

        compute_times: list[float] = []
        steps = 0
        grad_bytes = self.gradient_bytes
        to_measure = range(n_workers) if self.measure_all_workers else [0]
        for w in to_measure:
            shard = self.dataset.subset(shards[w])
            model = self.model_factory()
            if grad_bytes is None:
                grad_bytes = self._dense_gradient_bytes(model)
            trainer = Trainer(model, lr=lr)
            history = trainer.fit(shard, epochs=epochs, batch_size=batch_size,
                                  rng=rng)
            compute_times.append(history.total_time)
            steps = max(steps, epochs * (-(-len(shard) // batch_size)))
        if not self.measure_all_workers:
            # shards are equal-sized; reuse the measured time for all workers
            compute_times = compute_times * n_workers

        sync = steps * self.comm.sync_cost(n_workers, grad_bytes or 0.0)
        return WorkerMeasurement(n_workers=n_workers,
                                 compute_seconds=compute_times,
                                 steps=steps, sync_seconds=sync)

    def measure_with_faults(self, n_workers: int,
                            faults: FaultConfig | FaultSchedule,
                            strategy: str, epochs: int = 1,
                            batch_size: int = 512, lr: float = 1e-3,
                            rng: np.random.Generator | int | None = 0,
                            checkpoint_interval: int = 50,
                            checkpoint_write_seconds: float | None = None,
                            restart_seconds: float | None = None,
                            ) -> FaultyRunResult:
        """Wall-clock of one cluster size under an injected fault schedule.

        Extends :meth:`measure` the same way :meth:`measure` extends a real
        run: the per-step compute cost is *measured* (shard training), while
        faults and recovery are *modelled* by
        :func:`repro.resilience.simulate_faulty_run`.  ``faults`` is either a
        ready-made :class:`FaultSchedule` or a :class:`FaultConfig` to draw
        one from (seeded — same config, same schedule).  Server-crash events
        degrade the sync cost from that step onward when the communication
        model supports :meth:`degraded` (:class:`ParameterServerCost`).

        ``checkpoint_write_seconds`` and ``restart_seconds`` default to 2×
        and 10× the measured per-step compute time respectively, so overhead
        percentages stay meaningful whether the shards train in milliseconds
        (tests) or minutes (benchmarks).
        """
        base = self.measure(n_workers, epochs=epochs, batch_size=batch_size,
                            lr=lr, rng=rng)
        n_steps = base.steps
        if isinstance(faults, FaultConfig):
            schedule = FaultSchedule.generate(n_steps, n_workers, faults)
        else:
            schedule = faults
            if schedule.n_steps != n_steps or schedule.n_workers != n_workers:
                raise ValueError(
                    f"schedule was generated for "
                    f"{schedule.n_steps}x{schedule.n_workers}, run is "
                    f"{n_steps}x{n_workers}")
        step_seconds = max(base.compute_seconds) / n_steps if n_steps else 0.0
        if checkpoint_write_seconds is None:
            checkpoint_write_seconds = 2.0 * step_seconds
        if restart_seconds is None:
            restart_seconds = 10.0 * step_seconds

        grad_bytes = self.gradient_bytes
        if grad_bytes is None:
            grad_bytes = self._dense_gradient_bytes(self.model_factory())
        base_sync = self.comm.sync_cost(n_workers, grad_bytes)
        sync = np.full(n_steps, base_sync)
        if hasattr(self.comm, "degraded"):
            n_down = 0
            for event in schedule.events:
                if event.kind == FaultKind.SERVER_CRASH:
                    n_down += 1
                    sync[event.step:] = self.comm.degraded(n_down).sync_cost(
                        n_workers, grad_bytes)
        return simulate_faulty_run(
            step_seconds=step_seconds, n_steps=n_steps, n_workers=n_workers,
            schedule=schedule, strategy=strategy, sync_seconds=sync,
            checkpoint_interval=checkpoint_interval,
            checkpoint_write_seconds=checkpoint_write_seconds,
            restart_seconds=restart_seconds,
            crash_detection_seconds=0.5 * step_seconds,
            baseline_sync_seconds=base_sync)

    def speedup_curve(self, worker_counts: list[int], epochs: int = 1,
                      batch_size: int = 512, lr: float = 1e-3,
                      rng: np.random.Generator | int | None = 0,
                      ) -> dict[int, float]:
        """Speedup vs single-worker wall-clock for each cluster size (Fig 10)."""
        baseline = self.measure(1, epochs=epochs, batch_size=batch_size,
                                lr=lr, rng=rng).wall_clock
        out: dict[int, float] = {}
        for w in worker_counts:
            wall = self.measure(w, epochs=epochs, batch_size=batch_size,
                                lr=lr, rng=rng).wall_clock
            out[w] = baseline / wall if wall > 0 else float("inf")
        return out
