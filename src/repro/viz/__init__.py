"""Visualization utilities: t-SNE embedding and cluster-quality metrics."""

from repro.viz.tsne import TSNE, silhouette_score, topic_separation_report
from repro.viz.tables import format_table, format_series

__all__ = ["TSNE", "silhouette_score", "topic_separation_report",
           "format_table", "format_series"]
