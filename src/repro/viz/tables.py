"""Plain-text table/series rendering for the benchmark harness.

The benchmarks regenerate the paper's tables and figures as text: tables as
aligned columns, figures as (x, y) series.  No plotting dependency is
available offline, so "figures" are rendered as data series plus a coarse
ASCII sparkline for quick visual inspection.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

__all__ = ["format_table", "format_series"]

_BLOCKS = "▁▂▃▄▅▆▇█"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str | None = None, float_fmt: str = "{:.4f}") -> str:
    """Render rows as an aligned monospaced table."""
    def fmt(value: object) -> str:
        if isinstance(value, float):
            return float_fmt.format(value)
        return str(value)

    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
              for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _sparkline(values: Sequence[float]) -> str:
    arr = np.asarray([v for v in values if np.isfinite(v)], dtype=np.float64)
    if arr.size == 0:
        return ""
    lo, hi = arr.min(), arr.max()
    span = hi - lo
    out = []
    for v in values:
        if not np.isfinite(v):
            out.append("?")
            continue
        level = 0 if span == 0 else int((v - lo) / span * (len(_BLOCKS) - 1))
        out.append(_BLOCKS[level])
    return "".join(out)


def format_series(x: Sequence[object], series: Mapping[str, Sequence[float]],
                  x_label: str = "x", title: str | None = None,
                  float_fmt: str = "{:.4f}") -> str:
    """Render one or more named y-series over a shared x-axis, with sparklines."""
    headers = [x_label] + list(series)
    rows = []
    for i, xv in enumerate(x):
        rows.append([xv] + [s[i] for s in series.values()])
    table = format_table(headers, rows, title=title, float_fmt=float_fmt)
    sparks = "\n".join(f"  {name:<20} {_sparkline(vals)}"
                       for name, vals in series.items())
    return f"{table}\n{sparks}"
