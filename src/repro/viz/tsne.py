"""Exact t-SNE (van der Maaten & Hinton, 2008) and cluster-quality metrics.

The paper's Fig 4 maps FVAE embeddings of 1000 users from 3 topics into 2-D
with t-SNE and observes cleanly separated clusters.  This is a from-scratch
exact (O(N²)) implementation — adequate for the ~1000-point case study — plus
a silhouette score so "clear cluster boundaries" becomes a measurable claim.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import new_rng

__all__ = ["TSNE", "silhouette_score", "topic_separation_report"]


def _pairwise_sq_dists(x: np.ndarray) -> np.ndarray:
    sq = np.sum(x ** 2, axis=1)
    d2 = sq[:, None] - 2.0 * (x @ x.T) + sq[None, :]
    np.fill_diagonal(d2, 0.0)
    return np.maximum(d2, 0.0)


def _binary_search_perplexity(d2_row: np.ndarray, target_entropy: float,
                              tol: float = 1e-5, max_iter: int = 50,
                              ) -> np.ndarray:
    """Find the Gaussian kernel precision matching the target perplexity."""
    beta, beta_min, beta_max = 1.0, -np.inf, np.inf
    p = np.zeros_like(d2_row)
    for __ in range(max_iter):
        p = np.exp(-d2_row * beta)
        total = p.sum()
        if total <= 0:
            h = 0.0
            p = np.full_like(d2_row, 1.0 / d2_row.size)
        else:
            p /= total
            h = -np.sum(p[p > 0] * np.log(p[p > 0]))
        diff = h - target_entropy
        if abs(diff) < tol:
            break
        if diff > 0:       # entropy too high -> narrow the kernel
            beta_min = beta
            beta = beta * 2.0 if beta_max == np.inf else (beta + beta_max) / 2.0
        else:
            beta_max = beta
            beta = beta / 2.0 if beta_min == -np.inf else (beta + beta_min) / 2.0
    return p


class TSNE:
    """Exact t-SNE to ``n_components`` dimensions.

    Parameters follow the reference implementation: perplexity-calibrated
    input affinities, early exaggeration, momentum-switched gradient descent.
    """

    def __init__(self, n_components: int = 2, perplexity: float = 30.0,
                 n_iter: int = 400, learning_rate: float = 200.0,
                 early_exaggeration: float = 12.0, exaggeration_iter: int = 100,
                 seed: int | np.random.Generator | None = 0) -> None:
        if n_components <= 0:
            raise ValueError(f"n_components must be positive: {n_components}")
        if perplexity <= 1:
            raise ValueError(f"perplexity must exceed 1: {perplexity}")
        self.n_components = n_components
        self.perplexity = perplexity
        self.n_iter = n_iter
        self.learning_rate = learning_rate
        self.early_exaggeration = early_exaggeration
        self.exaggeration_iter = exaggeration_iter
        self.seed = seed

    def _input_affinities(self, x: np.ndarray) -> np.ndarray:
        n = x.shape[0]
        d2 = _pairwise_sq_dists(x)
        target_entropy = np.log(min(self.perplexity, n - 1))
        p = np.zeros((n, n))
        mask = ~np.eye(n, dtype=bool)
        for i in range(n):
            row = _binary_search_perplexity(d2[i][mask[i]], target_entropy)
            p[i][mask[i]] = row
        p = (p + p.T) / (2.0 * n)
        return np.maximum(p, 1e-12)

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        """Embed ``x`` (``(N, D)``) into ``(N, n_components)``."""
        x = np.asarray(x, dtype=np.float64)
        n = x.shape[0]
        if n < 3:
            raise ValueError("t-SNE needs at least 3 points")
        rng = new_rng(self.seed)
        p = self._input_affinities(x) * self.early_exaggeration

        # PCA init stabilises layouts across runs.
        centered = x - x.mean(axis=0)
        __, __, vt = np.linalg.svd(centered, full_matrices=False)
        y = centered @ vt[: self.n_components].T
        y = y / max(y.std(), 1e-12) * 1e-4
        y += rng.normal(0.0, 1e-6, size=y.shape)

        update = np.zeros_like(y)
        gains = np.ones_like(y)
        for it in range(self.n_iter):
            d2 = _pairwise_sq_dists(y)
            num = 1.0 / (1.0 + d2)
            np.fill_diagonal(num, 0.0)
            q = np.maximum(num / num.sum(), 1e-12)
            pq = (p - q) * num
            grad = 4.0 * ((np.diag(pq.sum(axis=1)) - pq) @ y)

            momentum = 0.5 if it < 250 else 0.8
            same_sign = np.sign(grad) == np.sign(update)
            gains = np.where(same_sign, gains * 0.8, gains + 0.2).clip(min=0.01)
            update = momentum * update - self.learning_rate * gains * grad
            y = y + update
            y = y - y.mean(axis=0)
            if it == self.exaggeration_iter:
                p = p / self.early_exaggeration
        return y


def silhouette_score(x: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient over points (−1 … 1, higher = better split)."""
    x = np.asarray(x, dtype=np.float64)
    labels = np.asarray(labels)
    classes = np.unique(labels)
    if classes.size < 2:
        raise ValueError("silhouette requires at least two clusters")
    d = np.sqrt(_pairwise_sq_dists(x))
    scores = np.zeros(x.shape[0])
    for i in range(x.shape[0]):
        same = labels == labels[i]
        n_same = same.sum()
        a = d[i][same].sum() / (n_same - 1) if n_same > 1 else 0.0
        b = min(d[i][labels == c].mean() for c in classes if c != labels[i])
        denom = max(a, b)
        scores[i] = (b - a) / denom if denom > 0 else 0.0
    return float(scores.mean())


def topic_separation_report(embedding_2d: np.ndarray, labels: np.ndarray,
                            ) -> dict[str, float]:
    """Quantitative companion to Fig 4: silhouette + centroid distance ratio."""
    labels = np.asarray(labels)
    classes = np.unique(labels)
    centroids = np.stack([embedding_2d[labels == c].mean(axis=0) for c in classes])
    intra = np.mean([
        np.linalg.norm(embedding_2d[labels == c] - centroids[k], axis=1).mean()
        for k, c in enumerate(classes)])
    if classes.size > 1:
        inter = np.mean([np.linalg.norm(centroids[i] - centroids[j])
                         for i in range(classes.size)
                         for j in range(i + 1, classes.size)])
    else:
        inter = 0.0
    return {
        "silhouette": silhouette_score(embedding_2d, labels),
        "intra_cluster_spread": float(intra),
        "inter_centroid_distance": float(inter),
        "separation_ratio": float(inter / intra) if intra > 0 else float("inf"),
    }
