"""Batched-softmax candidate selection and feature-sampling strategies."""

from repro.sampling.strategies import (FeatureSampler, FrequencySampler,
                                       UniformSampler, ZipfianSampler,
                                       get_sampler, select_candidates)

__all__ = [
    "FeatureSampler", "UniformSampler", "FrequencySampler", "ZipfianSampler",
    "get_sampler", "select_candidates",
]
