"""Batched-softmax candidate selection and feature-sampling strategies."""

from repro.sampling.strategies import (CodebookSampler, FeatureSampler,
                                       FrequencySampler, UniformSampler,
                                       ZipfianSampler, get_sampler,
                                       select_candidates)

__all__ = [
    "FeatureSampler", "UniformSampler", "FrequencySampler", "ZipfianSampler",
    "CodebookSampler", "get_sampler", "select_candidates",
]
