"""Feature sampling strategies for the batched softmax (§IV-C2/C3, Fig 5).

The batched softmax first restricts the decoder's output space to the features
observed in the current batch (:func:`select_candidates` with ``rate=1``).
For super-sparse fields the paper samples that candidate set down further with
rate ``r``; three strategies are compared in Fig 5:

* **Uniform** — ignore in-batch frequency, keep each candidate with equal
  probability (the paper's proposal, and the best performer).
* **Frequency** — keep candidates proportionally to their in-batch frequency.
* **Zipfian** — rank candidates by decreasing frequency and keep them
  according to an approximately Zipfian law over ranks (the classic
  log-uniform candidate sampler).

All strategies draw exactly ``max(1, round(r·|C|))`` candidates without
replacement, so comparisons at equal ``r`` are cost-matched.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import FieldBatch
from repro.obs import runtime as obs
from repro.utils.rng import new_rng

__all__ = ["FeatureSampler", "UniformSampler", "FrequencySampler",
           "ZipfianSampler", "CodebookSampler", "get_sampler",
           "select_candidates"]


def _weighted_sample_without_replacement(candidates: np.ndarray,
                                         weights: np.ndarray, n: int,
                                         rng: np.random.Generator) -> np.ndarray:
    """Efraimidis–Spirakis reservoir keys: top-n of ``u^(1/w)``."""
    weights = np.maximum(weights, 1e-12)
    keys = rng.random(candidates.size) ** (1.0 / weights)
    top = np.argpartition(-keys, n - 1)[:n]
    return candidates[top]


class FeatureSampler:
    """Base class: choose which batch candidates stay in the softmax."""

    name = "base"

    def sample(self, candidates: np.ndarray, frequencies: np.ndarray,
               rate: float, rng: np.random.Generator) -> np.ndarray:
        """Return a sorted subset of ``candidates``.

        Parameters
        ----------
        candidates:
            Sorted distinct feature ids observed in the batch.
        frequencies:
            In-batch occurrence count of each candidate (same length).
        rate:
            Sampling rate ``r`` in (0, 1]; 1 keeps everything.
        """
        if not 0.0 < rate <= 1.0:
            raise ValueError(f"sampling rate must be in (0, 1]: {rate}")
        if candidates.size == 0 or rate >= 1.0:
            return candidates
        n = max(1, int(round(rate * candidates.size)))
        return np.sort(self._draw(candidates, frequencies, n, rng))

    def _draw(self, candidates: np.ndarray, frequencies: np.ndarray,
              n: int, rng: np.random.Generator) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class UniformSampler(FeatureSampler):
    """Keep candidates uniformly at random (the paper's strategy)."""

    name = "uniform"

    def _draw(self, candidates, frequencies, n, rng):
        return rng.choice(candidates, size=n, replace=False)


class FrequencySampler(FeatureSampler):
    """Keep candidates proportionally to their in-batch frequency."""

    name = "frequency"

    def _draw(self, candidates, frequencies, n, rng):
        return _weighted_sample_without_replacement(
            candidates, frequencies.astype(np.float64), n, rng)


class ZipfianSampler(FeatureSampler):
    """Keep candidates with probability ~Zipfian over frequency rank.

    Probability of the candidate at (0-based) rank ``k`` is proportional to
    ``log(k+2) − log(k+1)`` — the log-uniform sampler used by sampled-softmax
    implementations, which strongly prefers the most frequent features.
    """

    name = "zipfian"

    def _draw(self, candidates, frequencies, n, rng):
        order = np.argsort(-frequencies, kind="stable")
        ranks = np.empty_like(order)
        ranks[order] = np.arange(order.size)
        weights = np.log((ranks + 2.0) / (ranks + 1.0))
        return _weighted_sample_without_replacement(candidates, weights, n, rng)


class CodebookSampler(FeatureSampler):
    """Draw candidates balanced across coarse-quantizer cells (FastVAE-style).

    FastVAE's training-side result is that the codebook built for retrieval
    doubles as a negative-sampling structure: partition the feature
    embeddings with the same seeded k-means the IVF index uses
    (:func:`repro.lookalike.quant.kmeans`) and weight each candidate by the
    inverse of its cell's population, so kept candidates spread across
    embedding-space regions instead of piling into the densest cluster.
    Features the codebook has never seen fall back to weight 1 (their own
    singleton cell).

    Off by default everywhere — it needs trained feature embeddings, so it
    is constructed explicitly (``get_sampler("codebook",
    embeddings=...)``) rather than by bare name, and ships as an
    ablation-benched alternative, not a config default.
    """

    name = "codebook"

    def __init__(self, embeddings: np.ndarray, n_cells: int = 16,
                 seed: int = 0, n_iters: int = 10) -> None:
        from repro.lookalike.quant import kmeans

        embeddings = np.asarray(embeddings, dtype=np.float64)
        if embeddings.ndim != 2 or embeddings.shape[0] == 0:
            raise ValueError("embeddings must be a non-empty (n, d) matrix")
        n_cells = min(n_cells, embeddings.shape[0])
        __, assign = kmeans(embeddings, n_cells, seed=seed, n_iters=n_iters)
        self.n_cells = n_cells
        self._cell_of = assign
        self._cell_size = np.bincount(assign, minlength=n_cells).astype(
            np.float64)

    def _draw(self, candidates, frequencies, n, rng):
        known = candidates < self._cell_of.shape[0]
        weights = np.ones(candidates.size, dtype=np.float64)
        cells = self._cell_of[candidates[known]]
        weights[known] = 1.0 / self._cell_size[cells]
        return _weighted_sample_without_replacement(candidates, weights, n, rng)


_SAMPLERS = {
    "uniform": UniformSampler,
    "frequency": FrequencySampler,
    "zipfian": ZipfianSampler,
    "codebook": CodebookSampler,
}


def get_sampler(name: str, **kwargs) -> FeatureSampler:
    """Instantiate a sampler by name.

    ``uniform`` / ``frequency`` / ``zipfian`` take no arguments;
    ``codebook`` requires ``embeddings=`` (and accepts ``n_cells``,
    ``seed``, ``n_iters``).
    """
    key = name.lower()
    if key not in _SAMPLERS:
        raise KeyError(f"unknown sampler '{name}'; available: {sorted(_SAMPLERS)}")
    return _SAMPLERS[key](**kwargs)


def select_candidates(batch_field: FieldBatch, rate: float = 1.0,
                      sampler: FeatureSampler | None = None,
                      rng: np.random.Generator | int | None = None,
                      field: str | None = None) -> np.ndarray:
    """Full batched-softmax candidate selection for one field.

    Step 1 (batched softmax): restrict to features observed by at least one
    user in the batch.  Step 2 (feature sampling): sample that set down with
    ``rate`` using ``sampler`` (defaults to uniform).  ``field`` only labels
    the candidate-size telemetry (``sampling.candidates`` / ``sampling.kept``
    histograms).
    """
    candidates, frequencies = batch_field.unique_with_counts()
    if rate >= 1.0 or candidates.size == 0:
        if obs.enabled():
            label = field or "anon"
            obs.observe("sampling.candidates", candidates.size, field=label)
            obs.observe("sampling.kept", candidates.size, field=label)
        return candidates
    sampler = sampler or UniformSampler()
    kept = sampler.sample(candidates, frequencies, rate, new_rng(rng))
    if obs.enabled():
        label = field or "anon"
        obs.observe("sampling.candidates", candidates.size, field=label)
        obs.observe("sampling.kept", kept.size, field=label)
    return kept
