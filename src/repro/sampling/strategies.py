"""Feature sampling strategies for the batched softmax (§IV-C2/C3, Fig 5).

The batched softmax first restricts the decoder's output space to the features
observed in the current batch (:func:`select_candidates` with ``rate=1``).
For super-sparse fields the paper samples that candidate set down further with
rate ``r``; three strategies are compared in Fig 5:

* **Uniform** — ignore in-batch frequency, keep each candidate with equal
  probability (the paper's proposal, and the best performer).
* **Frequency** — keep candidates proportionally to their in-batch frequency.
* **Zipfian** — rank candidates by decreasing frequency and keep them
  according to an approximately Zipfian law over ranks (the classic
  log-uniform candidate sampler).

All strategies draw exactly ``max(1, round(r·|C|))`` candidates without
replacement, so comparisons at equal ``r`` are cost-matched.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import FieldBatch
from repro.obs import runtime as obs
from repro.utils.rng import new_rng

__all__ = ["FeatureSampler", "UniformSampler", "FrequencySampler",
           "ZipfianSampler", "get_sampler", "select_candidates"]


def _weighted_sample_without_replacement(candidates: np.ndarray,
                                         weights: np.ndarray, n: int,
                                         rng: np.random.Generator) -> np.ndarray:
    """Efraimidis–Spirakis reservoir keys: top-n of ``u^(1/w)``."""
    weights = np.maximum(weights, 1e-12)
    keys = rng.random(candidates.size) ** (1.0 / weights)
    top = np.argpartition(-keys, n - 1)[:n]
    return candidates[top]


class FeatureSampler:
    """Base class: choose which batch candidates stay in the softmax."""

    name = "base"

    def sample(self, candidates: np.ndarray, frequencies: np.ndarray,
               rate: float, rng: np.random.Generator) -> np.ndarray:
        """Return a sorted subset of ``candidates``.

        Parameters
        ----------
        candidates:
            Sorted distinct feature ids observed in the batch.
        frequencies:
            In-batch occurrence count of each candidate (same length).
        rate:
            Sampling rate ``r`` in (0, 1]; 1 keeps everything.
        """
        if not 0.0 < rate <= 1.0:
            raise ValueError(f"sampling rate must be in (0, 1]: {rate}")
        if candidates.size == 0 or rate >= 1.0:
            return candidates
        n = max(1, int(round(rate * candidates.size)))
        return np.sort(self._draw(candidates, frequencies, n, rng))

    def _draw(self, candidates: np.ndarray, frequencies: np.ndarray,
              n: int, rng: np.random.Generator) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class UniformSampler(FeatureSampler):
    """Keep candidates uniformly at random (the paper's strategy)."""

    name = "uniform"

    def _draw(self, candidates, frequencies, n, rng):
        return rng.choice(candidates, size=n, replace=False)


class FrequencySampler(FeatureSampler):
    """Keep candidates proportionally to their in-batch frequency."""

    name = "frequency"

    def _draw(self, candidates, frequencies, n, rng):
        return _weighted_sample_without_replacement(
            candidates, frequencies.astype(np.float64), n, rng)


class ZipfianSampler(FeatureSampler):
    """Keep candidates with probability ~Zipfian over frequency rank.

    Probability of the candidate at (0-based) rank ``k`` is proportional to
    ``log(k+2) − log(k+1)`` — the log-uniform sampler used by sampled-softmax
    implementations, which strongly prefers the most frequent features.
    """

    name = "zipfian"

    def _draw(self, candidates, frequencies, n, rng):
        order = np.argsort(-frequencies, kind="stable")
        ranks = np.empty_like(order)
        ranks[order] = np.arange(order.size)
        weights = np.log((ranks + 2.0) / (ranks + 1.0))
        return _weighted_sample_without_replacement(candidates, weights, n, rng)


_SAMPLERS = {
    "uniform": UniformSampler,
    "frequency": FrequencySampler,
    "zipfian": ZipfianSampler,
}


def get_sampler(name: str) -> FeatureSampler:
    """Instantiate a sampler by name (``uniform`` / ``frequency`` / ``zipfian``)."""
    key = name.lower()
    if key not in _SAMPLERS:
        raise KeyError(f"unknown sampler '{name}'; available: {sorted(_SAMPLERS)}")
    return _SAMPLERS[key]()


def select_candidates(batch_field: FieldBatch, rate: float = 1.0,
                      sampler: FeatureSampler | None = None,
                      rng: np.random.Generator | int | None = None,
                      field: str | None = None) -> np.ndarray:
    """Full batched-softmax candidate selection for one field.

    Step 1 (batched softmax): restrict to features observed by at least one
    user in the batch.  Step 2 (feature sampling): sample that set down with
    ``rate`` using ``sampler`` (defaults to uniform).  ``field`` only labels
    the candidate-size telemetry (``sampling.candidates`` / ``sampling.kept``
    histograms).
    """
    candidates, frequencies = batch_field.unique_with_counts()
    if rate >= 1.0 or candidates.size == 0:
        if obs.enabled():
            label = field or "anon"
            obs.observe("sampling.candidates", candidates.size, field=label)
            obs.observe("sampling.kept", candidates.size, field=label)
        return candidates
    sampler = sampler or UniformSampler()
    kept = sampler.sample(candidates, frequencies, rate, new_rng(rng))
    if obs.enabled():
        label = field or "anon"
        obs.observe("sampling.candidates", candidates.size, field=label)
        obs.observe("sampling.kept", kept.size, field=label)
    return kept
