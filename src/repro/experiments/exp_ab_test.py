"""Table VI — online A/B test in the look-alike system (simulated).

Control arm: skip-gram (Item2Vec) user embeddings — the paper's baseline.
Treatment arm: FVAE embeddings.  Both arms recall uploader accounts by
average-pooled follower embeddings + L2 similarity and are scored by the same
behaviour simulator.  Expected shape: positive relative change on every
metric, largest on #Following Click.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import Item2Vec
from repro.core import FVAE
from repro.data import make_qb_like
from repro.experiments.common import ExperimentScale, fvae_config_for
from repro.lookalike import ABTestReport, OnlineABTest, UploaderBehaviorSimulator

__all__ = ["Table6Result", "run_table6"]


@dataclass
class Table6Result:
    report: ABTestReport

    def to_text(self) -> str:
        header = "Table VI — online A/B test (look-alike uploader recommendation)"
        return f"{header}\n{self.report}"

    @property
    def relative_change(self) -> dict[str, float]:
        return self.report.relative_change


def run_table6(scale: ExperimentScale | None = None, n_accounts: int = 80,
               recall_k: int = 10) -> Table6Result:
    """Train both embedding models on QB-like data and run the simulated test."""
    scale = scale or ExperimentScale(n_users=4000, epochs=15)
    syn = make_qb_like(n_users=scale.n_users, seed=scale.seed)
    dataset = syn.dataset

    control_model = Item2Vec(latent_dim=scale.latent_dim,
                             epochs=max(scale.epochs // 2, 2), seed=scale.seed)
    control_model.fit(dataset)
    control_embeddings = control_model.embed_users(dataset)

    treatment_model = FVAE(dataset.schema, fvae_config_for(scale))
    treatment_model.fit(dataset, epochs=scale.epochs,
                        batch_size=scale.batch_size, lr=scale.lr)
    treatment_embeddings = treatment_model.embed_users(dataset)

    simulator = UploaderBehaviorSimulator(
        syn.theta, n_accounts=n_accounts, followers_per_account=40,
        seed=scale.seed)
    ab = OnlineABTest(simulator, k=recall_k, seed=scale.seed)
    report = ab.run(control_embeddings, treatment_embeddings)
    return Table6Result(report=report)
