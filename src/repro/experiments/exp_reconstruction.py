"""Table II — reconstruction AUC/mAP on the SC-like dataset, all 8 models.

Expected shape (paper): FVAE wins every *per-field* column; Mult-VAE/RecVAE
edge it on the *overall* AUC only, because their single softmax is calibrated
across fields while the FVAE's per-field multinomials are not.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data import make_sc_like
from repro.experiments.common import ExperimentScale, baseline_zoo
from repro.tasks import ReconstructionResult, evaluate_reconstruction
from repro.viz import format_table

__all__ = ["Table2Result", "run_table2"]


@dataclass
class Table2Result:
    """Reconstruction metrics per model."""

    results: dict[str, ReconstructionResult]
    field_names: list[str] = field(default_factory=list)

    def to_text(self) -> str:
        blocks = []
        for metric in ("auc", "map"):
            headers = ["Model", "Overall"] + self.field_names
            rows = []
            for name, res in self.results.items():
                row_vals = res.row(metric)
                rows.append([name] + [row_vals.get(h, float("nan"))
                                      for h in headers[1:]])
            blocks.append(format_table(
                headers, rows,
                title=f"Table II — reconstruction {metric.upper()} (SC-like)"))
        return "\n\n".join(blocks)

    def best_per_field(self, metric: str = "auc") -> dict[str, str]:
        """Winning model per column (used by assertions on the paper's shape)."""
        out = {}
        columns = ["Overall"] + self.field_names
        for col in columns:
            best_name, best_val = None, float("-inf")
            for name, res in self.results.items():
                val = res.row(metric).get(col, float("nan"))
                if val == val and val > best_val:
                    best_name, best_val = name, val
            out[col] = best_name
        return out


def run_table2(scale: ExperimentScale | None = None,
               include: tuple[str, ...] | None = None) -> Table2Result:
    """Fit every model on the SC-like training split and reconstruct held-out
    users' profiles."""
    scale = scale or ExperimentScale()
    syn = make_sc_like(n_users=scale.n_users, seed=scale.seed)
    train, test = syn.dataset.split([0.8, 0.2], rng=scale.seed)
    results: dict[str, ReconstructionResult] = {}
    for name, (model, fit_kwargs) in baseline_zoo(train.schema, scale,
                                                  include=include).items():
        model.fit(train, **fit_kwargs)
        results[name] = evaluate_reconstruction(model, test)
    return Table2Result(results=results, field_names=test.field_names)
