"""Experiment runners: one module per table/figure of the paper's evaluation.

Each ``run_*`` function is a self-contained, parameterised reproduction of one
experiment; benchmarks (``benchmarks/``) are thin wrappers that execute these
at a chosen scale and print the regenerated table/series.  The per-experiment
index lives in DESIGN.md; measured-vs-paper numbers in EXPERIMENTS.md.
"""

from repro.experiments.common import (DEFAULT_LATENT_DIM, ExperimentScale,
                                      baseline_zoo, fvae_config_for)
from repro.experiments.exp_datasets import run_table1
from repro.experiments.exp_reconstruction import run_table2
from repro.experiments.exp_tag_prediction import run_table3
from repro.experiments.exp_billion_scale import run_table4
from repro.experiments.exp_training_speed import run_table5
from repro.experiments.exp_ab_test import run_table6
from repro.experiments.exp_tsne import run_fig4
from repro.experiments.exp_sampling import run_fig5
from repro.experiments.exp_auc_vs_time import run_fig6
from repro.experiments.exp_alpha import run_fig7
from repro.experiments.exp_beta import run_fig8
from repro.experiments.exp_scalability import run_fig9
from repro.experiments.exp_distributed import run_fig10
from repro.experiments.exp_fault_tolerance import run_fault_tolerance

__all__ = [
    "ExperimentScale", "baseline_zoo", "fvae_config_for", "DEFAULT_LATENT_DIM",
    "run_table1", "run_table2", "run_table3", "run_table4", "run_table5",
    "run_table6", "run_fig4", "run_fig5", "run_fig6", "run_fig7", "run_fig8",
    "run_fig9", "run_fig10", "run_fault_tolerance",
]
