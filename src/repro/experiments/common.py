"""Shared experiment plumbing: scales, model zoo, default configs.

Every experiment accepts an :class:`ExperimentScale` so tests can run the
same code in seconds while benchmarks run the full (scaled-down-from-paper)
configuration in minutes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.baselines import (Item2Vec, Job2Vec, LDAModel, MultDAE, MultVAE,
                             PCAModel, RecVAE)
from repro.baselines.base import UserRepresentationModel
from repro.core import FVAE, FVAEConfig
from repro.data.fields import FieldSchema

__all__ = ["ExperimentScale", "SMALL", "BENCH", "baseline_zoo",
           "fvae_config_for", "DEFAULT_LATENT_DIM"]

DEFAULT_LATENT_DIM = 64


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs that trade fidelity for runtime.

    Attributes
    ----------
    n_users: users in the generated dataset.
    epochs: training epochs for iterative models.
    batch_size: mini-batch size (the paper uses 512).
    latent_dim: representation dimension for every model.
    lr: learning rate for the neural models.
    seed: master seed.
    """

    n_users: int = 3000
    epochs: int = 15
    batch_size: int = 512
    latent_dim: int = DEFAULT_LATENT_DIM
    lr: float = 2e-3
    seed: int = 0


#: Fast scale for unit/integration tests.
SMALL = ExperimentScale(n_users=600, epochs=5, batch_size=200, latent_dim=24)
#: Default benchmark scale.
BENCH = ExperimentScale(n_users=3000, epochs=15, batch_size=512, latent_dim=48)


def fvae_config_for(scale: ExperimentScale, sampling_rate: float = 0.5,
                    **overrides) -> FVAEConfig:
    """The FVAE configuration used across experiments at a given scale."""
    params = dict(
        latent_dim=scale.latent_dim,
        encoder_hidden=[4 * scale.latent_dim],
        decoder_hidden=[4 * scale.latent_dim],
        beta=0.2,
        anneal_steps=10 * max(scale.n_users // scale.batch_size, 1),
        sampling_rate=sampling_rate,
        input_dropout=0.1,
        seed=scale.seed,
    )
    params.update(overrides)
    return FVAEConfig(**params)


def baseline_zoo(schema: FieldSchema, scale: ExperimentScale,
                 include: tuple[str, ...] | None = None,
                 ) -> dict[str, tuple[UserRepresentationModel, dict]]:
    """All models of Tables II/III: ``name -> (model, fit kwargs)``.

    ``include`` restricts the zoo (e.g. the billion-scale Table IV drops the
    dense VAEs for scalability, as the paper does).
    """
    d = scale.latent_dim
    hidden = [4 * d]
    neural_fit = dict(epochs=scale.epochs, batch_size=scale.batch_size,
                      lr=scale.lr)
    zoo: dict[str, tuple[UserRepresentationModel, dict]] = {
        "PCA": (PCAModel(latent_dim=d, seed=scale.seed), {}),
        "LDA": (LDAModel(n_topics=d, n_iterations=8, e_steps=15,
                         seed=scale.seed), {}),
        "Item2Vec": (Item2Vec(latent_dim=d, epochs=max(scale.epochs // 2, 2),
                              seed=scale.seed), {}),
        "Mult-DAE": (MultDAE(schema, latent_dim=d, hidden=hidden,
                             seed=scale.seed), neural_fit),
        "Mult-VAE": (MultVAE(schema, latent_dim=d, hidden=hidden,
                             anneal_steps=10 * max(scale.n_users
                                                   // scale.batch_size, 1),
                             seed=scale.seed), neural_fit),
        "RecVAE": (RecVAE(schema, latent_dim=d, hidden=hidden,
                          anneal_steps=10 * max(scale.n_users
                                                // scale.batch_size, 1),
                          seed=scale.seed), neural_fit),
        "Job2Vec": (Job2Vec(latent_dim=d, epochs=max(scale.epochs // 2, 2),
                            seed=scale.seed), {}),
        "FVAE": (FVAE(schema, fvae_config_for(scale, sampling_rate=1.0)),
                 neural_fit),
    }
    if include is not None:
        zoo = {name: zoo[name] for name in include}
    return zoo
