"""Fault-tolerance study — recovery overhead vs injected fault rate.

The paper's production PS cluster trains for days, so the recovery strategy
determines how much wall-clock a given background fault rate costs.  This
experiment sweeps worker crash rates over the distributed training simulator
(real measured compute, modelled faults — see
:meth:`repro.distributed.DistributedTrainingSimulator.measure_with_faults`)
and prices both recovery strategies:

* ``checkpoint_restart`` — bounded loss (≤ one checkpoint interval per
  crash) but pays restart + replay + periodic checkpoint writes;
* ``gradient_skip`` — near-zero time cost but silently drops updates.

The output table is the trade-off an operator actually reads: overhead (%)
and lost/skipped work per strategy per fault rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import FVAE
from repro.data import make_kd_like
from repro.distributed import DistributedTrainingSimulator, ParameterServerCost
from repro.experiments.common import ExperimentScale, fvae_config_for
from repro.resilience import FaultConfig, FaultyRunResult, RecoveryStrategy
from repro.viz import format_table

__all__ = ["FaultToleranceResult", "run_fault_tolerance"]


@dataclass
class FaultToleranceResult:
    """Overhead grid: ``results[strategy][crash_rate]``."""

    n_workers: int
    crash_rates: list[float]
    strategies: list[str]
    results: dict[str, dict[float, FaultyRunResult]] = field(
        default_factory=dict)

    def overhead(self, strategy: str, rate: float) -> float:
        return self.results[strategy][rate].overhead

    def to_text(self) -> str:
        headers = ["crash rate", "strategy", "overhead %", "crashes",
                   "lost steps", "max lost", "skipped updates"]
        rows = []
        for rate in self.crash_rates:
            for strategy in self.strategies:
                r = self.results[strategy][rate]
                rows.append([f"{rate:.2%}", strategy,
                             f"{100.0 * r.overhead:.2f}", r.n_crashes,
                             r.lost_steps, r.max_lost_steps,
                             r.skipped_updates])
        return format_table(
            headers, rows,
            title=(f"Fault tolerance — recovery overhead vs crash rate "
                   f"({self.n_workers} workers, KD-like)"))


def run_fault_tolerance(scale: ExperimentScale | None = None,
                        n_workers: int = 6,
                        crash_rates: tuple[float, ...] = (0.0, 0.02, 0.05, 0.1),
                        straggler_rate: float = 0.02,
                        dropped_push_rate: float = 0.01,
                        checkpoint_interval: int = 10,
                        comm: ParameterServerCost | None = None,
                        ) -> FaultToleranceResult:
    """Sweep crash rates × recovery strategies on the PS cost model.

    Both strategies face the *same seeded fault schedule* at each rate, so
    the comparison isolates the recovery policy.  Stragglers and dropped
    pushes ride along at fixed low rates — a realistic background, and they
    exercise the non-crash fault paths.
    """
    scale = scale or ExperimentScale(n_users=3000, latent_dim=32)
    dataset = make_kd_like(n_users=scale.n_users, seed=scale.seed).dataset

    def factory():
        return FVAE(dataset.schema,
                    fvae_config_for(scale,
                                    encoder_hidden=[2 * scale.latent_dim],
                                    decoder_hidden=[2 * scale.latent_dim]))

    simulator = DistributedTrainingSimulator(
        factory, dataset, comm=comm or ParameterServerCost())
    strategies = list(RecoveryStrategy.ALL)
    out = FaultToleranceResult(n_workers=n_workers,
                               crash_rates=list(crash_rates),
                               strategies=strategies,
                               results={s: {} for s in strategies})
    for rate in crash_rates:
        config = FaultConfig(crash_rate=rate, straggler_rate=straggler_rate,
                             dropped_push_rate=dropped_push_rate,
                             seed=scale.seed)
        for strategy in strategies:
            out.results[strategy][rate] = simulator.measure_with_faults(
                n_workers, config, strategy, epochs=1,
                batch_size=scale.batch_size, lr=scale.lr, rng=scale.seed,
                checkpoint_interval=checkpoint_interval)
    return out
