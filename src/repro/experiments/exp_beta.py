"""Figure 8 — sensitivity to the KL peak weight β.

Expected shape (paper): a small positive β beats β=0 (the KL term
regularises), while large β over-regularises; the annealing keeps the model
robust across the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import FVAE
from repro.data import make_sc_like
from repro.experiments.common import ExperimentScale, fvae_config_for
from repro.tasks import evaluate_tag_prediction
from repro.viz import format_series

__all__ = ["Fig8Result", "run_fig8"]


@dataclass
class Fig8Result:
    betas: list[float]
    auc: list[float]
    map: list[float]

    def to_text(self) -> str:
        return format_series(self.betas, {"AUC": self.auc, "mAP": self.map},
                             x_label="beta",
                             title="Figure 8 — tag prediction vs β (SC-like)")

    def best_beta(self) -> float:
        return self.betas[max(range(len(self.auc)), key=self.auc.__getitem__)]


def run_fig8(scale: ExperimentScale | None = None,
             betas: tuple[float, ...] = (0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0),
             ) -> Fig8Result:
    """One training run per β, annealed as in the paper.

    The KL term is a regulariser, so its benefit shows where the model can
    overfit: the default scale uses a smaller training set and longer
    training than the other sweeps.
    """
    scale = scale or ExperimentScale(n_users=1200, epochs=25)
    syn = make_sc_like(n_users=scale.n_users, seed=scale.seed)
    train, test = syn.dataset.split([0.8, 0.2], rng=scale.seed)

    auc: list[float] = []
    map_: list[float] = []
    for beta in betas:
        model = FVAE(train.schema, fvae_config_for(scale, beta=beta))
        model.fit(train, epochs=scale.epochs, batch_size=scale.batch_size,
                  lr=scale.lr)
        result = evaluate_tag_prediction(model, test, rng=scale.seed)
        auc.append(result.auc)
        map_.append(result.map)
    return Fig8Result(betas=list(betas), auc=auc, map=map_)
