"""Table IV — tag prediction on the billion-scale (KD/QB-like) datasets.

The paper can only run the scalable methods here: PCA, LDA, Item2Vec, and
FVAE with two feature-sampling rates (r=0.05 and r=0.1).  Expected shape:
FVAE wins by a wide margin; r=0.1 edges r=0.05.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import FVAE
from repro.data import get_dataset
from repro.experiments.common import ExperimentScale, baseline_zoo, fvae_config_for
from repro.tasks import TagPredictionResult, evaluate_tag_prediction
from repro.viz import format_table

__all__ = ["Table4Result", "run_table4"]

_SCALABLE_BASELINES = ("PCA", "LDA", "Item2Vec")


@dataclass
class Table4Result:
    """Per-dataset tag-prediction metrics for the scalable methods."""

    results: dict[str, dict[str, TagPredictionResult]]  # dataset -> model -> res

    def to_text(self) -> str:
        blocks = []
        for dataset, model_results in self.results.items():
            rows = [[name, res.auc, res.map]
                    for name, res in model_results.items()]
            blocks.append(format_table(
                ["Model", "AUC", "mAP"], rows,
                title=f"Table IV — tag prediction ({dataset}-like)"))
        return "\n\n".join(blocks)

    def winner(self, dataset: str, metric: str = "auc") -> str:
        model_results = self.results[dataset]
        return max(model_results,
                   key=lambda n: getattr(model_results[n], metric))


def run_table4(scale: ExperimentScale | None = None,
               datasets: tuple[str, ...] = ("KD", "QB"),
               sampling_rates: tuple[float, ...] = (0.05, 0.1),
               ) -> Table4Result:
    """Run the scalable subset of the zoo plus FVAE at several sampling rates."""
    scale = scale or ExperimentScale(n_users=6000, epochs=12)
    results: dict[str, dict[str, TagPredictionResult]] = {}
    for dataset_key in datasets:
        syn = get_dataset(dataset_key.lower(), n_users=scale.n_users,
                          seed=scale.seed)
        train, test = syn.dataset.split([0.8, 0.2], rng=scale.seed)
        per_model: dict[str, TagPredictionResult] = {}
        zoo = baseline_zoo(train.schema, scale, include=_SCALABLE_BASELINES)
        for name, (model, fit_kwargs) in zoo.items():
            model.fit(train, **fit_kwargs)
            per_model[name] = evaluate_tag_prediction(model, test,
                                                      rng=scale.seed)
        for rate in sampling_rates:
            fvae = FVAE(train.schema, fvae_config_for(scale, sampling_rate=rate))
            fvae.fit(train, epochs=scale.epochs, batch_size=scale.batch_size,
                     lr=scale.lr)
            label = f"FVAE(r={rate})"
            res = evaluate_tag_prediction(fvae, test, rng=scale.seed)
            per_model[label] = TagPredictionResult(
                model_name=label, auc=res.auc, map=res.map, n_users=res.n_users)
        results[dataset_key] = per_model
    return Table4Result(results=results)
