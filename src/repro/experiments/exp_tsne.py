"""Figure 4 — t-SNE case study: 1000 users from 3 topics form clean clusters.

The paper's figure is qualitative; we regenerate the 2-D coordinates and add
silhouette / separation-ratio numbers so the "clear boundaries" claim is
checkable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import FVAE
from repro.data import make_kd_like
from repro.experiments.common import ExperimentScale, fvae_config_for
from repro.viz import TSNE, topic_separation_report

__all__ = ["Fig4Result", "run_fig4"]


@dataclass
class Fig4Result:
    coordinates: np.ndarray     # (n, 2)
    labels: np.ndarray          # (n,)
    report: dict[str, float]

    def to_text(self) -> str:
        lines = ["Figure 4 — t-SNE of FVAE user embeddings (3 topics)"]
        for key, value in self.report.items():
            lines.append(f"  {key:<26} {value:.4f}")
        counts = np.bincount(self.labels)
        lines.append(f"  points per topic           {counts.tolist()}")
        return "\n".join(lines)


def run_fig4(scale: ExperimentScale | None = None, n_points: int = 1000,
             n_topics_shown: int = 3, tsne_iterations: int = 300) -> Fig4Result:
    """Embed KD-like users, select ``n_points`` from 3 topics, run t-SNE."""
    scale = scale or ExperimentScale(n_users=4000, epochs=12)
    syn = make_kd_like(n_users=scale.n_users, seed=scale.seed)
    model = FVAE(syn.dataset.schema, fvae_config_for(scale))
    model.fit(syn.dataset, epochs=scale.epochs, batch_size=scale.batch_size,
              lr=scale.lr)
    embeddings = model.embed_users(syn.dataset)

    rng = np.random.default_rng(scale.seed)
    eligible = np.flatnonzero(syn.topics < n_topics_shown)
    chosen = rng.choice(eligible, size=min(n_points, eligible.size),
                        replace=False)
    coords = TSNE(n_iter=tsne_iterations, perplexity=30.0,
                  seed=scale.seed).fit_transform(embeddings[chosen])
    labels = syn.topics[chosen]
    return Fig4Result(coordinates=coords, labels=labels,
                      report=topic_separation_report(coords, labels))
