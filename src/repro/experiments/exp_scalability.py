"""Figure 9 — scalability on Barabási–Albert synthetic data.

Two sweeps, as in the paper: (a) vary the *average* profile size with the max
feature vocabulary fixed; (b) vary the *max* vocabulary with the average
profile size fixed.  Expected shape: runtime grows linearly with the average
feature size and stays flat with the max feature size — i.e. the FVAE's cost
is driven by observed features, not by J.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import FVAE, Trainer
from repro.data import barabasi_albert_profiles
from repro.experiments.common import ExperimentScale, fvae_config_for
from repro.viz import format_series

__all__ = ["Fig9Result", "run_fig9"]


@dataclass
class Fig9Result:
    avg_sizes: list[int]
    time_by_avg: list[float]
    max_sizes: list[int]
    time_by_max: list[float]

    def to_text(self) -> str:
        a = format_series(self.avg_sizes, {"seconds": self.time_by_avg},
                          x_label="avg feature size",
                          title="Figure 9a — runtime vs average feature size "
                                "(max fixed)")
        b = format_series(self.max_sizes, {"seconds": self.time_by_max},
                          x_label="max feature size",
                          title="Figure 9b — runtime vs max feature size "
                                "(avg fixed)")
        return f"{a}\n\n{b}"

    def linear_fit_r2_avg(self) -> float:
        """R² of a linear fit to runtime-vs-average-size (should be ≈1)."""
        import numpy as np

        x = np.asarray(self.avg_sizes, dtype=float)
        y = np.asarray(self.time_by_avg)
        coeffs = np.polyfit(x, y, deg=1)
        pred = np.polyval(coeffs, x)
        ss_res = float(((y - pred) ** 2).sum())
        ss_tot = float(((y - y.mean()) ** 2).sum())
        return 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0

    def max_size_slowdown(self) -> float:
        """Largest/smallest runtime over the max-size sweep (should be ≈1)."""
        return max(self.time_by_max) / min(self.time_by_max)


def _train_once(dataset, scale: ExperimentScale, epochs: int) -> float:
    model = FVAE(dataset.schema,
                 fvae_config_for(scale, sampling_rate=1.0,
                                 encoder_hidden=[2 * scale.latent_dim],
                                 decoder_hidden=[2 * scale.latent_dim]))
    history = Trainer(model, lr=scale.lr).fit(
        dataset, epochs=epochs, batch_size=scale.batch_size, rng=scale.seed)
    return history.total_time


def run_fig9(scale: ExperimentScale | None = None,
             avg_sizes: tuple[int, ...] = (25, 50, 100, 200),
             fixed_max: int = 20_000,
             max_sizes: tuple[int, ...] = (2_000, 10_000, 50_000, 100_000),
             fixed_avg: int = 50,
             epochs: int = 1) -> Fig9Result:
    """Generate BA data per sweep point and time one FVAE training epoch."""
    scale = scale or ExperimentScale(n_users=1500, latent_dim=32)

    time_by_avg = []
    for avg in avg_sizes:
        ds = barabasi_albert_profiles(scale.n_users, avg_features=avg,
                                      max_features=fixed_max, seed=scale.seed)
        time_by_avg.append(_train_once(ds, scale, epochs))

    time_by_max = []
    for max_size in max_sizes:
        ds = barabasi_albert_profiles(scale.n_users, avg_features=fixed_avg,
                                      max_features=max_size, seed=scale.seed)
        time_by_max.append(_train_once(ds, scale, epochs))

    return Fig9Result(avg_sizes=list(avg_sizes), time_by_avg=time_by_avg,
                      max_sizes=list(max_sizes), time_by_max=time_by_max)
