"""Figure 6 — validation AUC versus wall-clock training time for several r.

Expected shape (paper): a moderate rate (r=0.1) reaches the best AUC in the
least time; very small r trains fastest per epoch but converges to a similar
AUC more slowly; large r wastes time per epoch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import FVAE, Trainer
from repro.data import make_kd_like
from repro.experiments.common import ExperimentScale, fvae_config_for
from repro.tasks import evaluate_tag_prediction
from repro.viz import format_table

__all__ = ["Fig6Result", "run_fig6"]


@dataclass
class CurvePoint:
    seconds: float
    auc: float


@dataclass
class Fig6Result:
    curves: dict[float, list[CurvePoint]]   # rate -> (time, auc) curve

    def to_text(self) -> str:
        rows = []
        for rate, curve in self.curves.items():
            for point in curve:
                rows.append([f"r={rate}", f"{point.seconds:.2f}",
                             point.auc])
        return format_table(["Rate", "seconds", "AUC"], rows,
                            title="Figure 6 — validation AUC vs training time")

    def final_auc(self, rate: float) -> float:
        return self.curves[rate][-1].auc

    def total_time(self, rate: float) -> float:
        return self.curves[rate][-1].seconds


def run_fig6(scale: ExperimentScale | None = None,
             rates: tuple[float, ...] = (0.01, 0.1, 0.2),
             ) -> Fig6Result:
    """Train one FVAE per rate, evaluating AUC after every epoch.

    Runs on the KD-like dataset, where the tag vocabulary is large enough for
    the sampling rate to move the per-epoch cost (cf. :func:`run_fig5`).
    """
    scale = scale or ExperimentScale(n_users=3000, epochs=10)
    syn = make_kd_like(n_users=scale.n_users, seed=scale.seed)
    train, test = syn.dataset.split([0.8, 0.2], rng=scale.seed)

    curves: dict[float, list[CurvePoint]] = {}
    for rate in rates:
        model = FVAE(train.schema, fvae_config_for(scale, sampling_rate=rate))
        trainer = Trainer(model, lr=scale.lr)
        history = trainer.fit(
            train, epochs=scale.epochs, batch_size=scale.batch_size,
            rng=scale.seed,
            eval_fn=lambda m=model: {
                "auc": evaluate_tag_prediction(m, test, rng=scale.seed).auc})
        curves[rate] = [CurvePoint(seconds=r.cumulative_time,
                                   auc=r.eval_metrics["auc"])
                        for r in history.epochs]
    return Fig6Result(curves=curves)
