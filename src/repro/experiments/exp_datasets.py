"""Table I — dataset statistics.

Generates the three dataset analogues and reports the same columns the paper
does (#Users, #Fields, N̄, J), side by side with the paper's production-scale
numbers so the scale mapping is explicit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data import PAPER_STATS, get_dataset
from repro.data.dataset import DatasetStats
from repro.viz import format_table

__all__ = ["Table1Result", "run_table1"]


@dataclass
class Table1Result:
    """Generated stats per dataset, paired with the paper's Table I row."""

    stats: dict[str, DatasetStats]

    def to_text(self) -> str:
        rows = []
        for key, stat in self.stats.items():
            paper = PAPER_STATS[key]
            rows.append([
                key,
                f"{stat.n_users:,}", f"{paper.n_users:.2e}",
                stat.n_fields,
                f"{stat.avg_features:.2f}", f"{paper.avg_features:.2f}",
                f"{stat.total_vocab:,}", f"{paper.total_vocab:.2e}",
            ])
        return format_table(
            ["Dataset", "#Users", "(paper)", "#Fields", "N̄", "(paper)",
             "J", "(paper)"],
            rows, title="Table I — dataset statistics (generated vs paper)")


def run_table1(scale_users: dict[str, int] | None = None,
               seed: int = 0) -> Table1Result:
    """Generate the KD/QB/SC-like presets and collect their statistics."""
    scale_users = scale_users or {"KD": 8000, "QB": 5000, "SC": 3000}
    stats = {}
    for key, n_users in scale_users.items():
        syn = get_dataset(key.lower(), n_users=n_users, seed=seed)
        stats[key] = syn.dataset.stats()
    return Table1Result(stats=stats)
