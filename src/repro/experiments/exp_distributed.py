"""Figure 10 — speedup via distributed computing (3–12 servers).

Expected shape (paper): speedup grows almost linearly with the number of
servers.  The simulator measures real shard compute and models ring-allreduce
synchronisation (see :mod:`repro.distributed`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import FVAE
from repro.data import make_kd_like
from repro.distributed import CommunicationModel, DistributedTrainingSimulator
from repro.experiments.common import ExperimentScale, fvae_config_for
from repro.viz import format_series

__all__ = ["Fig10Result", "run_fig10"]


@dataclass
class Fig10Result:
    workers: list[int]
    speedups: list[float]

    def to_text(self) -> str:
        return format_series(self.workers, {"speedup": self.speedups},
                             x_label="servers",
                             title="Figure 10 — distributed speedup (KD-like)")

    def is_monotone(self) -> bool:
        return all(b >= a for a, b in zip(self.speedups, self.speedups[1:]))


def run_fig10(scale: ExperimentScale | None = None,
              workers: tuple[int, ...] = (3, 6, 9, 12),
              comm: CommunicationModel | None = None) -> Fig10Result:
    """Measure the simulated speedup curve on KD-like data."""
    scale = scale or ExperimentScale(n_users=6000, latent_dim=32)
    syn = make_kd_like(n_users=scale.n_users, seed=scale.seed)
    dataset = syn.dataset

    def factory():
        return FVAE(dataset.schema,
                    fvae_config_for(scale,
                                    encoder_hidden=[2 * scale.latent_dim],
                                    decoder_hidden=[2 * scale.latent_dim]))

    simulator = DistributedTrainingSimulator(factory, dataset, comm=comm)
    curve = simulator.speedup_curve(list(workers), epochs=1,
                                    batch_size=scale.batch_size, lr=scale.lr,
                                    rng=scale.seed)
    return Fig10Result(workers=list(workers),
                       speedups=[curve[w] for w in workers])
