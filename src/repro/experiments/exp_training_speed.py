"""Table V — training throughput: FVAE vs Mult-VAE on all three datasets.

The paper reports samples/second and a speedup factor that *grows with the
feature space* (56× on SC up to 4020× on QB), because Mult-VAE's per-step
cost is O(J) while the FVAE's is O(candidates).  Absolute factors here are
smaller (NumPy vs a TF cluster, and a 10⁴× smaller J), but the growth of the
speedup with J is the shape under test.  As in the paper's footnote, Mult-VAE
uses static feature hashing on the larger datasets to stay runnable at all.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import MultVAE
from repro.core import FVAE, Trainer
from repro.data import get_dataset
from repro.experiments.common import ExperimentScale, fvae_config_for
from repro.hashing import FeatureHasher
from repro.viz import format_table

__all__ = ["Table5Result", "run_table5"]


@dataclass
class SpeedRow:
    dataset: str
    total_vocab: int
    multvae_throughput: float    # users/second
    fvae_throughput: float

    @property
    def speedup(self) -> float:
        return self.fvae_throughput / self.multvae_throughput


@dataclass
class Table5Result:
    rows: list[SpeedRow]

    def to_text(self) -> str:
        table_rows = [[r.dataset, f"{r.total_vocab:,}",
                       f"{r.multvae_throughput:.1f}",
                       f"{r.fvae_throughput:.1f}", f"{r.speedup:.1f}x"]
                      for r in self.rows]
        return format_table(
            ["Dataset", "J", "Mult-VAE users/s", "FVAE users/s", "Speedup"],
            table_rows, title="Table V — training throughput")

    def speedups(self) -> dict[str, float]:
        return {r.dataset: r.speedup for r in self.rows}


def run_table5(scale: ExperimentScale | None = None,
               datasets: tuple[str, ...] = ("SC", "QB", "KD"),
               epochs: int = 2, sampling_rate: float = 0.1,
               hash_bits: int = 14) -> Table5Result:
    """Time both models for a fixed number of epochs on each dataset.

    ``hash_bits`` mirrors the paper's footnote: Mult-VAE cannot hold the
    larger vocabularies, so its input/output space is statically hashed
    (the paper used 20 bits at billion scale; scaled down accordingly here).
    """
    scale = scale or ExperimentScale(n_users=2000)
    rows: list[SpeedRow] = []
    for key in datasets:
        syn = get_dataset(key.lower(), n_users=scale.n_users, seed=scale.seed)
        train = syn.dataset
        vocab = train.schema.total_vocab

        hasher = FeatureHasher(n_buckets=1 << hash_bits) \
            if vocab > (1 << hash_bits) else None
        multvae = MultVAE(train.schema, latent_dim=scale.latent_dim,
                          hidden=[4 * scale.latent_dim], hasher=hasher,
                          seed=scale.seed)
        mv_history = Trainer(multvae, lr=scale.lr).fit(
            train, epochs=epochs, batch_size=scale.batch_size, rng=scale.seed)

        fvae = FVAE(train.schema,
                    fvae_config_for(scale, sampling_rate=sampling_rate))
        fv_history = Trainer(fvae, lr=scale.lr).fit(
            train, epochs=epochs, batch_size=scale.batch_size, rng=scale.seed)

        rows.append(SpeedRow(dataset=key, total_vocab=vocab,
                             multvae_throughput=mv_history.throughput,
                             fvae_throughput=fv_history.throughput))
    return Table5Result(rows=rows)
