"""Figure 7 — sensitivity to the per-field reconstruction weights α_k.

For each field, α_k sweeps {0.001, 0.01, 0.1, 1, 10} while all other fields
stay at 1.  Expected shape (paper): performance is high over an extensive
range; channel fields (which carry the fold-in signal) are more sensitive
than ch3/tag.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import FVAE
from repro.data import make_sc_like
from repro.experiments.common import ExperimentScale, fvae_config_for
from repro.tasks import evaluate_tag_prediction
from repro.viz import format_series

__all__ = ["Fig7Result", "run_fig7"]


@dataclass
class Fig7Result:
    alphas: list[float]
    auc: dict[str, list[float]]     # field -> AUC series over alpha values
    map: dict[str, list[float]]

    def to_text(self) -> str:
        auc_text = format_series(self.alphas, self.auc, x_label="alpha",
                                 title="Figure 7 — tag-prediction AUC vs α_k "
                                       "(one field varied at a time)")
        map_text = format_series(self.alphas, self.map, x_label="alpha",
                                 title="Figure 7 — tag-prediction mAP vs α_k")
        return f"{auc_text}\n\n{map_text}"

    def spread(self, field: str) -> float:
        """Max−min AUC over the sweep: how sensitive the field is."""
        series = self.auc[field]
        return max(series) - min(series)


def run_fig7(scale: ExperimentScale | None = None,
             alphas: tuple[float, ...] = (0.001, 0.01, 0.1, 1.0, 10.0),
             fields: tuple[str, ...] | None = None) -> Fig7Result:
    """One training run per (field, α) cell, others fixed at 1."""
    scale = scale or ExperimentScale(n_users=2000, epochs=8)
    syn = make_sc_like(n_users=scale.n_users, seed=scale.seed)
    train, test = syn.dataset.split([0.8, 0.2], rng=scale.seed)
    fields = fields or tuple(train.field_names)

    auc: dict[str, list[float]] = {f: [] for f in fields}
    map_: dict[str, list[float]] = {f: [] for f in fields}
    for field in fields:
        for alpha in alphas:
            config = fvae_config_for(scale, alpha={field: alpha})
            model = FVAE(train.schema, config)
            model.fit(train, epochs=scale.epochs, batch_size=scale.batch_size,
                      lr=scale.lr)
            result = evaluate_tag_prediction(model, test, rng=scale.seed)
            auc[field].append(result.auc)
            map_[field].append(result.map)
    return Fig7Result(alphas=list(alphas), auc=auc, map=map_)
