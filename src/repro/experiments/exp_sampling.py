"""Figure 5 — sampling strategies (Uniform / Frequency / Zipfian) × rate r.

Expected shape (paper): Uniform dominates both alternatives at every rate,
and performance is *not* monotone in r (an interior rate can beat keeping
everything, because dropping long-tail candidates regularises).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import FVAE
from repro.data import make_kd_like
from repro.experiments.common import ExperimentScale, fvae_config_for
from repro.tasks import evaluate_tag_prediction
from repro.viz import format_series

__all__ = ["Fig5Result", "run_fig5"]


@dataclass
class Fig5Result:
    rates: list[float]
    auc: dict[str, list[float]]      # strategy -> series over rates
    map: dict[str, list[float]]

    def to_text(self) -> str:
        auc_text = format_series(self.rates, self.auc, x_label="r",
                                 title="Figure 5 — tag-prediction AUC by "
                                       "sampling strategy")
        map_text = format_series(self.rates, self.map, x_label="r",
                                 title="Figure 5 — tag-prediction mAP by "
                                       "sampling strategy")
        return f"{auc_text}\n\n{map_text}"

    def mean_auc(self, strategy: str) -> float:
        series = self.auc[strategy]
        return sum(series) / len(series)


def run_fig5(scale: ExperimentScale | None = None,
             rates: tuple[float, ...] = (0.2, 0.4, 0.6, 0.8),
             strategies: tuple[str, ...] = ("uniform", "frequency", "zipfian"),
             ) -> Fig5Result:
    """Sweep strategy × rate; one short FVAE training run per cell.

    Runs on the KD-like dataset: feature sampling targets the *super sparse*
    tag field, and only the large-vocabulary datasets make its effect (and
    the differences between strategies) visible.
    """
    scale = scale or ExperimentScale(n_users=3000, epochs=8)
    syn = make_kd_like(n_users=scale.n_users, seed=scale.seed)
    train, test = syn.dataset.split([0.8, 0.2], rng=scale.seed)

    auc: dict[str, list[float]] = {s: [] for s in strategies}
    map_: dict[str, list[float]] = {s: [] for s in strategies}
    for strategy in strategies:
        for rate in rates:
            config = fvae_config_for(scale, sampling_rate=rate,
                                     sampler=strategy)
            model = FVAE(train.schema, config)
            model.fit(train, epochs=scale.epochs, batch_size=scale.batch_size,
                      lr=scale.lr)
            result = evaluate_tag_prediction(model, test, rng=scale.seed)
            auc[strategy].append(result.auc)
            map_[strategy].append(result.map)
    return Fig5Result(rates=list(rates), auc=auc, map=map_)
