"""Table III — tag prediction AUC/mAP on the SC-like dataset, all 8 models.

Expected shape (paper): FVAE beats every baseline on both metrics; dense VAEs
are the strongest baselines; PCA is the weakest.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data import make_sc_like
from repro.experiments.common import ExperimentScale, baseline_zoo
from repro.tasks import TagPredictionResult, evaluate_tag_prediction
from repro.viz import format_table

__all__ = ["Table3Result", "run_table3"]


@dataclass
class Table3Result:
    results: dict[str, TagPredictionResult]

    def to_text(self) -> str:
        rows = [[name, res.auc, res.map] for name, res in self.results.items()]
        return format_table(["Model", "AUC", "mAP"], rows,
                            title="Table III — tag prediction (SC-like)")

    def winner(self, metric: str = "auc") -> str:
        return max(self.results, key=lambda n: getattr(self.results[n], metric))


def run_table3(scale: ExperimentScale | None = None,
               include: tuple[str, ...] | None = None,
               target_field: str = "tag") -> Table3Result:
    """Fold-in tag prediction for the full model zoo."""
    scale = scale or ExperimentScale()
    syn = make_sc_like(n_users=scale.n_users, seed=scale.seed)
    train, test = syn.dataset.split([0.8, 0.2], rng=scale.seed)
    results: dict[str, TagPredictionResult] = {}
    for name, (model, fit_kwargs) in baseline_zoo(train.schema, scale,
                                                  include=include).items():
        model.fit(train, **fit_kwargs)
        results[name] = evaluate_tag_prediction(model, test,
                                                target_field=target_field,
                                                rng=scale.seed)
    return Table3Result(results=results)
