"""Seeded traffic generators: heavy-tailed arrivals over skewed key sets.

The north star claims "heavy traffic from millions of users"; what makes
that claim *testable* is a reproducible model of what heavy traffic looks
like — not a constant request rate but bursts, hot keys, and cold-start
floods.  This module generates request traces as ``(timestamp, key)`` pairs
from two orthogonal pieces:

* an **arrival process** giving the request *times* — a homogeneous Poisson
  baseline (:func:`poisson_times`), a piecewise-rate variant for explicit
  burst windows (:func:`piecewise_poisson_times`), and an on/off modulated
  process for sustained bursty traffic (:func:`onoff_times`);
* a **key sampler** giving each request its *user id* — uniform
  (:class:`UniformKeys`), Zipf-like hot keys (:class:`ZipfKeys`), or a
  cold-start flood of never-seen ids (:class:`ColdStartKeys`).

Everything is driven by ``numpy`` Generators seeded by the caller: same
seed, same trace, same replay — the property every chaos-gate assertion in
CI leans on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.utils.rng import new_rng

__all__ = ["Request", "poisson_times", "piecewise_poisson_times",
           "onoff_times", "UniformKeys", "ZipfKeys", "ColdStartKeys",
           "make_trace", "steady_trace", "bursty_trace", "hot_key_trace",
           "cold_start_trace", "SCENARIOS"]


@dataclass(frozen=True, order=True)
class Request:
    """One replayable request: arrives at ``ts`` asking for ``key``."""

    ts: float
    key: int


# -- arrival processes -----------------------------------------------------------

def poisson_times(rate: float, duration: float,
                  rng: np.random.Generator | int | None = 0) -> np.ndarray:
    """Homogeneous Poisson arrivals: exponential inter-arrival gaps."""
    return piecewise_poisson_times([(0.0, duration, rate)], rng)


def piecewise_poisson_times(segments: Sequence[tuple[float, float, float]],
                            rng: np.random.Generator | int | None = 0,
                            ) -> np.ndarray:
    """Poisson arrivals with a piecewise-constant rate.

    ``segments`` is ``[(start, end, rate), ...]``; each segment generates
    its own exponential-gap arrivals.  Overlapping segments superpose (their
    rates add), which is how a burst is usually written: a baseline segment
    for the whole run plus a high-rate segment over the burst window.
    """
    rng = new_rng(rng)
    times: list[float] = []
    for start, end, rate in segments:
        if end < start:
            raise ValueError(f"segment ends before it starts: {start}..{end}")
        if rate < 0:
            raise ValueError(f"rate must be non-negative: {rate}")
        if rate == 0:
            continue
        t = float(start)
        while True:
            t += rng.exponential(1.0 / rate)
            if t >= end:
                break
            times.append(t)
    return np.sort(np.asarray(times, dtype=np.float64))


def onoff_times(on_rate: float, off_rate: float, period: float, duty: float,
                duration: float,
                rng: np.random.Generator | int | None = 0) -> np.ndarray:
    """On/off modulated Poisson: bursts of ``on_rate`` for ``duty x period``
    seconds, then a lull at ``off_rate`` — the classic bursty-source model."""
    if not 0.0 <= duty <= 1.0:
        raise ValueError(f"duty must be in [0, 1]: {duty}")
    if period <= 0:
        raise ValueError(f"period must be positive: {period}")
    segments = []
    t = 0.0
    while t < duration:
        on_end = min(t + duty * period, duration)
        segments.append((t, on_end, on_rate))
        off_end = min(t + period, duration)
        if on_end < off_end:
            segments.append((on_end, off_end, off_rate))
        t = off_end
    return piecewise_poisson_times(segments, rng)


# -- key samplers ----------------------------------------------------------------

class UniformKeys:
    """Every known user equally likely."""

    def __init__(self, n_keys: int) -> None:
        if n_keys < 1:
            raise ValueError(f"n_keys must be >= 1: {n_keys}")
        self.n_keys = n_keys

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return rng.integers(0, self.n_keys, size=n)


class ZipfKeys:
    """Zipf-like hot keys: rank ``r`` drawn with weight ``1 / (r+1)^s``.

    With ``exponent`` around 1 a handful of users absorb most of the
    traffic — the cache-friendly *and* hot-spot-prone shape real serving
    sees.  Ranks map to keys via a seeded permutation so the hot set isn't
    always ``{0, 1, 2, ...}``.
    """

    def __init__(self, n_keys: int, exponent: float = 1.1,
                 permute_seed: int = 0) -> None:
        if n_keys < 1:
            raise ValueError(f"n_keys must be >= 1: {n_keys}")
        if exponent <= 0:
            raise ValueError(f"exponent must be positive: {exponent}")
        self.n_keys = n_keys
        self.exponent = exponent
        weights = 1.0 / np.power(np.arange(1, n_keys + 1), exponent)
        self._probs = weights / weights.sum()
        self._perm = new_rng(permute_seed).permutation(n_keys)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        ranks = rng.choice(self.n_keys, size=n, p=self._probs)
        return self._perm[ranks]


class ColdStartKeys:
    """A flood of never-seen users: ids drawn from beyond the known range."""

    def __init__(self, first_unknown: int, width: int = 1 << 20) -> None:
        if width < 1:
            raise ValueError(f"width must be >= 1: {width}")
        self.first_unknown = first_unknown
        self.width = width

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return self.first_unknown + rng.integers(0, self.width, size=n)


# -- traces ----------------------------------------------------------------------

def make_trace(times: np.ndarray, sampler,
               rng: np.random.Generator | int | None = 0) -> list[Request]:
    """Zip arrival times with sampled keys into a replayable trace."""
    rng = new_rng(rng)
    keys = sampler.sample(len(times), rng)
    return [Request(float(ts), int(key)) for ts, key in zip(times, keys)]


def steady_trace(duration: float = 10.0, rate: float = 100.0,
                 n_keys: int = 512, seed: int = 0) -> list[Request]:
    """Poisson baseline over a uniform key set — the happy-path workload."""
    times = poisson_times(rate, duration, rng=seed)
    return make_trace(times, UniformKeys(n_keys), rng=seed + 1)


def bursty_trace(duration: float = 10.0, rate: float = 100.0,
                 burst_multiplier: float = 10.0, burst_start: float | None = None,
                 burst_seconds: float = 2.0, n_keys: int = 512,
                 seed: int = 0) -> list[Request]:
    """Poisson baseline plus one explicit ``burst_multiplier``x burst window."""
    if burst_start is None:
        burst_start = 0.3 * duration
    burst_end = min(burst_start + burst_seconds, duration)
    times = piecewise_poisson_times(
        [(0.0, duration, rate),
         (burst_start, burst_end, (burst_multiplier - 1.0) * rate)], rng=seed)
    return make_trace(times, ZipfKeys(n_keys, permute_seed=seed), rng=seed + 1)


def hot_key_trace(duration: float = 10.0, rate: float = 100.0,
                  n_keys: int = 512, exponent: float = 1.2,
                  seed: int = 0) -> list[Request]:
    """On/off bursty arrivals over a sharply Zipf key set."""
    times = onoff_times(on_rate=3.0 * rate, off_rate=0.3 * rate, period=2.0,
                        duty=0.3, duration=duration, rng=seed)
    return make_trace(times, ZipfKeys(n_keys, exponent=exponent,
                                      permute_seed=seed), rng=seed + 1)


def cold_start_trace(duration: float = 10.0, rate: float = 100.0,
                     n_keys: int = 512, flood_start: float | None = None,
                     flood_seconds: float = 3.0, flood_rate: float | None = None,
                     seed: int = 0) -> list[Request]:
    """Warm Zipf traffic plus a flood of never-seen users mid-run."""
    if flood_start is None:
        flood_start = 0.4 * duration
    if flood_rate is None:
        flood_rate = 4.0 * rate
    flood_end = min(flood_start + flood_seconds, duration)
    warm_times = poisson_times(rate, duration, rng=seed)
    warm = make_trace(warm_times, ZipfKeys(n_keys, permute_seed=seed),
                      rng=seed + 1)
    flood_times = piecewise_poisson_times(
        [(flood_start, flood_end, flood_rate)], rng=seed + 2)
    flood = make_trace(flood_times, ColdStartKeys(first_unknown=n_keys),
                       rng=seed + 3)
    return sorted(warm + flood)


#: Named workload shapes for ``python -m repro loadtest --scenario ...``.
SCENARIOS = {
    "steady": steady_trace,
    "burst": bursty_trace,
    "hot-keys": hot_key_trace,
    "cold-start": cold_start_trace,
}
