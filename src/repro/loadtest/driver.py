"""Virtual-time replay: drive the serving stack through a traffic trace.

:class:`LoadTestHarness` assembles the full overload-safe serving stack —
``EmbeddingStore → ChaosStore → ServingProxy`` (retry + breaker + stale /
infer / prior fallbacks) ``→ MicroBatcher`` (bounded queue, adaptive
throttle, deadline propagation) — entirely on one shared
:class:`~repro.utils.timer.ManualClock`.  :meth:`LoadTestHarness.run`
replays a seeded :class:`~repro.loadtest.arrivals.Request` trace through it
single-threaded: the clock jumps to each arrival, the batcher's deadline is
polled, the request is submitted with its latency budget, and the chaos
store bills virtual service time as batches flush.  Request latency is
``resolve time − arrival time`` on that same clock.

Because *every* time source in the stack is the one ManualClock and every
random draw is seeded, a replay is bit-for-bit reproducible: same seed,
same shed decisions, same breaker trips, same SLO verdicts.  That is what
lets CI assert hard numbers (zero unhandled errors, shed rate ≤ 20%, p99
within SLO) on a chaos run instead of eyeballing noisy wall-clock plots.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.lookalike.serving import ServingProxy, ServingResilience
from repro.lookalike.store import EmbeddingStore
from repro.loadtest.arrivals import Request, SCENARIOS, bursty_trace
from repro.loadtest.chaos import (CORRUPT, LATENCY_SPIKE, OUTAGE, SLOW_STORE,
                                  ChaosStore, ChaosWindow,
                                  ServingFaultSchedule)
from repro.obs.slo import Objective, SLOEngine, SLOStatus, parse_objective
from repro.resilience.guards import (CircuitBreaker, Deadline, RetryPolicy)
from repro.serve.batcher import AdmissionError, MicroBatcher, ShutdownError
from repro.serve.overload import AdaptiveThrottle
from repro.utils.rng import new_rng
from repro.utils.timer import ManualClock
from repro.viz.tables import format_table

__all__ = ["LoadTestResult", "LoadTestHarness", "chaos_schedule",
           "run_loadtest", "run_chaos"]

#: Errors the store surface may legitimately raise; anything else escaping a
#: request handle counts as *unhandled* and fails the chaos gate.
_STORE_ERRORS = (ConnectionError, TimeoutError, OSError)


@dataclass
class LoadTestResult:
    """Everything one replay produced, plus the chaos-gate verdict."""

    name: str
    requests: int
    completed: int
    shed: int
    shed_counts: Counter
    unhandled: int
    unhandled_kinds: Counter
    expired_flushed: int
    duration_seconds: float          # virtual span of the replay
    latencies: np.ndarray            # per completed request, seconds
    source_counts: Counter           # proxy: where embeddings came from
    statuses: list[SLOStatus]
    breaker_trips: int
    store_reads: int
    injected_failures: int
    injected_corruptions: int
    outage_rejections: int
    corruptions_detected: int
    deadline_skips: int
    shed_rate_limit: float = 0.2
    schedule_lines: list[str] = field(default_factory=list)

    @property
    def shed_rate(self) -> float:
        return self.shed / self.requests if self.requests else 0.0

    @property
    def slo_passed(self) -> bool:
        return all(s.passed for s in self.statuses)

    @property
    def passed(self) -> bool:
        """The chaos gate: no unhandled errors, bounded shed, SLOs green."""
        return (self.unhandled == 0
                and self.shed_rate <= self.shed_rate_limit
                and self.slo_passed)

    def quantile(self, q: float) -> float:
        if not len(self.latencies):
            return 0.0
        return float(np.percentile(self.latencies, q))

    def render(self) -> str:
        """Human-readable report: traffic, faults, outcomes, SLO verdicts."""
        n = self.requests or 1
        rows = [
            ("requests", self.requests, ""),
            ("duration", f"{self.duration_seconds:.2f}s virtual",
             f"{self.requests / max(self.duration_seconds, 1e-9):.0f} rps"),
            ("completed", self.completed, f"{self.completed / n:.1%}"),
            ("shed", self.shed,
             f"{self.shed_rate:.1%} (limit {self.shed_rate_limit:.0%})"),
            ("unhandled errors", self.unhandled,
             " ".join(f"{k}x{v}" for k, v in self.unhandled_kinds.items())),
            ("flushed past deadline", self.expired_flushed, ""),
            ("p50 / p99 latency",
             f"{self.quantile(50) * 1e3:.2f} / {self.quantile(99) * 1e3:.2f} ms",
             ""),
            ("store reads", self.store_reads,
             f"{self.injected_failures} failed, "
             f"{self.outage_rejections} outage-rejected"),
            ("corrupt rows", self.injected_corruptions,
             f"{self.corruptions_detected} detected by proxy"),
            ("deadline short-circuits", self.deadline_skips, ""),
            ("breaker trips", self.breaker_trips, ""),
        ]
        parts = [format_table(("metric", "value", "detail"), rows,
                              title=f"loadtest: {self.name}")]
        if self.schedule_lines:
            parts.append("fault schedule: " + "; ".join(self.schedule_lines))
        if self.shed_counts:
            parts.append("shed by cause: " + ", ".join(
                f"{cause}={count}" for cause, count
                in sorted(self.shed_counts.items())))
        if self.source_counts:
            total = sum(self.source_counts.values())
            parts.append("embedding sources: " + ", ".join(
                f"{src}={cnt} ({cnt / total:.1%})" for src, cnt
                in self.source_counts.most_common()))
        slo_rows = [(s.objective.name, s.objective.describe(),
                     "PASS" if s.passed else "FAIL",
                     f"{s.total} samples") for s in self.statuses]
        parts.append(format_table(("slo", "objective", "verdict", "window"),
                                  slo_rows, title="slo verdicts"))
        parts.append(f"chaos gate: {'PASS' if self.passed else 'FAIL'}")
        return "\n\n".join(parts)


class LoadTestHarness:
    """The overload-safe serving stack on one shared virtual clock.

    Parameters mirror the stack's own knobs; the defaults are sized so the
    acceptance chaos scenario (20% store failure, a 10x burst, one 2s
    outage window) passes its gate — they double as the reference tuning
    for the real serving configuration.
    """

    def __init__(self, n_users: int = 512, dim: int = 16, seed: int = 0,
                 schedule: ServingFaultSchedule | None = None,
                 objectives: tuple[str, ...] = ("p99 latency <= 50ms",
                                                "availability >= 99%"),
                 slo_window_seconds: float = 60.0,
                 deadline_budget_seconds: float | None = 0.05,
                 max_batch: int = 32, max_delay_seconds: float = 0.005,
                 max_queue: int = 256, policy: str = "reject",
                 throttle: AdaptiveThrottle | None | str = "auto",
                 cache_capacity: int = 256,
                 base_read_seconds: float = 5e-4,
                 per_key_read_seconds: float = 2e-5) -> None:
        self.clock = ManualClock()
        self.seed = seed
        self.deadline_budget_seconds = deadline_budget_seconds
        self.schedule = schedule or ServingFaultSchedule()

        rng = new_rng(seed)
        store = EmbeddingStore(dim)
        store.put_many(range(n_users), rng.normal(size=(n_users, dim)))
        self.store = ChaosStore(store, self.schedule, clock=self.clock,
                                base_seconds=base_read_seconds,
                                per_key_seconds=per_key_read_seconds,
                                rng=rng.integers(1 << 31))

        # short, clock-driven backoffs: three attempts fit inside the
        # request budget, and the breaker re-probes well within a window
        self.resilience = ServingResilience.from_store_prior(
            store,
            retry=RetryPolicy(max_attempts=3, backoff_seconds=0.002,
                              multiplier=2.0, max_backoff_seconds=0.01,
                              retry_on=_STORE_ERRORS, clock=self.clock,
                              sleep=self.clock.sleep),
            breaker=CircuitBreaker(failure_threshold=8, reset_seconds=0.25,
                                   clock=self.clock, name="loadtest-store"))
        infer_rng = new_rng(seed + 1)
        infer_vectors: dict[int, np.ndarray] = {}

        def infer(user_id):
            # a deterministic stand-in for on-the-fly model inference:
            # resolves two out of three unknown users, same answer each time
            if user_id % 3 == 0:
                return None
            if user_id not in infer_vectors:
                infer_vectors[user_id] = infer_rng.normal(size=dim)
            return infer_vectors[user_id]

        self.proxy = ServingProxy(self.store, cache_capacity=cache_capacity,
                                  infer_fn=infer, resilience=self.resilience)

        self.objectives: list[Objective] = [
            parse_objective(spec, window_seconds=slo_window_seconds)
            for spec in objectives]
        self.engine = SLOEngine(self.objectives, clock=self.clock)

        if throttle == "auto":
            latency_objs = [o for o in self.objectives if o.kind == "latency"]
            throttle = (AdaptiveThrottle.from_objective(latency_objs[0])
                        if latency_objs else None)
        self.throttle = throttle
        self.batcher = MicroBatcher(
            self._flush, max_batch=max_batch,
            max_delay_seconds=max_delay_seconds, clock=self.clock,
            max_queue=max_queue, policy=policy,
            degrade_fn=lambda key: self.resilience.default_for(dim),
            throttle=throttle)

    def _flush(self, keys):
        return self.proxy.get_embeddings_batch(keys)

    # -- the replay ------------------------------------------------------------

    def run(self, events: list[Request],
            name: str = "replay", shed_rate_limit: float = 0.2,
            ) -> LoadTestResult:
        """Replay ``events`` (sorted by arrival time) and score the run."""
        events = sorted(events)
        clock = self.clock
        outstanding: list[tuple[Request, object]] = []
        resolved: list[tuple[Request, object, float]] = []

        def settle() -> None:
            # stamp newly-resolved handles with the current virtual time;
            # outstanding stays small (bounded by queue depth) so this scan
            # is cheap even on long traces
            still = []
            for item in outstanding:
                if item[1].done:
                    resolved.append((*item, clock()))
                else:
                    still.append(item)
            outstanding[:] = still

        def advance_to(target: float) -> None:
            # honour the batcher's flush timer in virtual time: if the
            # current batch's delay deadline falls before ``target``, jump
            # the clock there and flush — the replay's stand-in for the
            # timer thread a real serving loop would have
            while True:
                flush_at = self.batcher.deadline
                if flush_at is None or flush_at >= target:
                    break
                if clock() < flush_at:
                    clock.advance(flush_at - clock())
                self.batcher.poll()
                settle()
            if clock() < target:
                clock.advance(target - clock())

        for req in events:
            advance_to(req.ts)
            deadline = (Deadline(self.deadline_budget_seconds, clock=clock)
                        if self.deadline_budget_seconds is not None else None)
            handle = self.batcher.submit(req.key, deadline=deadline)
            outstanding.append((req, handle))
            settle()
        final_flush = self.batcher.deadline
        if final_flush is not None:  # let the last batch age out naturally
            advance_to(final_flush)
            self.batcher.poll()
        self.batcher.close(drain=True)
        settle()
        if outstanding:  # close() resolves everything, one way or the other
            raise RuntimeError(
                f"{len(outstanding)} handles still pending after close")

        return self._score(events, resolved, name, shed_rate_limit)

    def _score(self, events, resolved, name, shed_rate_limit) -> LoadTestResult:
        latencies: list[float] = []
        unhandled_kinds: Counter[str] = Counter()
        for req, handle, ts in resolved:
            err = handle._error
            if err is None:
                # admitted and answered (possibly via a degraded tier); the
                # SLO window scores admitted requests only
                latency = max(ts - req.ts, 0.0)
                latencies.append(latency)
                self.engine.record(latency, ok=True, ts=ts)
            elif isinstance(err, (AdmissionError, ShutdownError)):
                pass  # shed — counted by the batcher, excluded from the SLO
            else:
                unhandled_kinds[type(err).__name__] += 1
                self.engine.record(max(ts - req.ts, 0.0), ok=False, ts=ts)

        duration = (events[-1].ts - events[0].ts) if len(events) > 1 else 0.0
        breaker = self.resilience.breaker
        return LoadTestResult(
            name=name,
            requests=self.batcher.submitted,
            completed=len(latencies),
            shed=self.batcher.shed,
            shed_counts=Counter(self.batcher.shed_counts),
            unhandled=sum(unhandled_kinds.values()),
            unhandled_kinds=unhandled_kinds,
            expired_flushed=self.batcher.expired_flushed,
            duration_seconds=duration,
            latencies=np.asarray(latencies, dtype=np.float64),
            source_counts=Counter(self.proxy.source_counts),
            statuses=self.engine.evaluate(),
            breaker_trips=breaker.trips if breaker is not None else 0,
            store_reads=self.store.reads,
            injected_failures=self.store.injected_failures,
            injected_corruptions=self.store.injected_corruptions,
            outage_rejections=self.store.outage_rejections,
            corruptions_detected=self.proxy.corruptions,
            deadline_skips=self.proxy.deadline_skips,
            shed_rate_limit=shed_rate_limit,
            schedule_lines=self.schedule.describe(),
        )


# -- canned scenarios ------------------------------------------------------------

def chaos_schedule(duration: float = 30.0,
                   failure_rate: float = 0.2,
                   outage_start: float | None = None,
                   outage_seconds: float = 2.0) -> ServingFaultSchedule:
    """The acceptance fault script: 20% background store failure, one
    ``outage_seconds`` hard outage, plus a slow-store window, a latency
    spike, and a corrupted-row window to exercise every degraded tier."""
    if outage_start is None:
        outage_start = 0.6 * duration
    return ServingFaultSchedule(
        windows=[
            ChaosWindow(OUTAGE, outage_start, outage_start + outage_seconds),
            ChaosWindow(SLOW_STORE, 0.15 * duration, 0.25 * duration,
                        magnitude=4.0),
            ChaosWindow(LATENCY_SPIKE, 0.45 * duration, 0.50 * duration,
                        magnitude=0.004),
            ChaosWindow(CORRUPT, 0.8 * duration, 0.85 * duration,
                        magnitude=0.3),
        ],
        failure_rate=failure_rate)


def run_loadtest(scenario: str = "steady", duration: float = 10.0,
                 rate: float = 100.0, seed: int = 0, n_users: int = 512,
                 schedule: ServingFaultSchedule | None = None,
                 shed_rate_limit: float = 0.2,
                 **harness_kwargs) -> LoadTestResult:
    """Generate a named scenario's trace and replay it through a fresh stack."""
    try:
        trace_fn = SCENARIOS[scenario]
    except KeyError:
        raise ValueError(f"unknown scenario {scenario!r}; "
                         f"expected one of {sorted(SCENARIOS)}") from None
    events = trace_fn(duration=duration, rate=rate, n_keys=n_users, seed=seed)
    harness = LoadTestHarness(n_users=n_users, seed=seed, schedule=schedule,
                              **harness_kwargs)
    return harness.run(events, name=scenario, shed_rate_limit=shed_rate_limit)


def run_chaos(duration: float = 30.0, rate: float = 60.0,
              burst_multiplier: float = 10.0, burst_seconds: float = 2.0,
              failure_rate: float = 0.2, outage_seconds: float = 2.0,
              seed: int = 0, n_users: int = 512,
              shed_rate_limit: float = 0.2,
              **harness_kwargs) -> LoadTestResult:
    """The acceptance chaos run: bursty traffic against the fault script.

    This is the configuration the CI chaos gate replays — 20% store
    failure, one ``burst_multiplier``x burst, one hard outage window —
    asserting zero unhandled errors, shed rate within the limit, and green
    SLOs, deterministically for a given ``seed``.
    """
    events = bursty_trace(duration=duration, rate=rate,
                          burst_multiplier=burst_multiplier,
                          burst_seconds=burst_seconds, n_keys=n_users,
                          seed=seed)
    schedule = chaos_schedule(duration=duration, failure_rate=failure_rate,
                              outage_seconds=outage_seconds)
    harness = LoadTestHarness(n_users=n_users, seed=seed, schedule=schedule,
                              **harness_kwargs)
    return harness.run(events, name="chaos", shed_rate_limit=shed_rate_limit)
