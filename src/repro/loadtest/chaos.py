"""Serving-side fault schedules: scripted chaos on a virtual clock.

PR 2's :class:`~repro.resilience.faults.FaultSchedule` injects faults into
*training* steps; this module is its serving-side counterpart.  A
:class:`ServingFaultSchedule` scripts *when* the embedding store misbehaves —
outage windows, latency spikes, slow-store stragglers, corrupted-row
windows — on the replay's virtual timeline, plus seeded background failure
and corruption rates between windows.

:class:`ChaosStore` applies the schedule.  It wraps a real
:class:`~repro.lookalike.store.EmbeddingStore` and models *service time* by
advancing a shared :class:`~repro.utils.timer.ManualClock` on every read:
the base cost plus per-key cost, scaled by any active slow-store window and
stretched by any active latency spike.  Because the same clock drives the
request deadlines, retry backoff, breaker cooldowns, and the SLO engine,
a chaos replay is completely deterministic given the seed — no threads, no
wall clock, no flaky asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

import numpy as np

from repro.obs import runtime as obs
from repro.resilience.faults import StoreUnavailableError
from repro.utils.rng import new_rng

__all__ = ["OUTAGE", "LATENCY_SPIKE", "SLOW_STORE", "CORRUPT", "CHAOS_KINDS",
           "ChaosWindow", "ServingFaultSchedule", "ChaosStore"]

#: Every store read inside the window raises :class:`StoreUnavailableError`.
OUTAGE = "outage"
#: ``magnitude`` extra seconds added to every read inside the window.
LATENCY_SPIKE = "latency_spike"
#: Service time multiplied by ``magnitude`` inside the window (stragglers).
SLOW_STORE = "slow_store"
#: Rows corrupted (NaN) with probability ``magnitude`` inside the window.
CORRUPT = "corrupt"

CHAOS_KINDS = (OUTAGE, LATENCY_SPIKE, SLOW_STORE, CORRUPT)


@dataclass(frozen=True)
class ChaosWindow:
    """One scripted fault interval ``[start, end)`` on the virtual timeline."""

    kind: str
    start: float
    end: float
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_KINDS:
            raise ValueError(
                f"unknown chaos kind {self.kind!r}; expected one of {CHAOS_KINDS}")
        if self.end < self.start:
            raise ValueError(f"window ends before it starts: "
                             f"{self.start}..{self.end}")
        if self.magnitude < 0:
            raise ValueError(f"magnitude must be non-negative: {self.magnitude}")

    def active(self, t: float) -> bool:
        return self.start <= t < self.end


@dataclass
class ServingFaultSchedule:
    """Scripted store faults plus seeded background noise for one replay.

    Attributes
    ----------
    windows:
        Scripted :class:`ChaosWindow` intervals.  Windows of the same kind
        may overlap: slow-store factors multiply, latency spikes add, and
        the max corruption probability wins.
    failure_rate:
        Background probability that any single read (outside outage
        windows) raises :class:`StoreUnavailableError` — the "20% store
        failure" of the chaos gate.
    corruption_rate:
        Background per-row corruption probability outside corrupt windows.
    """

    windows: list[ChaosWindow] = field(default_factory=list)
    failure_rate: float = 0.0
    corruption_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("failure_rate", "corruption_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be a probability: {rate}")
        self.windows = sorted(self.windows, key=lambda w: (w.start, w.end))

    def of(self, kind: str) -> list[ChaosWindow]:
        return [w for w in self.windows if w.kind == kind]

    def active(self, kind: str, t: float) -> list[ChaosWindow]:
        return [w for w in self.windows if w.kind == kind and w.active(t)]

    def in_outage(self, t: float) -> bool:
        return bool(self.active(OUTAGE, t))

    def slowdown(self, t: float) -> float:
        """Service-time multiplier at ``t`` (slow-store windows compound)."""
        factor = 1.0
        for window in self.active(SLOW_STORE, t):
            factor *= window.magnitude
        return factor

    def extra_latency(self, t: float) -> float:
        """Additive latency (seconds) at ``t`` from active spike windows."""
        return sum(w.magnitude for w in self.active(LATENCY_SPIKE, t))

    def corruption_at(self, t: float) -> float:
        """Per-row corruption probability at ``t``."""
        window_rate = max((w.magnitude for w in self.active(CORRUPT, t)),
                         default=0.0)
        return max(self.corruption_rate, window_rate)

    def describe(self) -> list[str]:
        lines = [f"{w.kind} [{w.start:g}s, {w.end:g}s) x{w.magnitude:g}"
                 for w in self.windows]
        if self.failure_rate:
            lines.append(f"background failure rate {self.failure_rate:.0%}")
        if self.corruption_rate:
            lines.append(f"background corruption rate {self.corruption_rate:.1%}")
        return lines or ["no faults"]


class ChaosStore:
    """Store front that bills virtual service time and applies the schedule.

    Duck-types :class:`~repro.lookalike.store.EmbeddingStore` reads/writes.
    Every read first checks the schedule at the *current* virtual time, then
    advances the shared clock by the modelled service cost::

        (base_seconds + per_key_seconds * n_keys) * slowdown(t) + extra_latency(t)

    and only then rolls background failure / corruption.  Outage windows
    fail fast (no service time billed) — the retries and breaker above
    see an immediately-unavailable dependency, exactly like a refused
    connection.
    """

    def __init__(self, store, schedule: ServingFaultSchedule, clock,
                 base_seconds: float = 5e-4, per_key_seconds: float = 2e-5,
                 rng: np.random.Generator | int | None = 0) -> None:
        self.store = store
        self.schedule = schedule
        self.clock = clock
        self.base_seconds = base_seconds
        self.per_key_seconds = per_key_seconds
        self._rng = new_rng(rng)
        self.reads = 0
        self.injected_failures = 0
        self.injected_corruptions = 0  # corrupted rows handed out
        self.outage_rejections = 0

    # -- store surface ---------------------------------------------------------

    @property
    def dim(self) -> int:
        return self.store.dim

    def __len__(self) -> int:
        return len(self.store)

    def __contains__(self, user_id: Hashable) -> bool:
        return user_id in self.store

    def keys(self):
        return self.store.keys()

    def as_matrix(self):
        return self.store.as_matrix()

    def put(self, user_id: Hashable, vector) -> None:
        self.store.put(user_id, vector)

    def put_many(self, ids: Sequence[Hashable], matrix) -> None:
        self.store.put_many(ids, matrix)

    # -- chaos-modelled reads --------------------------------------------------

    def _enter_read(self, n_keys: int) -> float:
        """Apply the schedule for one read; returns the fault time ``t``."""
        self.reads += 1
        t = self.clock()
        if self.schedule.in_outage(t):
            self.outage_rejections += 1
            obs.count("chaos.outage_rejections")
            raise StoreUnavailableError(
                f"store outage window active at t={t:.3f}s")
        cost = ((self.base_seconds + self.per_key_seconds * n_keys)
                * self.schedule.slowdown(t) + self.schedule.extra_latency(t))
        self.clock.advance(cost)
        if self.schedule.failure_rate and \
                self._rng.random() < self.schedule.failure_rate:
            self.injected_failures += 1
            obs.count("chaos.injected_failures")
            raise StoreUnavailableError(
                f"injected store failure at t={t:.3f}s")
        return t

    def _corrupt_rows(self, matrix: np.ndarray, found: np.ndarray,
                      t: float) -> np.ndarray:
        rate = self.schedule.corruption_at(t)
        if rate <= 0.0 or not found.any():
            return matrix
        mask = found & (self._rng.random(len(matrix)) < rate)
        if mask.any():
            matrix = matrix.copy()
            matrix[mask] = np.nan
            self.injected_corruptions += int(mask.sum())
            obs.count("chaos.injected_corruptions", int(mask.sum()))
        return matrix

    def get(self, user_id: Hashable):
        t = self._enter_read(1)
        vec = self.store.get(user_id)
        if vec is not None:
            rate = self.schedule.corruption_at(t)
            if rate > 0.0 and self._rng.random() < rate:
                vec = np.full_like(np.atleast_1d(vec), np.nan)
                self.injected_corruptions += 1
                obs.count("chaos.injected_corruptions")
        return vec

    def get_many(self, ids: Sequence[Hashable]):
        return {user_id: vec for user_id in ids
                if (vec := self.get(user_id)) is not None}

    def get_batch(self, ids: Sequence[Hashable]):
        t = self._enter_read(len(ids))
        matrix, found = self.store.get_batch(ids)
        return self._corrupt_rows(matrix, found, t), found
