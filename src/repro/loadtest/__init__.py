"""Seeded load testing and serving-side chaos for the online module.

Three layers, all deterministic given a seed:

* :mod:`repro.loadtest.arrivals` — heavy-tailed traffic generators
  (Poisson baseline, explicit bursts, on/off sources, Zipf hot keys,
  cold-start floods) producing replayable ``(ts, key)`` traces;
* :mod:`repro.loadtest.chaos` — serving-side fault schedules (outage
  windows, latency spikes, slow-store stragglers, corrupted rows) applied
  by a :class:`ChaosStore` that bills virtual service time on a shared
  ``ManualClock``;
* :mod:`repro.loadtest.driver` — the single-threaded virtual-time replay
  driving ``MicroBatcher → ServingProxy → store`` and scoring the run
  against the SLO engine, including the CI chaos gate
  (:func:`run_chaos`).

Exposed on the CLI as ``python -m repro loadtest`` and ``repro chaos``.
"""

from repro.loadtest.arrivals import (ColdStartKeys, Request, SCENARIOS,
                                     UniformKeys, ZipfKeys, bursty_trace,
                                     cold_start_trace, hot_key_trace,
                                     make_trace, onoff_times,
                                     piecewise_poisson_times, poisson_times,
                                     steady_trace)
from repro.loadtest.chaos import (CHAOS_KINDS, CORRUPT, LATENCY_SPIKE, OUTAGE,
                                  SLOW_STORE, ChaosStore, ChaosWindow,
                                  ServingFaultSchedule)
from repro.loadtest.driver import (LoadTestHarness, LoadTestResult,
                                   chaos_schedule, run_chaos, run_loadtest)

__all__ = [
    "Request", "SCENARIOS", "UniformKeys", "ZipfKeys", "ColdStartKeys",
    "poisson_times", "piecewise_poisson_times", "onoff_times", "make_trace",
    "steady_trace", "bursty_trace", "hot_key_trace", "cold_start_trace",
    "CHAOS_KINDS", "OUTAGE", "LATENCY_SPIKE", "SLOW_STORE", "CORRUPT",
    "ChaosWindow", "ServingFaultSchedule", "ChaosStore",
    "LoadTestHarness", "LoadTestResult", "chaos_schedule", "run_loadtest",
    "run_chaos",
]
