"""Cheap runtime invariant checks for training loops.

Two layers, mirroring how :mod:`repro.obs.runtime` keeps default-on
instrumentation free:

* **Standalone verifiers** (:func:`finite_params`, :func:`finite_grads`,
  :func:`kl_nonneg`, :func:`elbo_consistent`, :func:`table_bijection`,
  :func:`moment_shapes`) — pure functions returning a list of
  :class:`InvariantViolation`; usable from tests, notebooks, or ``python -m
  repro check``.
* **A process-wide runtime** (:func:`install` / :func:`uninstall` /
  :func:`session`) plus the :func:`assert_finite` hot-path helper — a single
  global load and ``None`` check when nothing is installed, so sprinkling
  assertions through production code costs effectively nothing.

:class:`InvariantCallback` packages the verifiers as a
:class:`~repro.obs.callbacks.TrainerCallback` for ``Trainer.fit``: per-batch
checks run every ``check_every`` steps, structural checks at epoch
boundaries.  Every violation increments the ``invariant.violations`` obs
counter (labelled by check name); ``strict=True`` escalates to an exception.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from repro.obs import runtime as obs
from repro.obs.callbacks import TrainerCallback

__all__ = ["InvariantViolation", "InvariantError", "InvariantRuntime",
           "install", "uninstall", "current", "enabled", "session",
           "assert_finite", "finite_params", "finite_grads", "kl_nonneg",
           "elbo_consistent", "table_bijection", "moment_shapes",
           "check_model", "InvariantCallback"]


@dataclass(frozen=True)
class InvariantViolation:
    """One broken invariant: which check, where, and what went wrong."""

    check: str
    subject: str
    message: str

    def __str__(self) -> str:
        return f"{self.check}[{self.subject}]: {self.message}"


class InvariantError(AssertionError):
    """Raised in strict mode; carries the triggering violations."""

    def __init__(self, violations: list[InvariantViolation]) -> None:
        self.violations = list(violations)
        super().__init__("; ".join(str(v) for v in violations))


# -- standalone verifiers ------------------------------------------------------

def _finite_violations(check: str, subject: str, array: np.ndarray,
                       ) -> list[InvariantViolation]:
    if np.isfinite(array).all():
        return []
    bad = int(np.size(array) - np.count_nonzero(np.isfinite(array)))
    return [InvariantViolation(check, subject,
                               f"{bad} non-finite value(s) of {np.size(array)}")]


def finite_params(model) -> list[InvariantViolation]:
    """Every parameter value is finite."""
    out: list[InvariantViolation] = []
    for name, p in model.named_parameters():
        out.extend(_finite_violations("finite_params", name, p.data))
    return out


def finite_grads(model) -> list[InvariantViolation]:
    """Every recorded gradient (dense and sparse parts) is finite."""
    out: list[InvariantViolation] = []
    for name, p in model.named_parameters():
        if p.grad is not None:
            out.extend(_finite_violations("finite_grads", name, p.grad))
        for i, (rows, grads) in enumerate(getattr(p, "sparse_grad_parts", ())):
            out.extend(_finite_violations("finite_grads",
                                          f"{name}.sparse[{i}]", grads))
            n_rows = p.data.shape[0]
            if rows.size and (rows.min() < 0 or rows.max() >= n_rows):
                out.append(InvariantViolation(
                    "finite_grads", f"{name}.sparse[{i}]",
                    f"row indices outside [0, {n_rows})"))
    return out


def kl_nonneg(diagnostics: dict, atol: float = 1e-9) -> list[InvariantViolation]:
    """KL(q‖p) between Gaussians is non-negative (up to roundoff)."""
    kl = diagnostics.get("kl")
    if kl is None or not np.isfinite(kl) or kl >= -atol:
        return []
    return [InvariantViolation("kl_nonneg", "kl", f"kl={kl!r} < 0")]


def elbo_consistent(diagnostics: dict, rtol: float = 1e-9, atol: float = 1e-8,
                    ) -> list[InvariantViolation]:
    """The reported loss decomposes as ``recon + beta * kl``."""
    try:
        loss = float(diagnostics["loss"])
        recon = float(diagnostics["recon"])
        kl = float(diagnostics["kl"])
        beta = float(diagnostics["beta"])
    except (KeyError, TypeError, ValueError):
        return []  # model doesn't report an ELBO decomposition
    if not all(np.isfinite(v) for v in (loss, recon, kl, beta)):
        return [InvariantViolation("elbo_consistent", "loss",
                                   f"non-finite components: loss={loss} "
                                   f"recon={recon} kl={kl} beta={beta}")]
    expected = recon + beta * kl
    if abs(loss - expected) <= atol + rtol * abs(expected):
        return []
    return [InvariantViolation(
        "elbo_consistent", "loss",
        f"loss={loss!r} but recon + beta*kl = {expected!r} "
        f"(diff {abs(loss - expected):.3e})")]


def _iter_tables(model):
    """Yield ``(label, table)`` for every distinct DynamicHashTable reachable
    through the model's module tree (encoder/decoder share tables; dedupe)."""
    from repro.hashing import DynamicHashTable

    seen: set[int] = set()
    modules = model.modules() if hasattr(model, "modules") else [model]
    for module in modules:
        for attr, value in vars(module).items():
            if isinstance(value, DynamicHashTable) and id(value) not in seen:
                seen.add(id(value))
                yield (value.name or attr), value


def table_bijection(model) -> list[InvariantViolation]:
    """Every dynamic hash table is a dense id↔row bijection."""
    out: list[InvariantViolation] = []
    for label, table in _iter_tables(model):
        for problem in table.verify_bijection():
            out.append(InvariantViolation("table_bijection", label, problem))
    return out


def moment_shapes(optimizer) -> list[InvariantViolation]:
    """Optimizer moment buffers match their parameters' shapes and stay finite.

    A shape mismatch is legal *transiently* (a dynamic table grew the
    parameter since the last step — Adam re-grows lazily) only while the
    buffer is a prefix of the parameter; anything else is state corruption.
    """
    out: list[InvariantViolation] = []
    buffer_sets = [("m", getattr(optimizer, "_m", {})),
                   ("v", getattr(optimizer, "_v", {})),
                   ("vel", getattr(optimizer, "_velocity", {}))]
    for i, p in enumerate(getattr(optimizer, "params", ())):
        for kind, buffers in buffer_sets:
            buf = buffers.get(id(p))
            if buf is None:
                continue
            subject = f"params[{i}].{kind}"
            if buf.ndim != p.data.ndim or any(
                    b > s for b, s in zip(buf.shape, p.data.shape)):
                out.append(InvariantViolation(
                    "moment_shapes", subject,
                    f"buffer shape {buf.shape} incompatible with parameter "
                    f"shape {p.data.shape}"))
            out.extend(_finite_violations("moment_shapes", subject, buf))
    return out


def check_model(model, optimizer=None, diagnostics: dict | None = None,
                ) -> list[InvariantViolation]:
    """Run every applicable verifier once; convenience for tests and the CLI."""
    out = finite_params(model) + finite_grads(model) + table_bijection(model)
    if optimizer is not None:
        out.extend(moment_shapes(optimizer))
    if diagnostics is not None:
        out.extend(kl_nonneg(diagnostics))
        out.extend(elbo_consistent(diagnostics))
    return out


# -- process-wide runtime (no-op fast path, mirroring repro.obs.runtime) -------

class InvariantRuntime:
    """One checking session: accumulates violations, optionally raising."""

    def __init__(self, strict: bool = False) -> None:
        self.strict = strict
        self.violations: list[InvariantViolation] = []

    def record(self, violations: list[InvariantViolation]) -> None:
        if not violations:
            return
        self.violations.extend(violations)
        for v in violations:
            obs.count("invariant.violations", check=v.check)
        if self.strict:
            raise InvariantError(violations)


_RUNTIME: InvariantRuntime | None = None


def install(runtime: InvariantRuntime | None = None, strict: bool = False,
            ) -> InvariantRuntime:
    """Make ``runtime`` (or a fresh one) the process-wide violation sink."""
    global _RUNTIME
    _RUNTIME = runtime if runtime is not None else InvariantRuntime(strict=strict)
    return _RUNTIME


def uninstall() -> InvariantRuntime | None:
    """Remove the installed runtime (returning it); helpers become no-ops."""
    global _RUNTIME
    runtime, _RUNTIME = _RUNTIME, None
    return runtime


def current() -> InvariantRuntime | None:
    return _RUNTIME


def enabled() -> bool:
    return _RUNTIME is not None


@contextmanager
def session(runtime: InvariantRuntime | None = None, strict: bool = False):
    """Install a runtime for the block, restoring the previous one after."""
    global _RUNTIME
    previous = _RUNTIME
    runtime = install(runtime, strict=strict)
    try:
        yield runtime
    finally:
        _RUNTIME = previous


def assert_finite(subject: str, array: np.ndarray) -> None:
    """Hot-path helper: record non-finite values when a runtime is installed.

    One global load + ``None`` check when uninstalled — safe to leave in
    production code paths, like the :mod:`repro.obs` helpers.
    """
    runtime = _RUNTIME
    if runtime is None:
        return
    runtime.record(_finite_violations("assert_finite", subject,
                                      np.asarray(array)))


# -- trainer integration -------------------------------------------------------

class InvariantCallback(TrainerCallback):
    """Run invariant checks inside ``Trainer.fit``.

    Per-batch checks (finite grads, KL ≥ 0, ELBO decomposition) run every
    ``check_every`` optimizer steps; structural checks (finite params, table
    bijection, optimizer moment shapes) run at epoch boundaries, where a
    full parameter sweep is amortised over the whole epoch.

    Violations accumulate on ``self.violations``, feed the installed
    :class:`InvariantRuntime` (if any), and increment the
    ``invariant.violations`` obs counter per occurrence.  ``strict=True``
    raises :class:`InvariantError` at the offending hook instead of carrying
    on.
    """

    def __init__(self, check_every: int = 1, strict: bool = False) -> None:
        if check_every < 1:
            raise ValueError(f"check_every must be >= 1: {check_every}")
        self.check_every = check_every
        self.strict = strict
        self.violations: list[InvariantViolation] = []

    def _record(self, violations: list[InvariantViolation]) -> None:
        if not violations:
            return
        self.violations.extend(violations)
        runtime = _RUNTIME
        if runtime is not None:
            runtime.record(violations)
        else:
            for v in violations:
                obs.count("invariant.violations", check=v.check)
        if self.strict:
            raise InvariantError(violations)

    def on_batch_end(self, trainer, epoch: int, step: int, loss: float,
                     diagnostics: dict) -> None:
        if step % self.check_every:
            return
        found = finite_grads(trainer.model)
        found += kl_nonneg(diagnostics)
        found += elbo_consistent(diagnostics)
        self._record(found)

    def on_epoch_end(self, trainer, record) -> None:
        found = finite_params(trainer.model)
        found += table_bijection(trainer.model)
        found += moment_shapes(trainer.optimizer)
        self._record(found)
