"""Golden-run regression baselines: committed digests of seeded mini-runs.

Two committed artifacts live under ``benchmarks/golden/``:

* ``GOLDEN_run.json`` — digests of a seeded FVAE mini-run on a small
  ``make_kd_like`` sample (per-epoch loss/recon/kl curves, per-parameter
  norms, hash-table sizes, fold-in tag-prediction AUC/mAP), one ``quick``
  and one ``full`` variant;
* ``GOLDEN_datasets.json`` — summary statistics of the three synthetic
  presets at their default sizes (row-nnz distribution, per-field vocab
  coverage, persona tag overlap).

**Tolerance policy.**  Dataset digests are pure NumPy RNG + integer
reductions — platform-stable — so they are compared (near-)exactly
(``atol=1e-9`` absorbs nothing but summation-order noise in float means).
Run digests go through BLAS matmuls whose summation order varies across
BLAS builds and thread counts, so floats are compared with
``rtol=1e-4`` / ``atol=1e-8``; integer entries (table sizes, epoch counts)
stay exact.  The tolerances are recorded inside the golden files themselves
so the comparison and its policy travel together.

**Regeneration.**  ``python -m repro check --update-golden`` rewrites both
files; commit the diff *only* when the change is intended (a deliberate
change to model, data generation, or training semantics) and say so in the
commit message.  See ``docs/TESTING.md``.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

__all__ = ["RUN_GOLDEN", "DATASET_GOLDEN", "RUN_RTOL", "RUN_ATOL",
           "DATASET_ATOL", "default_golden_dir", "run_digest",
           "dataset_digests", "compare_run_digest", "compare_dataset_digests",
           "load_golden", "update_golden", "check_golden",
           "check_captured_golden"]

RUN_GOLDEN = "GOLDEN_run.json"
DATASET_GOLDEN = "GOLDEN_datasets.json"

RUN_RTOL = 1e-4    # cross-BLAS summation-order drift on matmul-derived floats
RUN_ATOL = 1e-8
DATASET_ATOL = 1e-9  # dataset stats are BLAS-free; effectively exact

# Mini-run sizing: small enough for CI, large enough that every code path
# (sampled softmax, feature dropout, KL annealing, table growth) is exercised.
_RUN_PRESETS = {
    "quick": {"n_users": 240, "epochs": 2, "batch_size": 64},
    "full": {"n_users": 600, "epochs": 3, "batch_size": 64},
}

_DATASET_PRESETS = ("sc", "kd", "qb")
_QUICK_DATASETS = ("sc",)  # smallest preset; --quick checks only this one


def default_golden_dir() -> Path:
    """``benchmarks/golden/`` at the repo root (next to ``benchmarks/results``)."""
    return Path(__file__).resolve().parents[3] / "benchmarks" / "golden"


# -- digest construction -------------------------------------------------------

def run_digest(quick: bool = True, seed: int = 0, loader=None,
               capture: bool = False) -> dict:
    """Train a seeded FVAE mini-run and digest everything that must not drift.

    ``loader`` injects a batch pipeline into ``Trainer.fit`` (used by the
    mutation tests to prove a loader reorder is caught); ``None`` uses the
    default synchronous loader.  ``capture=True`` routes the run through the
    static-tape capture path — the digest must equal the committed dynamic
    golden bit-for-float, which is how ``repro check`` proves captured
    training doesn't drift.
    """
    from repro.core import FVAE, FVAEConfig
    from repro.data import make_kd_like
    from repro.tasks.tag_prediction import evaluate_tag_prediction

    preset = _RUN_PRESETS["quick" if quick else "full"]
    data = make_kd_like(n_users=preset["n_users"], seed=seed)
    train, test = data.dataset.split([0.8, 0.2], rng=seed)

    config = FVAEConfig(latent_dim=16, encoder_hidden=[32],
                        decoder_hidden=[32], sampling_rate=0.5,
                        anneal_steps=20, embedding_capacity=64, seed=seed)
    model = FVAE(train.schema, config)
    model.fit(train, epochs=preset["epochs"],
              batch_size=preset["batch_size"], rng=seed, loader=loader,
              capture=capture)

    result = evaluate_tag_prediction(model, test, rng=seed)
    history = model.history
    norms = {name: float(np.linalg.norm(p.data))
             for name, p in sorted(model.named_parameters())}
    tables = {spec.name: int(model.encoder.bag(spec.name).table.size)
              for spec in train.schema}
    return {
        "preset": dict(preset, seed=seed, mode="quick" if quick else "full"),
        "loss_curve": [float(v) for v in history.series("loss")],
        "recon_curve": [float(v) for v in history.series("recon")],
        "kl_curve": [float(v) for v in history.series("kl")],
        "final_beta": float(history.epochs[-1].beta),
        "param_norms": norms,
        "table_sizes": tables,
        "metrics": {"auc": float(result.auc), "map": float(result.map),
                    "n_users": int(result.n_users)},
    }


def _field_digest(csr) -> dict:
    nnz_per_row = np.diff(csr.indptr)
    observed = int(np.unique(csr.indices).size)
    return {
        "vocab": int(csr.n_cols),
        "nnz": int(csr.indices.size),
        "observed_vocab": observed,
        "vocab_coverage": float(observed / csr.n_cols),
        "row_nnz_mean": float(nnz_per_row.mean()),
        "row_nnz_min": int(nnz_per_row.min()),
        "row_nnz_max": int(nnz_per_row.max()),
        "row_nnz_p50": float(np.percentile(nnz_per_row, 50)),
        "row_nnz_p90": float(np.percentile(nnz_per_row, 90)),
        "weight_sum": float(csr.weights.sum()) if csr.weights is not None
        else float(csr.indices.size),
    }


def _persona_overlap(synthetic, n_pairs: int = 500, seed: int = 0) -> dict:
    """Mean Jaccard overlap of tag sets within vs between personas.

    The persona structure is what makes the synthetic data non-trivially
    clusterable; a refactor that silently flattens it would leave marginal
    statistics intact, so it is digested explicitly.
    """
    from repro.utils.rng import new_rng

    personas = synthetic.personas
    csr = synthetic.dataset.field("tag")
    tag_sets = [set(csr.indices[csr.indptr[i]:csr.indptr[i + 1]].tolist())
                for i in range(synthetic.dataset.n_users)]

    rng = new_rng(seed)
    by_persona: dict[int, list[int]] = {}
    for user, persona in enumerate(personas.tolist()):
        by_persona.setdefault(persona, []).append(user)
    eligible = [users for users in by_persona.values() if len(users) >= 2]

    def jaccard(a: int, b: int) -> float:
        sa, sb = tag_sets[a], tag_sets[b]
        union = len(sa | sb)
        return len(sa & sb) / union if union else 0.0

    within = []
    for __ in range(n_pairs):
        users = eligible[int(rng.integers(len(eligible)))]
        a, b = rng.choice(len(users), size=2, replace=False)
        within.append(jaccard(users[a], users[b]))
    between = []
    n_users = synthetic.dataset.n_users
    while len(between) < n_pairs:
        a, b = rng.integers(n_users, size=2)
        if personas[a] != personas[b]:
            between.append(jaccard(int(a), int(b)))
    return {
        "n_personas": int(len(by_persona)),
        "within_jaccard": float(np.mean(within)),
        "between_jaccard": float(np.mean(between)),
    }


def dataset_digests(presets=_DATASET_PRESETS, seed: int = 0) -> dict:
    """Summary statistics of the synthetic presets at default sizes."""
    from repro.data import get_dataset

    out = {}
    for name in presets:
        synthetic = get_dataset(name, seed=seed)
        ds = synthetic.dataset
        out[name] = {
            "n_users": int(ds.n_users),
            "fields": list(ds.field_names),
            "per_field": {field: _field_digest(ds.field(field))
                          for field in ds.field_names},
            "persona": _persona_overlap(synthetic, seed=seed),
        }
    return out


# -- comparison ----------------------------------------------------------------

def _compare(path: str, golden, actual, rtol: float, atol: float,
             problems: list[str]) -> None:
    """Recursive structural diff; floats within tolerance, everything else
    exact.  Appends a human-readable problem string per divergence."""
    if isinstance(golden, dict):
        if not isinstance(actual, dict):
            problems.append(f"{path}: expected mapping, got {type(actual).__name__}")
            return
        for key in golden:
            if key not in actual:
                problems.append(f"{path}.{key}: missing from actual digest")
            else:
                _compare(f"{path}.{key}", golden[key], actual[key],
                         rtol, atol, problems)
        for key in actual:
            if key not in golden:
                problems.append(f"{path}.{key}: not present in golden digest")
    elif isinstance(golden, list):
        if not isinstance(actual, list) or len(actual) != len(golden):
            problems.append(f"{path}: length {len(golden)} vs "
                            f"{len(actual) if isinstance(actual, list) else actual!r}")
            return
        for i, (g, a) in enumerate(zip(golden, actual)):
            _compare(f"{path}[{i}]", g, a, rtol, atol, problems)
    elif isinstance(golden, bool) or golden is None or isinstance(golden, str):
        if actual != golden:
            problems.append(f"{path}: {golden!r} != {actual!r}")
    elif isinstance(golden, int) and isinstance(actual, int):
        if actual != golden:
            problems.append(f"{path}: {golden} != {actual}")
    else:  # float (or int/float mix): tolerance-bounded
        g, a = float(golden), float(actual)
        both_nan = np.isnan(g) and np.isnan(a)
        if not both_nan and not np.isclose(a, g, rtol=rtol, atol=atol):
            problems.append(f"{path}: {g!r} != {a!r} "
                            f"(|diff|={abs(a - g):.3e}, rtol={rtol}, atol={atol})")


def compare_run_digest(golden: dict, actual: dict, rtol: float = RUN_RTOL,
                       atol: float = RUN_ATOL) -> list[str]:
    """Diff a run digest against its golden; empty list means a match."""
    problems: list[str] = []
    _compare("run", golden, actual, rtol, atol, problems)
    return problems


def compare_dataset_digests(golden: dict, actual: dict,
                            atol: float = DATASET_ATOL) -> list[str]:
    """Diff dataset digests against golden; near-exact policy (no BLAS)."""
    problems: list[str] = []
    _compare("datasets", golden, actual, 0.0, atol, problems)
    return problems


# -- persistence and the check/update entry points -----------------------------

def load_golden(name: str, directory: str | Path | None = None) -> dict:
    """Load one committed golden file (``RUN_GOLDEN`` or ``DATASET_GOLDEN``)."""
    directory = Path(directory) if directory is not None else default_golden_dir()
    path = directory / name
    if not path.exists():
        raise FileNotFoundError(
            f"no golden file {path}; generate it with "
            f"'python -m repro check --update-golden'")
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def _write(path: Path, payload: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def update_golden(directory: str | Path | None = None, seed: int = 0,
                  ) -> list[Path]:
    """Regenerate both golden files; returns the written paths."""
    directory = Path(directory) if directory is not None else default_golden_dir()
    run_path = directory / RUN_GOLDEN
    _write(run_path, {
        "policy": {"rtol": RUN_RTOL, "atol": RUN_ATOL,
                   "note": "floats tolerance-bounded (BLAS summation order); "
                           "ints exact"},
        "quick": run_digest(quick=True, seed=seed),
        "full": run_digest(quick=False, seed=seed),
    })
    dataset_path = directory / DATASET_GOLDEN
    _write(dataset_path, {
        "policy": {"atol": DATASET_ATOL,
                   "note": "BLAS-free generation; near-exact comparison"},
        "datasets": dataset_digests(seed=seed),
    })
    return [run_path, dataset_path]


def check_captured_golden(quick: bool = True,
                          directory: str | Path | None = None,
                          seed: int = 0) -> list[str]:
    """Re-run the golden mini-run through static-tape capture and diff it.

    The captured run must land inside the *same* tolerance envelope as the
    committed dynamic digest — on any one machine the captured and dynamic
    runs are bit-identical, so a divergence here means the replay path
    changed the arithmetic.
    """
    golden_run = load_golden(RUN_GOLDEN, directory)
    policy = golden_run.get("policy", {})
    mode = "quick" if quick else "full"
    return compare_run_digest(golden_run[mode],
                              run_digest(quick=quick, seed=seed, capture=True),
                              rtol=float(policy.get("rtol", RUN_RTOL)),
                              atol=float(policy.get("atol", RUN_ATOL)))


def check_golden(quick: bool = True, directory: str | Path | None = None,
                 seed: int = 0) -> list[str]:
    """Recompute digests and diff them against the committed goldens.

    ``quick`` uses the small run preset and only the fastest dataset preset;
    the full mode recomputes everything.  Returns problem strings (empty =
    all digests match within policy).
    """
    golden_run = load_golden(RUN_GOLDEN, directory)
    policy = golden_run.get("policy", {})
    rtol = float(policy.get("rtol", RUN_RTOL))
    atol = float(policy.get("atol", RUN_ATOL))
    mode = "quick" if quick else "full"
    problems = compare_run_digest(golden_run[mode],
                                  run_digest(quick=quick, seed=seed),
                                  rtol=rtol, atol=atol)

    golden_ds = load_golden(DATASET_GOLDEN, directory)
    ds_atol = float(golden_ds.get("policy", {}).get("atol", DATASET_ATOL))
    presets = _QUICK_DATASETS if quick else _DATASET_PRESETS
    actual = dataset_digests(presets=presets, seed=seed)
    golden_subset = {name: digest
                     for name, digest in golden_ds["datasets"].items()
                     if name in actual}
    problems += compare_dataset_digests(golden_subset, actual, atol=ds_atol)
    return problems
