"""``repro.check`` — the correctness-verification layer.

PR 3 made "bit-exact by contract" the load-bearing promise of the hot path:
the fused sampled-softmax kernel, the coalesced sparse gradients, and the
prefetching loader all claim equality with slower reference implementations.
This package turns those claims (and the analytical gradients of every
differentiable op) into mechanically checkable artifacts, so future
optimisations cannot silently drift:

* :mod:`repro.check.gradcheck` — central-difference numerical gradient checks
  with a *case registry* and an op-coverage sweep that fails when any
  differentiable op in ``repro.nn`` lacks a registered case;
* :mod:`repro.check.oracles` — a differential-oracle registry pairing each
  optimised implementation with its reference over seeded randomized inputs
  (bit-exact or tolerance-bounded);
* :mod:`repro.check.invariants` — cheap runtime assertions (finite params,
  KL ≥ 0, ELBO decomposition, hash-table bijection, optimizer moment shapes)
  installable into ``Trainer.fit`` via the callback protocol, with a no-op
  fast path mirroring :mod:`repro.obs.runtime`;
* :mod:`repro.check.golden` — committed golden-run digests (loss curves,
  param norms, retrieval metrics, dataset statistics) with an explicit
  tolerance policy and a regeneration flow.

``python -m repro check [--quick|--update-golden]`` drives all four pillars;
see ``docs/TESTING.md`` for the taxonomy and the golden-update workflow.
"""

from repro.check.gradcheck import (GradcheckCase, GradcheckFailure,
                                   GradcheckReport, gradcheck, covered_ops,
                                   register_case, required_ops, run_gradchecks,
                                   uncovered_ops)
from repro.check.golden import (DATASET_GOLDEN, RUN_GOLDEN,
                                check_captured_golden, check_golden,
                                compare_dataset_digests, compare_run_digest,
                                dataset_digests, default_golden_dir,
                                load_golden, run_digest, update_golden)
from repro.check.invariants import (InvariantCallback, InvariantRuntime,
                                    InvariantViolation, elbo_consistent,
                                    finite_grads, finite_params, kl_nonneg,
                                    moment_shapes, table_bijection)
from repro.check.oracles import (OracleReport, oracle_names, register_oracle,
                                 run_oracle, run_oracles)

__all__ = [
    "GradcheckCase", "GradcheckFailure", "GradcheckReport", "gradcheck",
    "register_case", "required_ops", "covered_ops", "uncovered_ops",
    "run_gradchecks",
    "OracleReport", "register_oracle", "oracle_names", "run_oracle",
    "run_oracles",
    "InvariantCallback", "InvariantRuntime", "InvariantViolation",
    "finite_params", "finite_grads", "kl_nonneg", "elbo_consistent",
    "table_bijection", "moment_shapes",
    "RUN_GOLDEN", "DATASET_GOLDEN", "default_golden_dir", "run_digest",
    "dataset_digests", "compare_run_digest", "compare_dataset_digests",
    "load_golden", "update_golden", "check_golden", "check_captured_golden",
]
