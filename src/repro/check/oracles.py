"""Differential oracles: optimised implementations vs their references.

Every hot-path optimisation in this repo claims equivalence with a slower
reference implementation (most of them *bit-exact*).  An :class:`Oracle`
makes that claim declarative and mechanically checkable: a registered
function builds seeded randomized inputs, runs both implementations, and
returns ``{label: (reference, optimised)}`` array pairs; the runner asserts
bit-exactness (``exact=True``) or tolerance-bounded closeness per pair, over
several seeds.

Future ``repro.perf`` optimisations register an oracle here instead of
writing ad-hoc spot tests — ``python -m repro check`` and
``tests/test_check_oracles.py`` then exercise it on every run.  See
``docs/TESTING.md`` for the how-to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.utils.rng import new_rng

__all__ = ["Oracle", "OracleReport", "register_oracle", "unregister_oracle",
           "oracle_names", "run_oracle", "run_oracles"]

Pairs = Mapping[str, tuple[np.ndarray, np.ndarray]]


@dataclass(frozen=True)
class Oracle:
    """A reference↔optimised pairing checked over seeded random inputs."""

    name: str
    build: Callable[[np.random.Generator], Pairs]
    exact: bool = True
    rtol: float = 0.0
    atol: float = 0.0
    description: str = ""


@dataclass
class OracleReport:
    """Outcome of one oracle on one seed."""

    name: str
    seed: int
    passed: bool
    exact: bool
    max_abs_diff: float
    mismatches: list[str] = field(default_factory=list)

    def __str__(self) -> str:
        status = "ok" if self.passed else "FAIL"
        detail = "" if self.passed else "; mismatched: " + ", ".join(self.mismatches)
        return (f"[{status}] {self.name} seed={self.seed} "
                f"max|ref-opt|={self.max_abs_diff:.3e}{detail}")


_ORACLES: dict[str, Oracle] = {}


def register_oracle(name: str, *, exact: bool = True, rtol: float = 0.0,
                    atol: float = 0.0, description: str = ""):
    """Decorator registering ``build(rng) -> {label: (ref, opt)}``."""

    def decorate(build):
        if name in _ORACLES:
            raise ValueError(f"duplicate oracle '{name}'")
        _ORACLES[name] = Oracle(name=name, build=build, exact=exact,
                                rtol=rtol, atol=atol, description=description)
        return build

    return decorate


def unregister_oracle(name: str) -> None:
    """Remove an oracle (test hook for temporarily registered pairings)."""
    _ORACLES.pop(name, None)


def oracle_names() -> list[str]:
    return sorted(_ORACLES)


def run_oracle(name: str, seed: int = 0) -> OracleReport:
    """Run one oracle on one seed."""
    oracle = _ORACLES[name]
    pairs = oracle.build(new_rng(seed))
    mismatches: list[str] = []
    max_diff = 0.0
    for label, (ref, opt) in pairs.items():
        ref = np.asarray(ref)
        opt = np.asarray(opt)
        if ref.shape != opt.shape:
            mismatches.append(f"{label} (shape {ref.shape} vs {opt.shape})")
            max_diff = float("inf")
            continue
        if ref.size:
            with np.errstate(invalid="ignore"):
                diff = np.abs(ref.astype(np.float64, copy=False)
                              - opt.astype(np.float64, copy=False))
            max_diff = max(max_diff, float(diff.max()) if diff.size else 0.0)
        if oracle.exact:
            ok = np.array_equal(ref, opt)
        else:
            ok = np.allclose(ref, opt, rtol=oracle.rtol, atol=oracle.atol)
        if not ok:
            mismatches.append(label)
    return OracleReport(name=name, seed=seed, passed=not mismatches,
                        exact=oracle.exact, max_abs_diff=max_diff,
                        mismatches=mismatches)


def run_oracles(seeds: Iterable[int] = (0, 1, 2),
                names: Sequence[str] | None = None) -> list[OracleReport]:
    """Run all (or the named) oracles over every seed."""
    selected = oracle_names() if names is None else list(names)
    return [run_oracle(name, seed) for name in selected for seed in seeds]


# -- built-in oracles ----------------------------------------------------------
#
# One per optimisation shipped in PR 3 (fused kernel, coalesced gradients,
# prefetch pipeline, vectorised hash lookups) plus the gradient-scatter entry
# points they rely on.  All late-bind their subjects so monkeypatched
# implementations are what gets checked.

def _softmax_case(rng: np.random.Generator, sparse: bool) -> Pairs:
    from repro.nn import functional as F
    from repro.nn.tensor import Parameter, Tensor

    B, D, J, C = 5, 6, 12, 7
    h_data = rng.normal(size=(B, D))
    w_data = rng.normal(scale=0.3, size=(J, D))
    b_data = rng.normal(scale=0.1, size=J)
    cand = np.sort(rng.choice(J, size=C, replace=False))
    targets = rng.integers(0, 3, size=(B, C)).astype(np.float64)
    scale = 1.0 / B

    def run(fused: bool):
        h = Tensor(h_data.copy(), requires_grad=True)
        weight = Parameter(w_data.copy(), name="w", sparse=sparse)
        bias = Parameter(b_data.copy(), name="b", sparse=sparse)
        if fused:
            loss = F.sampled_softmax_nll(h, weight, bias, cand, targets,
                                         scale=scale)
        else:
            logits = h @ F.rows(weight, cand).T + F.take(bias, cand)
            log_probs = F.log_softmax(logits, axis=-1)
            loss = -(Tensor(targets) * log_probs).sum() * scale
        loss.backward()
        return (np.asarray(loss.data).copy(), h.grad.copy(),
                weight.densify_grad(), bias.densify_grad())

    ref_loss, ref_gh, ref_gw, ref_gb = run(fused=False)
    opt_loss, opt_gh, opt_gw, opt_gb = run(fused=True)
    return {"loss": (ref_loss, opt_loss), "grad_h": (ref_gh, opt_gh),
            "grad_weight": (ref_gw, opt_gw), "grad_bias": (ref_gb, opt_gb)}


@register_oracle("nn.sampled_softmax_nll.fused_vs_unfused.dense",
                 description="fused kernel vs rows→matmul→take→log_softmax "
                             "chain on dense parameters (bit-exact)")
def _oracle_fused_dense(rng: np.random.Generator) -> Pairs:
    return _softmax_case(rng, sparse=False)


@register_oracle("nn.sampled_softmax_nll.fused_vs_unfused.sparse",
                 description="fused kernel vs unfused chain on row-sparse "
                             "parameters (bit-exact)")
def _oracle_fused_sparse(rng: np.random.Generator) -> Pairs:
    return _softmax_case(rng, sparse=True)


@register_oracle("tensor.coalesce_rows", exact=False, rtol=1e-12, atol=1e-12,
                 description="sort + segment-sum coalesce vs the np.add.at "
                             "scatter reference (equal up to float summation "
                             "order: reduceat sums sorted runs, add.at sums "
                             "in occurrence order)")
def _oracle_coalesce(rng: np.random.Generator) -> Pairs:
    from repro.nn.tensor import coalesce_rows

    n_rows = 11
    idx = rng.integers(0, n_rows, size=40)
    grads = rng.normal(size=(40, 3))

    dense_ref = np.zeros((n_rows, 3))
    np.add.at(dense_ref, idx, grads)

    unique, summed = coalesce_rows(idx, grads)
    dense_opt = np.zeros((n_rows, 3))
    dense_opt[unique] = summed

    # Sorted-unique fast path: strictly increasing input comes back as-is.
    sorted_idx = np.arange(0, n_rows, 2)
    sorted_grads = rng.normal(size=(sorted_idx.size, 3))
    u2, s2 = coalesce_rows(sorted_idx, sorted_grads)
    return {"scatter": (dense_ref, dense_opt),
            "unique_rows": (np.sort(np.unique(idx)), unique),
            "sorted_passthrough_rows": (sorted_idx, u2),
            "sorted_passthrough_grads": (sorted_grads, s2)}


@register_oracle("tensor.scatter_add_grad.assume_unique",
                 description="assume_unique fast path vs the coalescing "
                             "scatter on a unique index set (bit-exact)")
def _oracle_scatter_unique(rng: np.random.Generator) -> Pairs:
    from repro.nn.tensor import Parameter

    rows = np.sort(rng.choice(10, size=6, replace=False))
    grads = rng.normal(size=(6, 4))

    generic = Parameter(np.zeros((10, 4)), name="g")
    generic.scatter_add_grad(rows.copy(), grads.copy())
    fast = Parameter(np.zeros((10, 4)), name="f")
    fast.scatter_add_grad(rows.copy(), grads.copy(), assume_unique=True)
    return {"dense_grad": (generic.densify_grad(), fast.densify_grad())}


@register_oracle("optim.coalesce_parts", exact=False, rtol=1e-12, atol=1e-12,
                 description="multi-part sparse-gradient merge vs a dense "
                             "np.add.at scatter (equal up to float summation "
                             "order)")
def _oracle_optim_coalesce(rng: np.random.Generator) -> Pairs:
    from repro.nn.optim import _coalesce
    from repro.nn.tensor import coalesce_rows

    n_rows = 9
    parts = []
    dense = np.zeros((n_rows, 2))
    for __ in range(3):
        idx = rng.integers(0, n_rows, size=8)
        grads = rng.normal(size=(8, 2))
        np.add.at(dense, idx, grads)
        parts.append(coalesce_rows(idx, grads))  # parts are entry-coalesced
    rows, summed = _coalesce(parts)
    opt = np.zeros((n_rows, 2))
    opt[rows] = summed
    return {"merged": (dense, opt)}


@register_oracle("perf.prefetch_vs_sync_loader",
                 description="PrefetchLoader batches vs SyncLoader batches "
                             "for one shuffled epoch (bit-exact arrays)")
def _oracle_loaders(rng: np.random.Generator) -> Pairs:
    from repro.data import make_sc_like
    from repro.perf.pipeline import PrefetchLoader, SyncLoader

    data = make_sc_like(n_users=60, seed=int(rng.integers(0, 2 ** 31))).dataset
    order = np.arange(len(data))
    rng.shuffle(order)
    sync = list(SyncLoader().epoch(data, order, batch_size=17))
    pre = list(PrefetchLoader(prefetch=2).epoch(data, order, batch_size=17))

    pairs: dict[str, tuple[np.ndarray, np.ndarray]] = {
        "n_batches": (np.asarray(len(sync)), np.asarray(len(pre)))}
    for b, (s, p) in enumerate(zip(sync, pre)):
        pairs[f"batch{b}.user_ids"] = (s.user_ids, p.user_ids)
        for name in s.fields:
            sf, pf = s.fields[name], p.fields[name]
            pairs[f"batch{b}.{name}.indices"] = (sf.indices, pf.indices)
            pairs[f"batch{b}.{name}.offsets"] = (sf.offsets, pf.offsets)
            if sf.weights is not None:
                pairs[f"batch{b}.{name}.weights"] = (sf.weights, pf.weights)
    return pairs


@register_oracle("hashing.bulk_lookup",
                 description="vectorised id-mirror lookups vs a plain-dict "
                             "scalar reference (bit-exact, incl. grow order)")
def _oracle_bulk_lookup(rng: np.random.Generator) -> Pairs:
    from repro.hashing import DynamicHashTable

    universe = 40
    warm = rng.choice(universe, size=12, replace=False)
    query = rng.integers(0, universe + 5, size=50)  # includes unknown ids

    # Reference: the dict semantics, spelled out scalar by scalar.
    ref_index: dict[int, int] = {}
    for key in warm.tolist():
        ref_index.setdefault(key, len(ref_index))
    ref_rows = []
    for key in query.tolist():
        if key not in ref_index:
            ref_index[key] = len(ref_index)
        ref_rows.append(ref_index[key])
    ref_rows = np.asarray(ref_rows, dtype=np.int64)
    ref_frozen = np.asarray(
        [ref_index.get(k, -1) for k in (query - 2).tolist()], dtype=np.int64)

    table = DynamicHashTable()
    table.lookup(warm.tolist())           # scalar warm-up path
    opt_rows = table.lookup_ids(query)    # vectorised grow path
    opt_frozen = table.rows_for_ids(query - 2)  # vectorised no-grow path

    ref_keys = np.asarray(list(ref_index.keys()), dtype=np.int64)
    ref_vals = np.asarray(list(ref_index.values()), dtype=np.int64)
    opt_keys = np.asarray([k for k, __ in table.items()], dtype=np.int64)
    opt_vals = np.asarray([v for __, v in table.items()], dtype=np.int64)
    return {"rows": (ref_rows, opt_rows),
            "rows_no_grow": (ref_frozen, opt_frozen),
            "insertion_keys": (ref_keys, opt_keys),
            "insertion_rows": (ref_vals, opt_vals)}


@register_oracle("serve.proxy_batch_vs_scalar",
                 description="ServingProxy batched degradation chain vs the "
                             "scalar get_embedding loop — same vectors, masks "
                             "and per-source counts in legacy, resilient and "
                             "store-outage modes (distinct keys)")
def _oracle_proxy_batch(rng: np.random.Generator) -> Pairs:
    from repro.lookalike import EmbeddingStore, ServingProxy
    from repro.lookalike.serving import ServingResilience
    from repro.resilience.faults import FlakyEmbeddingStore

    dim, n = 6, 12
    keys = [f"u{i}" for i in range(n)]
    matrix = rng.normal(size=(n, dim))
    fresh_vec = rng.normal(size=dim)

    def build(mode: str) -> ServingProxy:
        store = EmbeddingStore(dim=dim)
        store.put_many(keys, matrix)
        if mode == "outage":
            store = FlakyEmbeddingStore(store, failure_rate=0.0, rng=0)

        def infer(uid):
            return fresh_vec.copy() if str(uid).startswith("fresh") else None

        resilience = None if mode == "legacy" else ServingResilience()
        return ServingProxy(store, cache_capacity=2 * n, infer_fn=infer,
                            resilience=resilience)

    pairs: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for mode in ("legacy", "resilient", "outage"):
        scalar, batch = build(mode), build(mode)
        ids = keys + ["fresh1", "ghost"]  # store / inferred / miss-or-default
        for rnd in range(2):              # cold round, then warm (cache) round
            if mode == "outage" and rnd == 1:
                # Stale sweep: the store goes down after the warm-up round
                # and both proxies lose their caches, so every stored key
                # must come back from the stale snapshot.
                for proxy in (scalar, batch):
                    proxy.store.failure_rate = 1.0
                    proxy.cache = type(proxy.cache)(2 * n, name="serving")
            s_rows, s_mask = scalar.get_embeddings_masked(ids)
            b_rows, b_mask = batch.get_embeddings_masked_batch(ids)
            pairs[f"{mode}.round{rnd}.matrix"] = (s_rows, b_rows)
            pairs[f"{mode}.round{rnd}.mask"] = (s_mask, b_mask)
        sources = sorted(set(scalar.source_counts) | set(batch.source_counts))
        pairs[f"{mode}.source_counts"] = (
            np.asarray([scalar.source_counts[s] for s in sources]),
            np.asarray([batch.source_counts[s] for s in sources]))
        pairs[f"{mode}.inferences"] = (np.asarray(scalar.inferences),
                                       np.asarray(batch.inferences))
    return pairs


@register_oracle("lookalike.lsh.batch_vs_scalar",
                 description="LSHIndex.candidates_batch/query_batch vs the "
                             "looped scalar candidates/query — identical "
                             "candidate sets and neighbour rankings, with "
                             "and without the exact fallback")
def _oracle_lsh_batch(rng: np.random.Generator) -> Pairs:
    from repro.lookalike import LSHIndex

    dim = 16
    vectors = rng.normal(size=(300, dim))
    index = LSHIndex(dim=dim, n_tables=4, n_bits=6,
                     seed=int(rng.integers(0, 2 ** 31))).fit(vectors)
    # Near-duplicates of stored points (dense buckets) plus fresh noise
    # (sparse buckets, which exercise the exact fallback when enabled).
    queries = np.vstack([
        vectors[:5] + rng.normal(0.0, 0.05, size=(5, dim)),
        rng.normal(size=(3, dim)) * 3.0,
    ])

    pairs: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    batched = index.candidates_batch(queries)
    for i, query in enumerate(queries):
        pairs[f"candidates.q{i}"] = (index.candidates(query), batched[i])
    for fallback in (False, True):
        results = index.query_batch(queries, k=8, fallback_to_exact=fallback)
        for i, query in enumerate(queries):
            scalar = index.query(query, k=8, fallback_to_exact=fallback)
            pairs[f"query.fallback_{fallback}.q{i}"] = (scalar, results[i])
    return pairs


@register_oracle("nn.graph.replay_vs_dynamic",
                 description="captured-tape training (trace + replay + ragged "
                             "last-batch fallback) vs the dynamic autograd "
                             "path — bit-exact epoch losses and final "
                             "parameters in float64")
def _oracle_replay_vs_dynamic(rng: np.random.Generator) -> Pairs:
    from repro.core import FVAE, FVAEConfig
    from repro.data import make_kd_like

    seed = int(rng.integers(0, 2 ** 31))
    # 72 users / batch 32 -> two full batches then a ragged one, so every
    # epoch exercises trace, replay AND the dynamic fallback.
    data = make_kd_like(n_users=72, seed=seed)
    config = FVAEConfig(latent_dim=8, encoder_hidden=[16], decoder_hidden=[16],
                        input_dropout=0.2, feature_dropout=0.1, seed=seed)

    def run(capture: bool):
        model = FVAE(data.dataset.schema, config)
        model.fit(data.dataset, epochs=2, batch_size=32, capture=capture)
        losses = np.asarray([r.loss for r in model.history.epochs])
        return losses, model.state_dict()

    ref_losses, ref_state = run(capture=False)
    opt_losses, opt_state = run(capture=True)
    pairs: dict[str, tuple[np.ndarray, np.ndarray]] = {
        "epoch_losses": (ref_losses, opt_losses)}
    for name in ref_state:
        pairs[f"param.{name}"] = (ref_state[name], opt_state[name])
    return pairs


@register_oracle("core.encoder.inference_vs_autograd",
                 description="FVAE.encode_batch raw-array inference forward "
                             "vs the eval-mode autograd Tensor forward "
                             "(bit-exact mu and logvar)")
def _oracle_encoder_inference(rng: np.random.Generator) -> Pairs:
    from repro.core import FVAE, FVAEConfig
    from repro.data import make_kd_like

    seed = int(rng.integers(0, 2 ** 31))
    data = make_kd_like(n_users=40, seed=seed)
    config = FVAEConfig(latent_dim=8, encoder_hidden=[16], decoder_hidden=[16],
                        seed=seed)
    model = FVAE(data.dataset.schema, config)
    model.fit(data.dataset, epochs=1, batch_size=16)
    batch = data.dataset.batch(np.arange(20))
    mu_t, logvar_t = model.encode_batch(batch, inference=False)
    mu_a, logvar_a = model.encode_batch(batch, inference=True)
    return {"mu": (mu_t, mu_a), "logvar": (logvar_t, logvar_a)}


@register_oracle("distributed.sharded_vs_single_process", exact=False,
                 rtol=1e-12, atol=1e-12,
                 description="one epoch on the real multi-process sharded "
                             "parameter server vs the single-process "
                             "Trainer.fit reference (equal up to float "
                             "summation order across workers)")
def _oracle_sharded_trainer(rng: np.random.Generator) -> Pairs:
    from repro.core import FVAE, FVAEConfig
    from repro.core.trainer import Trainer
    from repro.data import make_kd_like
    from repro.distributed.sharded import ShardedTrainer

    seed = int(rng.integers(0, 2 ** 31))

    def build():
        data = make_kd_like(n_users=48, seed=seed)
        config = FVAEConfig(latent_dim=8, encoder_hidden=[16],
                            decoder_hidden=[16], input_dropout=0.0,
                            feature_dropout=0.0, seed=seed)
        model = FVAE(data.dataset.schema, config)
        model.initialize_from_dataset(data.dataset)
        return model, data.dataset

    ref_model, ref_data = build()
    ref_hist = Trainer(ref_model, lr=1e-3).fit(ref_data, epochs=1,
                                               batch_size=16, rng=seed)
    sh_model, sh_data = build()
    sh_hist = ShardedTrainer(sh_model, n_workers=2, lr=1e-3).fit(
        sh_data, epochs=1, batch_size=16, rng=seed)

    pairs: dict[str, tuple[np.ndarray, np.ndarray]] = {
        "epoch_losses": (np.asarray([r.loss for r in ref_hist.epochs]),
                         np.asarray([r.loss for r in sh_hist.epochs]))}
    ref_state, sh_state = ref_model.state_dict(), sh_model.state_dict()
    for name in ref_state:
        pairs[f"param.{name}"] = (ref_state[name], sh_state[name])
    return pairs


@register_oracle("distributed.sharded_serving_vs_store",
                 description="sharded embedding service (real shard-server "
                             "processes, zero-IPC reads) vs the in-process "
                             "EmbeddingStore (bit-exact lookups)")
def _oracle_sharded_serving(rng: np.random.Generator) -> Pairs:
    from repro.distributed.sharded import ShardedEmbeddingService
    from repro.lookalike.store import EmbeddingStore

    dim, n = 16, 60
    keys = [f"user_{i}" for i in rng.permutation(200)[:n]]
    matrix = rng.standard_normal((n, dim))
    probes = keys[::3] + ["missing_a", "missing_b"] + keys[1::7]

    ref = EmbeddingStore(dim=dim)
    ref.put_many(keys, matrix)
    ref_batch, ref_mask = ref.get_batch(probes)

    with ShardedEmbeddingService(dim=dim, n_shards=3,
                                 capacity_per_shard=n) as svc:
        svc.put_many(keys, matrix)
        svc_batch, svc_mask = svc.get_batch(probes)
        svc_keys, svc_matrix = svc.as_matrix()
        ref_keys, ref_matrix = ref.as_matrix()
        pairs = {
            "batch": (ref_batch, svc_batch),
            "found_mask": (ref_mask, svc_mask),
            "rows_for": (ref.rows_for(probes), svc.rows_for(probes)),
            "matrix": (ref_matrix, svc_matrix),
            "key_order": (np.asarray([k == r for k, r in
                                      zip(ref_keys, svc_keys)]),
                          np.ones(len(ref_keys), dtype=bool)),
        }
    return pairs


@register_oracle("lookalike.quant.dequant_bound",
                 description="int8/PQ quantize→dequantize round trips: codes "
                             "and codebooks bit-identical across same-seed "
                             "builds, round-trip error within the advertised "
                             "bound (per-dimension scale for int8, training "
                             "distortion for PQ)")
def _oracle_quant_bound(rng: np.random.Generator) -> Pairs:
    from repro.lookalike import Int8Quantizer, PQQuantizer

    dim = 16
    matrix = rng.normal(size=(120, dim))
    pairs: dict[str, tuple[np.ndarray, np.ndarray]] = {}

    first = Int8Quantizer(dim).fit(matrix)
    second = Int8Quantizer(dim).fit(matrix)
    codes = first.quantize(matrix)
    pairs["int8.scale_reproducible"] = (first.scale, second.scale)
    pairs["int8.codes_reproducible"] = (codes, second.quantize(matrix))
    err = np.abs(matrix - first.dequantize(codes))
    pairs["int8.error_within_bound"] = (
        np.ones(err.shape, dtype=bool), err <= first.bound() + 1e-12)

    seed = int(rng.integers(0, 2 ** 31))
    pq_a = PQQuantizer(dim, n_subvectors=4, n_centroids=16, seed=seed).fit(matrix)
    pq_b = PQQuantizer(dim, n_subvectors=4, n_centroids=16, seed=seed).fit(matrix)
    pq_codes = pq_a.quantize(matrix)
    pairs["pq.codebooks_reproducible"] = (pq_a.codebooks, pq_b.codebooks)
    pairs["pq.codes_reproducible"] = (pq_codes, pq_b.quantize(matrix))
    l2 = np.linalg.norm(matrix - pq_a.dequantize(pq_codes), axis=1)
    pairs["pq.error_within_bound"] = (
        np.ones(l2.shape, dtype=bool), l2 <= pq_a.bound() + 1e-12)
    return pairs


@register_oracle("lookalike.ivf.exhaustive_vs_exact",
                 description="IVFIndex with nprobe == n_lists vs the exact "
                             "scan (bit-identical top-k), plus batch vs "
                             "scalar at full and partial probe budgets")
def _oracle_ivf_exhaustive(rng: np.random.Generator) -> Pairs:
    from repro.lookalike import IVFIndex, LSHIndex

    dim, n, k = 12, 250, 9
    vectors = rng.normal(size=(n, dim))
    queries = rng.normal(size=(6, dim))
    seed = int(rng.integers(0, 2 ** 31))

    pairs: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    full = IVFIndex(dim, n_lists=10, nprobe=10, seed=seed).fit(vectors)
    batched = full.query_batch(queries, k)
    for i, query in enumerate(queries):
        d2 = np.sum((vectors - query) ** 2, axis=1)
        exact = LSHIndex._top_k(np.arange(n), d2, k)
        scalar = full.query(query, k)
        pairs[f"exhaustive.q{i}"] = (exact, scalar)
        pairs[f"batch.q{i}"] = (scalar, batched[i])

    partial = IVFIndex(dim, n_lists=10, nprobe=3, seed=seed).fit(vectors)
    results = partial.query_batch(queries, k, fallback_to_exact=False)
    for i, query in enumerate(queries):
        pairs[f"partial.batch.q{i}"] = (
            partial.query(query, k, fallback_to_exact=False), results[i])
    return pairs


@register_oracle("serve.quantized_proxy_vs_exact",
                 description="ServingProxy over a QuantizedEmbeddingStore vs "
                             "the exact-store proxy — identical masks, "
                             "per-source counts and inference counts over "
                             "cold+warm rounds, stored rows within the "
                             "dequantization bound")
def _oracle_quantized_proxy(rng: np.random.Generator) -> Pairs:
    from repro.lookalike import (EmbeddingStore, QuantizedEmbeddingStore,
                                 ServingProxy)
    from repro.lookalike.serving import ServingResilience

    dim, n = 8, 10
    keys = [f"u{i}" for i in range(n)]
    matrix = rng.normal(size=(n, dim))
    fresh_vec = rng.normal(size=dim)

    def build(quantized: bool):
        if quantized:
            store = QuantizedEmbeddingStore(dim, mode="int8")
        else:
            store = EmbeddingStore(dim=dim)
        store.put_many(keys, matrix)

        def infer(uid):
            return fresh_vec.copy() if str(uid).startswith("fresh") else None

        proxy = ServingProxy(store, cache_capacity=2 * n, infer_fn=infer,
                             resilience=ServingResilience())
        return proxy, store

    exact_proxy, __ = build(quantized=False)
    quant_proxy, quant_store = build(quantized=True)
    bound = quant_store.dequant_bound()
    ids = keys + ["fresh1", "ghost"]  # store / inferred / miss
    pairs: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for rnd in range(2):  # cold round, then warm (cache) round
        e_rows, e_mask = exact_proxy.get_embeddings_masked_batch(ids)
        q_rows, q_mask = quant_proxy.get_embeddings_masked_batch(ids)
        pairs[f"round{rnd}.mask"] = (e_mask, q_mask)
        # Stored keys (rows drawn from the training matrix) must agree with
        # the exact proxy to within the scalar-quantization bound.
        within = np.abs(e_rows[:n] - q_rows[:n]) <= bound + 1e-12
        pairs[f"round{rnd}.stored_within_bound"] = (
            np.ones(within.shape, dtype=bool), within)
    sources = sorted(set(exact_proxy.source_counts)
                     | set(quant_proxy.source_counts))
    pairs["source_counts"] = (
        np.asarray([exact_proxy.source_counts[s] for s in sources]),
        np.asarray([quant_proxy.source_counts[s] for s in sources]))
    pairs["inferences"] = (np.asarray(exact_proxy.inferences),
                           np.asarray(quant_proxy.inferences))
    return pairs
