"""Numerical gradient checking with a registry and an op-coverage sweep.

:func:`gradcheck` compares the autograd engine's analytical gradients against
central-difference numerical gradients, for dense tensors *and* row-sparse
parameters (whose scattered ``(rows, grad_rows)`` parts are densified first).

Every differentiable op exported by :mod:`repro.nn.functional`,
:mod:`repro.nn.layers`, and :mod:`repro.nn.losses` must have at least one
:class:`GradcheckCase` registered here — :func:`uncovered_ops` returns the
ops that do not, and the test suite / ``python -m repro check`` fail when the
set is non-empty.  Adding a new op therefore *forces* adding a gradient
check; see ``docs/TESTING.md``.

Case builders late-bind the op (they import the module and resolve the
attribute inside the closure), so a monkeypatched — deliberately broken —
implementation is picked up by the very same cases: the mutation smoke test
in ``tests/test_check_gradcheck.py`` relies on this to prove the harness
detects real regressions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.nn.tensor import Parameter, Tensor, no_grad
from repro.utils.rng import new_rng

__all__ = ["GradcheckCase", "GradcheckFailure", "GradcheckReport", "gradcheck",
           "register_case", "required_ops", "covered_ops", "uncovered_ops",
           "run_gradchecks", "case_names"]


# -- core numerical check ------------------------------------------------------

@dataclass
class GradcheckFailure:
    """One tensor whose analytical gradient disagreed with finite differences."""

    tensor: str
    max_abs_error: float
    max_rel_error: float
    worst_index: tuple[int, ...]
    analytic: float
    numerical: float

    def __str__(self) -> str:
        return (f"{self.tensor}: |analytic-numerical|={self.max_abs_error:.3e} "
                f"(rel {self.max_rel_error:.3e}) at index {self.worst_index} "
                f"[analytic={self.analytic:.6e} numerical={self.numerical:.6e}]")


@dataclass
class GradcheckReport:
    """Outcome of one gradcheck case."""

    case: str
    op: str
    passed: bool
    failures: list[GradcheckFailure] = field(default_factory=list)

    def __str__(self) -> str:
        status = "ok" if self.passed else "FAIL"
        detail = "" if self.passed else "; " + "; ".join(map(str, self.failures))
        return f"[{status}] {self.case} ({self.op}){detail}"


def _analytic_grads(fn: Callable[[], Tensor], wrt: Sequence[Tensor], *,
                    captured: bool = False) -> list[np.ndarray]:
    for t in wrt:
        t.zero_grad()
    if captured:
        # Trace once (fully dynamic, records the tape), discard the traced
        # gradients, then take the analytic gradients from a pure replay —
        # so the numbers under test come from the static-tape path.
        from repro.nn.graph import capture_function

        cap = capture_function(fn)
        if cap.tape.root.out.size != 1:
            raise ValueError("gradcheck requires a scalar-valued fn")
        for t in wrt:
            t.zero_grad()
        out = cap.replay()
    else:
        out = fn()
        if out.size != 1:
            raise ValueError("gradcheck requires a scalar-valued fn")
        out.backward()
    grads = []
    for t in wrt:
        if isinstance(t, Parameter):
            grads.append(t.densify_grad())
        elif t.grad is not None:
            grads.append(np.asarray(t.grad, dtype=np.float64))
        else:
            grads.append(np.zeros_like(t.data))
        t.zero_grad()
    return grads


def _numerical_grad(fn: Callable[[], Tensor], t: Tensor, eps: float) -> np.ndarray:
    grad = np.empty_like(t.data)
    flat_data = t.data.ravel()
    flat_grad = grad.ravel()
    with no_grad():
        for i in range(flat_data.size):
            orig = flat_data[i]
            flat_data[i] = orig + eps
            f_plus = float(fn().data)
            flat_data[i] = orig - eps
            f_minus = float(fn().data)
            flat_data[i] = orig
            flat_grad[i] = (f_plus - f_minus) / (2.0 * eps)
    return grad


def gradcheck(fn: Callable[[], Tensor], wrt: Sequence[Tensor], *,
              eps: float = 1e-6, rtol: float = 1e-5, atol: float = 1e-7,
              names: Sequence[str] | None = None,
              captured: bool = False) -> list[GradcheckFailure]:
    """Compare analytical and central-difference gradients of ``fn``.

    Parameters
    ----------
    fn:
        Zero-argument closure returning a scalar :class:`Tensor`.  It must
        read the *current* ``.data`` of every tensor in ``wrt`` on each call
        (the checker perturbs them in place) and be deterministic across
        calls — stochastic ops must re-seed their RNG inside the closure.
    wrt:
        Leaf tensors to differentiate with respect to.  Row-sparse
        :class:`Parameter` gradients are densified via ``densify_grad``.
    eps, rtol, atol:
        Central-difference step and the tolerance of the comparison
        ``|a - n| <= atol + rtol * |n|`` (checked at the worst element).

    ``captured=True`` takes the analytic gradients from a static-tape
    replay (:func:`repro.nn.graph.capture_function`) instead of the dynamic
    engine, proving the captured path computes the same derivatives.

    Returns the (possibly empty) list of failures; empty means pass.
    """
    analytic = _analytic_grads(fn, wrt, captured=captured)
    names = list(names) if names is not None \
        else [t.name or f"wrt[{i}]" for i, t in enumerate(wrt)]
    failures: list[GradcheckFailure] = []
    for name, t, ana in zip(names, wrt, analytic):
        num = _numerical_grad(fn, t, eps)
        err = np.abs(ana - num)
        bound = atol + rtol * np.abs(num)
        if np.all(err <= bound):
            continue
        worst = np.unravel_index(int(np.argmax(err - bound)), err.shape)
        denom = max(abs(float(num[worst])), 1e-12)
        failures.append(GradcheckFailure(
            tensor=name,
            max_abs_error=float(err[worst]),
            max_rel_error=float(err[worst]) / denom,
            worst_index=tuple(int(i) for i in worst),
            analytic=float(ana[worst]),
            numerical=float(num[worst])))
    return failures


# -- case registry -------------------------------------------------------------

@dataclass(frozen=True)
class GradcheckCase:
    """A registered gradient-check case for one op.

    ``build(seed)`` returns ``(fn, wrt)`` where ``fn`` is the deterministic
    scalar closure and ``wrt`` the leaf tensors to check.
    """

    op: str
    name: str
    build: Callable[[int], tuple[Callable[[], Tensor], list[Tensor]]]
    rtol: float = 1e-5
    atol: float = 1e-7


_CASES: dict[str, GradcheckCase] = {}


def register_case(op: str, name: str | None = None, *, rtol: float = 1e-5,
                  atol: float = 1e-7):
    """Decorator registering ``build(seed) -> (fn, wrt)`` for op ``op``."""

    def decorate(build):
        case_name = name or op
        if case_name in _CASES:
            raise ValueError(f"duplicate gradcheck case '{case_name}'")
        _CASES[case_name] = GradcheckCase(op=op, name=case_name, build=build,
                                          rtol=rtol, atol=atol)
        return build

    return decorate


def case_names() -> list[str]:
    return sorted(_CASES)


def covered_ops() -> set[str]:
    return {case.op for case in _CASES.values()}


# Differentiable-op paths that do not appear in any ``__all__`` but are
# load-bearing contracts: the unfused sampled-softmax reference chain must
# stay checked as long as the fused kernel claims bit-equality with it.
_EXTRA_REQUIRED = {"functional.sampled_softmax_nll.unfused"}

# Exported names that are not differentiable ops.
_NON_DIFFERENTIABLE = {"layers.Module"}


def required_ops() -> set[str]:
    """Every differentiable op the sweep demands a case for.

    The set is *computed from the live modules* (``__all__`` of
    ``repro.nn.functional`` / ``layers`` / ``losses``), so adding an op to
    any of them immediately adds a coverage obligation.
    """
    from repro.nn import functional, layers, losses

    ops = {f"functional.{name}" for name in functional.__all__}
    ops |= {f"layers.{name}" for name in layers.__all__}
    ops |= {f"losses.{name}" for name in losses.__all__}
    ops |= _EXTRA_REQUIRED
    return ops - _NON_DIFFERENTIABLE


def uncovered_ops() -> set[str]:
    """Required ops with no registered gradcheck case (must be empty)."""
    return required_ops() - covered_ops()


def run_gradchecks(seed: int = 0, cases: Sequence[str] | None = None,
                   captured: bool = False) -> list[GradcheckReport]:
    """Run all (or the named) registered cases; returns one report per case.

    ``captured=True`` routes every case's analytic gradients through the
    static-tape replay path (see :func:`gradcheck`).
    """
    selected = case_names() if cases is None else list(cases)
    reports = []
    for name in selected:
        case = _CASES[name]
        fn, wrt = case.build(seed)
        failures = gradcheck(fn, wrt, rtol=case.rtol, atol=case.atol,
                             captured=captured)
        reports.append(GradcheckReport(case=name, op=case.op,
                                       passed=not failures, failures=failures))
    return reports


# -- registered cases ----------------------------------------------------------
#
# Builders keep inputs tiny (numerical checking is O(2·numel) forwards) and
# away from non-differentiable kinks (|x| >= 0.05 for relu).  Ops are
# resolved late — `F.<op>` inside the closure — so monkeypatched
# implementations are exercised by the same cases.

def _tensor(rng: np.random.Generator, shape, lo=-1.5, hi=1.5,
            avoid_zero: float = 0.0, name: str | None = None) -> Tensor:
    data = rng.uniform(lo, hi, size=shape)
    if avoid_zero:
        data = np.where(np.abs(data) < avoid_zero,
                        np.sign(data) * avoid_zero + (data == 0) * avoid_zero,
                        data)
    return Tensor(data, requires_grad=True, name=name)


def _weighted_sum(out: Tensor, w: np.ndarray) -> Tensor:
    """Reduce an op output to a scalar with fixed non-uniform weights."""
    return (out * Tensor(w)).sum()


def _register_elementwise(op_name: str, lo=-1.5, hi=1.5, avoid_zero=0.0):
    @register_case(f"functional.{op_name}", name=f"functional.{op_name}")
    def _case(seed: int, _op=op_name, _lo=lo, _hi=hi, _az=avoid_zero):
        from repro.nn import functional as F

        rng = new_rng(seed)
        x = _tensor(rng, (3, 4), _lo, _hi, avoid_zero=_az, name="x")
        w = rng.uniform(0.5, 1.5, size=(3, 4))
        return (lambda: _weighted_sum(getattr(F, _op)(x), w)), [x]


_register_elementwise("relu", avoid_zero=0.05)
_register_elementwise("tanh")
_register_elementwise("sigmoid")
_register_elementwise("exp")
_register_elementwise("log", lo=0.2, hi=2.0)
_register_elementwise("softplus")
_register_elementwise("softmax")
_register_elementwise("log_softmax")


@register_case("functional.dropout")
def _case_dropout(seed: int):
    from repro.nn import functional as F

    rng = new_rng(seed)
    x = _tensor(rng, (4, 3), name="x")
    w = rng.uniform(0.5, 1.5, size=(4, 3))

    def fn():
        # Fresh generator per call: the mask must be identical across the
        # checker's perturbed evaluations.
        return _weighted_sum(F.dropout(x, 0.3, new_rng(seed + 1)), w)

    return fn, [x]


@register_case("functional.rows", name="functional.rows.dense")
def _case_rows_dense(seed: int):
    from repro.nn import functional as F

    rng = new_rng(seed)
    weight = Parameter(rng.normal(size=(6, 3)), name="weight")
    index = np.array([0, 2, 2, 5, 1, 2])  # duplicates exercise the coalesce
    w = rng.uniform(0.5, 1.5, size=(6, 3))
    return (lambda: _weighted_sum(F.rows(weight, index), w)), [weight]


@register_case("functional.rows", name="functional.rows.sparse")
def _case_rows_sparse(seed: int):
    from repro.nn import functional as F

    rng = new_rng(seed)
    weight = Parameter(rng.normal(size=(6, 3)), name="weight", sparse=True)
    index = np.array([4, 4, 0, 3])
    w = rng.uniform(0.5, 1.5, size=(4, 3))
    return (lambda: _weighted_sum(F.rows(weight, index), w)), [weight]


@register_case("functional.take")
def _case_take(seed: int):
    from repro.nn import functional as F

    rng = new_rng(seed)
    bias = Parameter(rng.normal(size=7), name="bias")
    index = np.array([1, 1, 6, 0, 3])
    w = rng.uniform(0.5, 1.5, size=5)
    return (lambda: _weighted_sum(F.take(bias, index), w)), [bias]


@register_case("functional.embedding_bag")
def _case_embedding_bag(seed: int):
    from repro.nn import functional as F

    rng = new_rng(seed)
    weight = Parameter(rng.normal(size=(8, 3)), name="weight", sparse=True)
    indices = np.array([0, 3, 3, 7, 2, 5])
    offsets = np.array([0, 2, 2, 4, 6])  # includes an empty bag
    piw = rng.uniform(0.5, 2.0, size=indices.size)
    w = rng.uniform(0.5, 1.5, size=(4, 3))
    return (lambda: _weighted_sum(
        F.embedding_bag(weight, indices, offsets, per_index_weights=piw), w),
        [weight])


def _softmax_nll_inputs(seed: int, sparse: bool):
    rng = new_rng(seed)
    h = _tensor(rng, (3, 4), name="h")
    weight = Parameter(rng.normal(scale=0.5, size=(7, 4)), name="weight",
                       sparse=sparse)
    bias = Parameter(rng.normal(scale=0.1, size=7), name="bias", sparse=sparse)
    cand = np.array([0, 2, 3, 6, 1])
    targets = rng.integers(0, 3, size=(3, 5)).astype(np.float64)
    targets[0, 0] = 1.0  # at least one positive
    return h, weight, bias, cand, targets


@register_case("functional.sampled_softmax_nll",
               name="functional.sampled_softmax_nll.dense")
def _case_fused_dense(seed: int):
    def fn():
        from repro.nn import functional as F

        return F.sampled_softmax_nll(h, weight, bias, cand, targets, scale=0.5)

    h, weight, bias, cand, targets = _softmax_nll_inputs(seed, sparse=False)
    return fn, [h, weight, bias]


@register_case("functional.sampled_softmax_nll",
               name="functional.sampled_softmax_nll.sparse")
def _case_fused_sparse(seed: int):
    def fn():
        from repro.nn import functional as F

        return F.sampled_softmax_nll(h, weight, bias, cand, targets, scale=0.5)

    h, weight, bias, cand, targets = _softmax_nll_inputs(seed + 1, sparse=True)
    return fn, [h, weight, bias]


@register_case("functional.sampled_softmax_nll.unfused")
def _case_unfused(seed: int):
    def fn():
        from repro.nn import functional as F

        logits = h @ F.rows(weight, cand).T + F.take(bias, cand)
        log_probs = F.log_softmax(logits, axis=-1)
        return -(Tensor(targets) * log_probs).sum() * 0.5

    h, weight, bias, cand, targets = _softmax_nll_inputs(seed + 2, sparse=True)
    return fn, [h, weight, bias]


@register_case("functional.concat")
def _case_concat(seed: int):
    from repro.nn import functional as F

    rng = new_rng(seed)
    a = _tensor(rng, (3, 2), name="a")
    b = _tensor(rng, (3, 4), name="b")
    w = rng.uniform(0.5, 1.5, size=(3, 6))
    return (lambda: _weighted_sum(F.concat([a, b], axis=-1), w)), [a, b]


@register_case("functional.stack_rows")
def _case_stack_rows(seed: int):
    from repro.nn import functional as F

    rng = new_rng(seed)
    a = _tensor(rng, (4,), name="a")
    b = _tensor(rng, (4,), name="b")
    w = rng.uniform(0.5, 1.5, size=(2, 4))
    return (lambda: _weighted_sum(F.stack_rows([a, b]), w)), [a, b]


# -- losses --------------------------------------------------------------------

@register_case("losses.multinomial_nll")
def _case_multinomial_nll(seed: int):
    def fn():
        from repro.nn import losses

        return losses.multinomial_nll(log_probs, targets)

    rng = new_rng(seed)
    log_probs = _tensor(rng, (3, 5), lo=-3.0, hi=-0.1, name="log_probs")
    targets = rng.integers(0, 3, size=(3, 5)).astype(np.float64)
    return fn, [log_probs]


@register_case("losses.gaussian_kl")
def _case_gaussian_kl(seed: int):
    def fn():
        from repro.nn import losses

        return losses.gaussian_kl(mu, logvar)

    rng = new_rng(seed)
    mu = _tensor(rng, (3, 4), name="mu")
    logvar = _tensor(rng, (3, 4), lo=-1.0, hi=0.5, name="logvar")
    return fn, [mu, logvar]


@register_case("losses.gaussian_kl_to")
def _case_gaussian_kl_to(seed: int):
    def fn():
        from repro.nn import losses

        return losses.gaussian_kl_to(mu_q, logvar_q, mu_p, logvar_p)

    rng = new_rng(seed)
    mu_q = _tensor(rng, (3, 4), name="mu_q")
    logvar_q = _tensor(rng, (3, 4), lo=-1.0, hi=0.5, name="logvar_q")
    mu_p = rng.normal(size=(3, 4))
    logvar_p = rng.uniform(-0.5, 0.5, size=(3, 4))
    return fn, [mu_q, logvar_q]


@register_case("losses.mse")
def _case_mse(seed: int):
    def fn():
        from repro.nn import losses

        return losses.mse(pred, target)

    rng = new_rng(seed)
    pred = _tensor(rng, (4, 3), name="pred")
    target = rng.normal(size=(4, 3))
    return fn, [pred]


# -- layers --------------------------------------------------------------------

@register_case("layers.Linear")
def _case_linear(seed: int):
    from repro.nn.layers import Linear

    rng = new_rng(seed)
    layer = Linear(3, 2, rng=rng)
    x = _tensor(rng, (4, 3), name="x")
    w = rng.uniform(0.5, 1.5, size=(4, 2))
    wrt = [x, layer.weight, layer.bias]
    return (lambda: _weighted_sum(layer(x), w)), wrt


@register_case("layers.MLP")
def _case_mlp(seed: int):
    from repro.nn.layers import MLP

    rng = new_rng(seed)
    mlp = MLP([3, 5, 2], activation="tanh", rng=rng)
    x = _tensor(rng, (3, 3), name="x")
    w = rng.uniform(0.5, 1.5, size=(3, 2))
    return (lambda: _weighted_sum(mlp(x), w)), [x] + list(mlp.parameters())


@register_case("layers.Dropout")
def _case_dropout_layer(seed: int):
    from repro.nn.layers import Dropout

    rng = new_rng(seed)
    layer = Dropout(0.25, rng=rng)
    x = _tensor(rng, (4, 3), name="x")
    w = rng.uniform(0.5, 1.5, size=(4, 3))

    def fn():
        layer._rng = new_rng(seed + 9)  # deterministic mask across evals
        return _weighted_sum(layer(x), w)

    return fn, [x]


@register_case("layers.Sequential")
def _case_sequential(seed: int):
    from repro.nn.layers import Linear, Sequential

    rng = new_rng(seed)
    seq = Sequential(Linear(3, 4, rng=rng), Linear(4, 2, rng=rng))
    x = _tensor(rng, (3, 3), name="x")
    w = rng.uniform(0.5, 1.5, size=(3, 2))
    return (lambda: _weighted_sum(seq(x), w)), [x] + list(seq.parameters())


@register_case("layers.Embedding")
def _case_embedding(seed: int):
    from repro.nn.layers import Embedding

    rng = new_rng(seed)
    emb = Embedding(6, 3, sparse=True, std=0.5, rng=rng)
    index = np.array([0, 5, 5, 2])
    w = rng.uniform(0.5, 1.5, size=(4, 3))
    return (lambda: _weighted_sum(emb(index), w)), [emb.weight]


@register_case("layers.LayerNorm", rtol=1e-4, atol=1e-6)
def _case_layernorm(seed: int):
    from repro.nn.layers import LayerNorm

    rng = new_rng(seed)
    norm = LayerNorm(4)
    x = _tensor(rng, (3, 4), name="x")
    w = rng.uniform(0.5, 1.5, size=(3, 4))
    return (lambda: _weighted_sum(norm(x), w)), [x, norm.gain, norm.bias]
