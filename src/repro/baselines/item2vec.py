"""Item2Vec baseline [41, 42]: features as items, users as contexts.

Every feature (across all fields, in the concatenated id space) is an item;
features co-occurring in a user profile form skip-gram pairs.  After training,
a user's representation is the average of their features' vectors — exactly
the aggregation the paper uses both for the offline baseline and for the
skip-gram look-alike baseline of the online A/B test (§V-F).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import UserRepresentationModel
from repro.baselines.sgns import SkipGramNS
from repro.data.dataset import MultiFieldDataset
from repro.utils.rng import new_rng

__all__ = ["Item2Vec"]


class Item2Vec(UserRepresentationModel):
    """Skip-gram-with-negative-sampling embeddings of profile co-occurrence.

    Parameters
    ----------
    latent_dim:
        Embedding dimension.
    negatives:
        Negative samples per positive pair.
    pairs_per_user:
        Skip-gram pairs sampled per user per epoch (a profile is one
        unordered window, so pairs are sampled rather than enumerated).
    epochs:
        Passes over the users.
    """

    name = "Item2Vec"

    def __init__(self, latent_dim: int = 64, negatives: int = 5,
                 pairs_per_user: int = 40, epochs: int = 5, lr: float = 0.05,
                 batch_users: int = 512, seed: int = 0) -> None:
        self.latent_dim = latent_dim
        self.negatives = negatives
        self.pairs_per_user = pairs_per_user
        self.epochs = epochs
        self.lr = lr
        self.batch_users = batch_users
        self.seed = seed
        self.sgns: SkipGramNS | None = None
        self._offsets: dict[str, int] | None = None
        self._schema = None

    # -- pair generation -------------------------------------------------------

    def _profile_arrays(self, dataset: MultiFieldDataset,
                        ) -> tuple[np.ndarray, np.ndarray]:
        """Concatenated global feature ids per user: (flat ids, offsets)."""
        offsets = dataset.schema.offsets()
        chunks = []
        for name in dataset.field_names:
            csr = dataset.field(name)
            chunks.append((csr, offsets[name]))
        counts = np.zeros(dataset.n_users, dtype=np.int64)
        for csr, off in chunks:
            counts += csr.row_nnz()
        out_offsets = np.zeros(dataset.n_users + 1, dtype=np.int64)
        np.cumsum(counts, out=out_offsets[1:])
        flat = np.empty(out_offsets[-1], dtype=np.int64)
        cursor = out_offsets[:-1].copy()
        for csr, off in chunks:
            nnz_per_row = csr.row_nnz()
            for i in range(dataset.n_users):
                lo, hi = csr.indptr[i], csr.indptr[i + 1]
                n = hi - lo
                if n:
                    flat[cursor[i]:cursor[i] + n] = csr.indices[lo:hi] + off
                    cursor[i] += n
        return flat, out_offsets

    def _sample_pairs(self, flat: np.ndarray, offsets: np.ndarray,
                      users: np.ndarray, rng: np.random.Generator,
                      ) -> tuple[np.ndarray, np.ndarray]:
        """Sample ``pairs_per_user`` (center, context) pairs per user."""
        sizes = offsets[users + 1] - offsets[users]
        valid = sizes >= 2
        users, sizes = users[valid], sizes[valid]
        if users.size == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        reps = np.minimum(self.pairs_per_user, sizes * (sizes - 1))
        user_of_pair = np.repeat(users, reps)
        size_of_pair = np.repeat(sizes, reps)
        start_of_pair = offsets[user_of_pair]
        i = rng.integers(0, size_of_pair)
        j = rng.integers(0, size_of_pair - 1)
        j = np.where(j >= i, j + 1, j)  # j != i, still uniform
        return flat[start_of_pair + i], flat[start_of_pair + j]

    # -- UserRepresentationModel -----------------------------------------------

    def fit(self, dataset: MultiFieldDataset, **kwargs) -> "Item2Vec":
        rng = new_rng(self.seed)
        self._schema = dataset.schema
        self._offsets = dataset.schema.offsets()
        vocab = dataset.schema.total_vocab
        self.sgns = SkipGramNS(vocab, self.latent_dim, negatives=self.negatives,
                               lr=self.lr, seed=rng)
        freq = np.zeros(vocab)
        for name in dataset.field_names:
            off = self._offsets[name]
            counts = dataset.field(name).column_counts()
            freq[off:off + counts.size] = counts
        self.sgns.set_noise_distribution(freq)

        flat, offsets = self._profile_arrays(dataset)
        total_steps = max(self.epochs * ((dataset.n_users - 1) // self.batch_users + 1), 1)
        step = 0
        for __ in range(self.epochs):
            order = rng.permutation(dataset.n_users)
            for start in range(0, dataset.n_users, self.batch_users):
                users = order[start:start + self.batch_users]
                centers, contexts = self._sample_pairs(flat, offsets, users, rng)
                lr = self.lr * max(0.1, 1.0 - step / total_steps)
                self.sgns.train_pairs(centers, contexts, lr=lr)
                step += 1
        return self

    def _require_fitted(self) -> None:
        if self.sgns is None:
            raise RuntimeError("Item2Vec must be fitted before use")

    def embed_users(self, dataset: MultiFieldDataset) -> np.ndarray:
        """Average of the user's feature vectors (weighted by log1p counts)."""
        self._require_fitted()
        vectors = self.sgns.vectors()
        out = np.zeros((dataset.n_users, self.latent_dim))
        totals = np.zeros(dataset.n_users)
        for name in dataset.field_names:
            csr = dataset.field(name)
            if csr.nnz == 0:
                continue
            off = self._offsets[name]
            user_of = np.repeat(np.arange(dataset.n_users), csr.row_nnz())
            w = np.ones(csr.nnz) if csr.weights is None else np.log1p(csr.weights)
            np.add.at(out, user_of, vectors[csr.indices + off] * w[:, None])
            np.add.at(totals, user_of, w)
        nonzero = totals > 0
        out[nonzero] /= totals[nonzero, None]
        return out

    def score_field(self, dataset: MultiFieldDataset, field: str) -> np.ndarray:
        """Cosine similarity between user vectors and the field's item vectors."""
        self._require_fitted()
        z = self.embed_users(dataset)
        off = self._offsets[field]
        vocab = self._schema[field].vocab_size
        items = self.sgns.vectors()[off:off + vocab]
        z_n = z / np.maximum(np.linalg.norm(z, axis=1, keepdims=True), 1e-12)
        items_n = items / np.maximum(np.linalg.norm(items, axis=1, keepdims=True), 1e-12)
        return z_n @ items_n.T
