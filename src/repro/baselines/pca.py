"""PCA baseline: truncated SVD of the binarised user-feature matrix.

The paper's PCA baseline [55] projects the feature matrix ``U`` onto its top
``D`` right singular vectors; the user embedding is the projection and the
reconstruction score of feature ``j`` for user ``i`` is ``(z_i Vᵀ)_j``.
Fold-in is simply projecting the (partially blanked) test rows.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse.linalg import svds

from repro.baselines.base import UserRepresentationModel
from repro.data.dataset import MultiFieldDataset

__all__ = ["PCAModel"]


class PCAModel(UserRepresentationModel):
    """Truncated-SVD dimensionality reduction over the concatenated fields."""

    name = "PCA"

    def __init__(self, latent_dim: int = 64, center: bool = True, seed: int = 0) -> None:
        if latent_dim <= 0:
            raise ValueError(f"latent_dim must be positive: {latent_dim}")
        self.latent_dim = latent_dim
        self.center = center
        self.seed = seed
        self.components_: np.ndarray | None = None  # (D, J)
        self.mean_: np.ndarray | None = None
        self._offsets: dict[str, int] | None = None
        self._schema = None

    def fit(self, dataset: MultiFieldDataset, **kwargs) -> "PCAModel":
        x = dataset.to_scipy(binary=True).astype(np.float64)
        self._schema = dataset.schema
        self._offsets = dataset.schema.offsets()
        if self.center:
            self.mean_ = np.asarray(x.mean(axis=0)).ravel()
        else:
            self.mean_ = np.zeros(x.shape[1])
        k = min(self.latent_dim, min(x.shape) - 1)
        if k <= 0:
            raise ValueError("dataset too small for the requested latent_dim")
        # svds on the uncentered sparse matrix; centering is folded into the
        # projection (X - μ)V = XV - μV, keeping the matrix sparse.
        __, __, vt = svds(x, k=k, random_state=self.seed)
        order = np.argsort(-np.linalg.norm(vt, axis=1))  # svds returns unordered
        self.components_ = vt[order]
        return self

    def _require_fitted(self) -> None:
        if self.components_ is None:
            raise RuntimeError("PCAModel must be fitted before use")

    def embed_users(self, dataset: MultiFieldDataset) -> np.ndarray:
        self._require_fitted()
        x = dataset.to_scipy(binary=True).astype(np.float64)
        proj = x @ self.components_.T
        return np.asarray(proj) - self.mean_ @ self.components_.T

    def score_field(self, dataset: MultiFieldDataset, field: str) -> np.ndarray:
        self._require_fitted()
        z = self.embed_users(dataset)
        start = self._offsets[field]
        stop = start + self._schema[field].vocab_size
        recon = z @ self.components_[:, start:stop]
        return recon + self.mean_[start:stop]
