"""Common interface every user-representation model implements.

The evaluation tasks (§V-B) are model-agnostic: they fit a model on training
users, embed held-out users (possibly with some fields blanked for fold-in),
and score features of a target field.  :class:`UserRepresentationModel` is the
contract that makes FVAE and all seven baselines interchangeable in the
benchmark harness.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.data.dataset import MultiFieldDataset

__all__ = ["UserRepresentationModel"]


class UserRepresentationModel(abc.ABC):
    """A model that learns a latent vector per user from multi-field profiles."""

    #: Short display name used in benchmark tables.
    name: str = "model"

    @abc.abstractmethod
    def fit(self, dataset: MultiFieldDataset, **kwargs) -> "UserRepresentationModel":
        """Train on ``dataset`` and return ``self``."""

    @abc.abstractmethod
    def embed_users(self, dataset: MultiFieldDataset) -> np.ndarray:
        """Return an ``(N, D)`` embedding for the users of ``dataset``.

        ``dataset`` may contain blanked fields (fold-in); models must encode
        from whatever features are present.
        """

    @abc.abstractmethod
    def score_field(self, dataset: MultiFieldDataset, field: str) -> np.ndarray:
        """Return ``(N, J_field)`` relevance scores for every feature of ``field``.

        Higher means the model believes the user is more likely to have the
        feature.  Used by both the reconstruction and tag-prediction tasks.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name='{self.name}')"
