"""Job2Vec-style multi-view embedding baseline [57].

Job2Vec learns representations by aligning multiple *views* of the same
entity.  Following the paper's use of it as a multi-field reference point, we
adapt the idea to user profiles: skip-gram pairs are drawn only **across
different fields** of the same user (a cross-view alignment objective),
whereas Item2Vec draws pairs from the whole profile indiscriminately.  The
substitution is documented in DESIGN.md: the original Job2Vec operates on a
job-title graph unavailable here; the cross-view SGNS retains its defining
trait (multi-view alignment) on our data.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.item2vec import Item2Vec
from repro.data.dataset import MultiFieldDataset
from repro.utils.rng import new_rng

__all__ = ["Job2Vec"]


class Job2Vec(Item2Vec):
    """Cross-field (multi-view) variant of SGNS profile embedding."""

    name = "Job2Vec"

    def _profile_arrays(self, dataset: MultiFieldDataset):
        """Also remember which field each flat id came from."""
        flat, offsets = super()._profile_arrays(dataset)
        field_of = np.empty(flat.size, dtype=np.int64)
        schema_offsets = dataset.schema.offsets()
        bounds = sorted((off, i) for i, off in
                        enumerate(schema_offsets[name] for name in dataset.field_names))
        starts = np.asarray([b[0] for b in bounds])
        field_ids = np.asarray([b[1] for b in bounds])
        pos = np.searchsorted(starts, flat, side="right") - 1
        field_of = field_ids[pos]
        self._field_of_flat = field_of
        return flat, offsets

    def _sample_pairs(self, flat: np.ndarray, offsets: np.ndarray,
                      users: np.ndarray, rng: np.random.Generator):
        """Sample pairs, then keep only cross-field ones (multi-view alignment)."""
        sizes = offsets[users + 1] - offsets[users]
        valid = sizes >= 2
        users, sizes = users[valid], sizes[valid]
        if users.size == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        # oversample, then filter to cross-field pairs
        reps = np.minimum(2 * self.pairs_per_user, sizes * (sizes - 1))
        user_of_pair = np.repeat(users, reps)
        size_of_pair = np.repeat(sizes, reps)
        start_of_pair = offsets[user_of_pair]
        i = rng.integers(0, size_of_pair)
        j = rng.integers(0, size_of_pair - 1)
        j = np.where(j >= i, j + 1, j)
        pos_i = start_of_pair + i
        pos_j = start_of_pair + j
        cross = self._field_of_flat[pos_i] != self._field_of_flat[pos_j]
        return flat[pos_i[cross]], flat[pos_j[cross]]
