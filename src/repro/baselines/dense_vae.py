"""Dense-input autoencoder baselines: Mult-DAE, Mult-VAE, RecVAE.

These are the models of Liang et al. [8] and Shenbin et al. [23] that the
paper compares against (Tables II/III) and benchmarks for speed (Table V).
They consume the user profile as one dense ``J``-dimensional vector (all
fields concatenated) and decode with a *single* softmax over the whole
vocabulary — the ``O(J)`` per-user cost the FVAE's batched softmax removes.

At billion scale the paper can only run Mult-VAE after statically hashing
features into a 20-bit space (Table V footnote); pass a
:class:`~repro.hashing.FeatureHasher` to reproduce that configuration,
collisions included.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import UserRepresentationModel
from repro.core.annealing import LinearAnnealing
from repro.data.dataset import MultiFieldDataset, UserBatch
from repro.hashing import FeatureHasher
from repro.nn import functional as F
from repro.nn import gaussian_kl
from repro.nn.layers import Dropout, Linear, Module
from repro.nn.tensor import Tensor, no_grad
from repro.utils.rng import new_rng

__all__ = ["DenseInputCodec", "MultDAE", "MultVAE", "RecVAE"]


class DenseInputCodec:
    """Maps multi-field sparse batches to dense input/target vectors.

    Without a hasher the input space is the concatenation of all field
    vocabularies (dimension ``J``); with a hasher every (field, feature id)
    pair is hashed into a fixed bucket space, reproducing the collisions of
    static feature hashing.
    """

    def __init__(self, dataset_schema, hasher: FeatureHasher | None = None) -> None:
        self.schema = dataset_schema
        self.hasher = hasher
        self.offsets = dataset_schema.offsets()
        self.dim = hasher.n_buckets if hasher else dataset_schema.total_vocab
        self._bucket_cache: dict[str, np.ndarray] = {}

    def _global_ids(self, field: str, ids: np.ndarray) -> np.ndarray:
        flat = ids + self.offsets[field]
        if self.hasher is None:
            return flat
        return self.hasher.bucket_ints(flat)

    def field_columns(self, field: str) -> np.ndarray:
        """Input-space column of every feature of ``field`` (cached)."""
        if field not in self._bucket_cache:
            vocab = self.schema[field].vocab_size
            self._bucket_cache[field] = self._global_ids(field, np.arange(vocab))
        return self._bucket_cache[field]

    def encode_batch(self, batch: UserBatch, binary: bool = True) -> np.ndarray:
        """Dense ``(B, dim)`` multi-hot matrix for a batch."""
        out = np.zeros((batch.n_users, self.dim))
        for field, fb in batch.fields.items():
            if fb.indices.size == 0:
                continue
            cols = self._global_ids(field, fb.indices)
            row_of = np.repeat(np.arange(fb.n_users), fb.counts())
            vals = np.ones(cols.size) if (binary or fb.weights is None) else fb.weights
            np.add.at(out, (row_of, cols), vals)
        if binary:
            out = (out > 0).astype(np.float64)
        return out

    @staticmethod
    def normalize(x: np.ndarray) -> np.ndarray:
        """Per-user L2 normalisation (the Mult-VAE input convention)."""
        norms = np.linalg.norm(x, axis=1, keepdims=True)
        return x / np.maximum(norms, 1e-12)


class _DenseAutoencoderBase(Module, UserRepresentationModel):
    """Shared machinery of the dense multinomial autoencoders."""

    def __init__(self, schema, latent_dim: int = 64, hidden: list[int] | None = None,
                 dropout: float = 0.5, hasher: FeatureHasher | None = None,
                 seed: int = 0) -> None:
        super().__init__()
        hidden = hidden or [256]
        rng = new_rng(seed)
        self.schema = schema
        self.codec = DenseInputCodec(schema, hasher)
        self.latent_dim = latent_dim
        self.hidden_dims = list(hidden)
        self._rng = new_rng(seed + 1)

        dims = [self.codec.dim] + hidden
        self._enc_layers: list[Linear] = []
        for i, (d_in, d_out) in enumerate(zip(dims[:-1], dims[1:])):
            layer = Linear(d_in, d_out, rng=rng)
            self.register_module(f"enc{i}", layer)
            self._enc_layers.append(layer)
        self.input_dropout = Dropout(dropout, rng=rng) if dropout > 0 else None

        dec_dims = [latent_dim] + hidden[::-1] + [self.codec.dim]
        self._dec_layers: list[Linear] = []
        for i, (d_in, d_out) in enumerate(zip(dec_dims[:-1], dec_dims[1:])):
            layer = Linear(d_in, d_out, rng=rng)
            self.register_module(f"dec{i}", layer)
            self._dec_layers.append(layer)

    # -- shared forward pieces -------------------------------------------------

    def _encode_hidden(self, x: np.ndarray) -> Tensor:
        h = Tensor(DenseInputCodec.normalize(x))
        if self.input_dropout is not None:
            h = self.input_dropout(h)
        for layer in self._enc_layers:
            h = F.tanh(layer(h))
        return h

    def decode_logits(self, z: Tensor) -> Tensor:
        h = z
        last = len(self._dec_layers) - 1
        for i, layer in enumerate(self._dec_layers):
            h = layer(h)
            if i < last:
                h = F.tanh(h)
        return h

    # -- UserRepresentationModel -----------------------------------------------

    def fit(self, dataset: MultiFieldDataset, epochs: int = 10, batch_size: int = 512,
            lr: float = 1e-3, verbose: bool = False, **trainer_kwargs):
        from repro.core.trainer import Trainer

        trainer = Trainer(self, lr=lr)
        self.history = trainer.fit(dataset, epochs=epochs, batch_size=batch_size,
                                   verbose=verbose, **trainer_kwargs)
        return self

    def embed_users(self, dataset: MultiFieldDataset, batch_size: int = 2048) -> np.ndarray:
        self.eval()
        out = np.empty((dataset.n_users, self.latent_dim))
        with no_grad():
            for start in range(0, dataset.n_users, batch_size):
                idx = np.arange(start, min(start + batch_size, dataset.n_users))
                x = self.codec.encode_batch(dataset.batch(idx))
                out[idx] = self._embed(x)
        return out

    def _embed(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def score_field(self, dataset: MultiFieldDataset, field: str,
                    batch_size: int = 2048) -> np.ndarray:
        """Decoder logits restricted to the columns of ``field``."""
        self.eval()
        cols = self.codec.field_columns(field)
        out = np.empty((dataset.n_users, cols.size))
        with no_grad():
            for start in range(0, dataset.n_users, batch_size):
                idx = np.arange(start, min(start + batch_size, dataset.n_users))
                x = self.codec.encode_batch(dataset.batch(idx))
                z = Tensor(self._embed(x))
                logits = self.decode_logits(z).data
                out[idx] = logits[:, cols]
        return out


class MultDAE(_DenseAutoencoderBase):
    """Denoising autoencoder with multinomial likelihood (Mult-DAE, [8]).

    Dropout on the (normalised) input is the corruption; the bottleneck is a
    deterministic linear map.
    """

    name = "Mult-DAE"

    def __init__(self, schema, latent_dim: int = 64, hidden: list[int] | None = None,
                 dropout: float = 0.5, hasher: FeatureHasher | None = None,
                 seed: int = 0) -> None:
        super().__init__(schema, latent_dim, hidden, dropout, hasher, seed)
        self.to_latent = Linear(self.hidden_dims[-1], latent_dim, rng=new_rng(seed + 2))

    def loss_on_batch(self, batch: UserBatch, step: int | None = None):
        x = self.codec.encode_batch(batch)
        z = self.to_latent(self._encode_hidden(x))
        log_probs = F.log_softmax(self.decode_logits(z), axis=-1)
        nll = -(Tensor(x) * log_probs).sum() * (1.0 / x.shape[0])
        return nll, {"loss": nll.item(), "recon": nll.item(), "kl": 0.0, "beta": 0.0}

    def _embed(self, x: np.ndarray) -> np.ndarray:
        return self.to_latent(self._encode_hidden(x)).data


class MultVAE(_DenseAutoencoderBase):
    """Variational autoencoder with multinomial likelihood (Mult-VAE, [8]).

    Single multinomial over the concatenated vocabulary, diagonal-Gaussian
    posterior, and linear KL annealing up to ``beta``.
    """

    name = "Mult-VAE"

    def __init__(self, schema, latent_dim: int = 64, hidden: list[int] | None = None,
                 dropout: float = 0.5, beta: float = 0.2, anneal_steps: int = 2000,
                 hasher: FeatureHasher | None = None, seed: int = 0) -> None:
        super().__init__(schema, latent_dim, hidden, dropout, hasher, seed)
        rng = new_rng(seed + 2)
        self.mu_head = Linear(self.hidden_dims[-1], latent_dim, rng=rng)
        self.logvar_head = Linear(self.hidden_dims[-1], latent_dim, rng=rng)
        self.beta_schedule = LinearAnnealing(beta, anneal_steps)
        self._step = 0

    def posterior(self, x: np.ndarray) -> tuple[Tensor, Tensor]:
        h = self._encode_hidden(x)
        return self.mu_head(h), self.logvar_head(h)

    def loss_on_batch(self, batch: UserBatch, step: int | None = None):
        if step is not None:
            self._step = step
        beta = self.beta_schedule(self._step)
        self._step += 1
        x = self.codec.encode_batch(batch)
        mu, logvar = self.posterior(x)
        eps = Tensor(self._rng.standard_normal(mu.shape))
        z = mu + (logvar * 0.5).exp() * eps if self.training else mu
        log_probs = F.log_softmax(self.decode_logits(z), axis=-1)
        nll = -(Tensor(x) * log_probs).sum() * (1.0 / x.shape[0])
        kl = gaussian_kl(mu, logvar)
        loss = nll + kl * beta
        return loss, {"loss": loss.item(), "recon": nll.item(),
                      "kl": kl.item(), "beta": beta}

    def _embed(self, x: np.ndarray) -> np.ndarray:
        mu, __ = self.posterior(x)
        return mu.data


class RecVAE(MultVAE):
    """RecVAE (Shenbin et al. [23]): composite prior + user-specific β.

    Two deltas over Mult-VAE, following the original paper:

    * the prior is a mixture ``p(z) = γ·N(0, I) + (1−γ)·q_old(z|x)`` where
      ``q_old`` is the posterior under periodically-frozen encoder weights;
      the KL is estimated at the sampled ``z`` (Monte-Carlo) instead of in
      closed form.
    * β is rescaled per user proportionally to the profile size
      (``β_i = β · N_i / N̄``), RecVAE's user-specific regularisation.
    """

    name = "RecVAE"

    def __init__(self, schema, latent_dim: int = 64, hidden: list[int] | None = None,
                 dropout: float = 0.5, beta: float = 0.2, anneal_steps: int = 2000,
                 gamma: float = 0.5, refresh_prior_every: int = 200,
                 hasher: FeatureHasher | None = None, seed: int = 0) -> None:
        super().__init__(schema, latent_dim, hidden, dropout, beta, anneal_steps,
                         hasher, seed)
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1]: {gamma}")
        self.gamma = gamma
        self.refresh_prior_every = refresh_prior_every
        self._old_state: dict[str, np.ndarray] | None = None

    def _old_posterior(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Posterior parameters under the frozen (old) encoder weights."""
        if self._old_state is None:
            return (np.zeros((x.shape[0], self.latent_dim)),
                    np.zeros((x.shape[0], self.latent_dim)))
        live = self.state_dict()
        self.load_state_dict(self._old_state)
        with no_grad():
            was_training = self.training
            self.eval()
            mu, logvar = self.posterior(x)
            self.train(was_training)
        self.load_state_dict(live)
        return mu.data, logvar.data

    @staticmethod
    def _log_normal(z: Tensor, mu: np.ndarray, logvar: np.ndarray) -> Tensor:
        """``log N(z; mu, exp(logvar))`` summed over latent dims (z differentiable).

        Per sample: ``-0.5 [ D log 2π + Σ logvar + Σ (z-μ)²/σ² ]``.
        """
        diff = z - Tensor(mu)
        inv_var = Tensor(np.exp(-logvar))
        quad = (diff * diff * inv_var).sum(axis=1)
        log_det = Tensor(logvar.sum(axis=1))
        return (quad + log_det + np.log(2.0 * np.pi) * mu.shape[1]) * (-0.5)

    def loss_on_batch(self, batch: UserBatch, step: int | None = None):
        if step is not None:
            self._step = step
        if self._step % self.refresh_prior_every == 0:
            self._old_state = self.state_dict()
        beta = self.beta_schedule(self._step)
        self._step += 1

        x = self.codec.encode_batch(batch)
        mu, logvar = self.posterior(x)
        eps = Tensor(self._rng.standard_normal(mu.shape))
        z = mu + (logvar * 0.5).exp() * eps if self.training else mu
        log_probs = F.log_softmax(self.decode_logits(z), axis=-1)
        nll = -(Tensor(x) * log_probs).sum() * (1.0 / x.shape[0])

        # Monte-Carlo KL against the composite prior, per user.
        log_q = self._log_q(z, mu, logvar)
        mu_old, logvar_old = self._old_posterior(x)
        log_p_std = self._log_normal(z, np.zeros_like(mu.data), np.zeros_like(mu.data))
        log_p_old = self._log_normal(z, mu_old, logvar_old)
        # log p(z) = logsumexp(log γ + log N(0,I), log(1-γ) + log q_old)
        a = log_p_std + np.log(self.gamma)
        b = log_p_old + np.log1p(-self.gamma)
        m = Tensor(np.maximum(a.data, b.data))  # stabilising constant
        log_p = m + ((a - m).exp() + (b - m).exp()).log()
        kl_per_user = log_q - log_p

        # user-specific beta: proportional to profile size
        sizes = x.sum(axis=1)
        scale = sizes / max(sizes.mean(), 1e-12)
        kl = (kl_per_user * Tensor(beta * scale)).sum() * (1.0 / x.shape[0])
        loss = nll + kl
        return loss, {"loss": loss.item(), "recon": nll.item(),
                      "kl": float(kl_per_user.data.mean()), "beta": beta}

    def _log_q(self, z: Tensor, mu: Tensor, logvar: Tensor) -> Tensor:
        diff = z - mu
        inv_var = (logvar * -1.0).exp()
        quad = (diff * diff * inv_var).sum(axis=1)
        log_det = logvar.sum(axis=1)
        return (quad + log_det + np.log(2.0 * np.pi) * self.latent_dim) * (-0.5)
