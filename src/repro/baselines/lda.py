"""Latent Dirichlet Allocation baseline (batch variational Bayes).

The paper's LDA baseline [56] treats a user profile as a bag of feature
"words" over the concatenated vocabulary; the user representation is the
variational topic posterior ``γ_i`` and feature scores come from
``E[θ_i] · β`` — the probability the user's topics emit the feature.

This is a from-scratch implementation of the batch variant of Hoffman et
al.'s variational inference: per-document coordinate ascent on
``(γ, φ)`` in the E-step and a Dirichlet-smoothed topic update in the M-step.
"""

from __future__ import annotations

import numpy as np
from scipy.special import digamma

from repro.baselines.base import UserRepresentationModel
from repro.data.dataset import MultiFieldDataset
from repro.utils.rng import new_rng

__all__ = ["LDAModel"]


class LDAModel(UserRepresentationModel):
    """Batch variational-Bayes LDA over concatenated multi-field profiles.

    Parameters
    ----------
    n_topics:
        Number of topics ``D`` (the representation dimension).
    doc_prior / topic_prior:
        Dirichlet hyper-parameters α (documents) and η (topics).
    n_iterations:
        Outer EM iterations.
    e_steps:
        Inner fixed-point steps per document batch in the E-step.
    """

    name = "LDA"

    def __init__(self, n_topics: int = 64, doc_prior: float | None = None,
                 topic_prior: float = 0.01, n_iterations: int = 20,
                 e_steps: int = 30, seed: int = 0) -> None:
        if n_topics <= 0:
            raise ValueError(f"n_topics must be positive: {n_topics}")
        self.n_topics = n_topics
        self.doc_prior = doc_prior if doc_prior is not None else 1.0 / n_topics
        self.topic_prior = topic_prior
        self.n_iterations = n_iterations
        self.e_steps = e_steps
        self.seed = seed
        self.topic_word_: np.ndarray | None = None  # (T, J) normalised β
        self._offsets: dict[str, int] | None = None
        self._schema = None

    # -- inference helpers ------------------------------------------------------

    def _e_step(self, counts, exp_elog_beta: np.ndarray,
                ) -> tuple[np.ndarray, np.ndarray]:
        """Variational E-step; returns (γ, sufficient statistics)."""
        n_docs = counts.shape[0]
        rng = new_rng(self.seed + 1)
        gamma = rng.gamma(100.0, 0.01, size=(n_docs, self.n_topics))
        sstats = np.zeros_like(exp_elog_beta)
        counts = counts.tocsr()
        for d in range(n_docs):
            start, stop = counts.indptr[d], counts.indptr[d + 1]
            ids = counts.indices[start:stop]
            cts = counts.data[start:stop]
            if ids.size == 0:
                continue
            gamma_d = gamma[d]
            exp_elog_theta_d = np.exp(digamma(gamma_d) - digamma(gamma_d.sum()))
            beta_d = exp_elog_beta[:, ids]
            phinorm = exp_elog_theta_d @ beta_d + 1e-100
            for __ in range(self.e_steps):
                last = gamma_d
                gamma_d = self.doc_prior + exp_elog_theta_d * ((cts / phinorm) @ beta_d.T)
                exp_elog_theta_d = np.exp(digamma(gamma_d) - digamma(gamma_d.sum()))
                phinorm = exp_elog_theta_d @ beta_d + 1e-100
                if np.abs(gamma_d - last).mean() < 1e-3:
                    break
            gamma[d] = gamma_d
            sstats[:, ids] += np.outer(exp_elog_theta_d, cts / phinorm) * beta_d
        return gamma, sstats

    def fit(self, dataset: MultiFieldDataset, **kwargs) -> "LDAModel":
        x = dataset.to_scipy(binary=False)
        self._schema = dataset.schema
        self._offsets = dataset.schema.offsets()
        n_words = x.shape[1]
        rng = new_rng(self.seed)
        lam = rng.gamma(100.0, 0.01, size=(self.n_topics, n_words))
        for __ in range(self.n_iterations):
            exp_elog_beta = np.exp(
                digamma(lam) - digamma(lam.sum(axis=1, keepdims=True)))
            __, sstats = self._e_step(x, exp_elog_beta)
            lam = self.topic_prior + sstats
        self.topic_word_ = lam / lam.sum(axis=1, keepdims=True)
        self._lambda = lam
        return self

    def _require_fitted(self) -> None:
        if self.topic_word_ is None:
            raise RuntimeError("LDAModel must be fitted before use")

    def embed_users(self, dataset: MultiFieldDataset) -> np.ndarray:
        """Normalised topic posterior E[θ_i] as the user representation."""
        self._require_fitted()
        x = dataset.to_scipy(binary=False)
        exp_elog_beta = np.exp(
            digamma(self._lambda) - digamma(self._lambda.sum(axis=1, keepdims=True)))
        gamma, __ = self._e_step(x, exp_elog_beta)
        return gamma / gamma.sum(axis=1, keepdims=True)

    def score_field(self, dataset: MultiFieldDataset, field: str) -> np.ndarray:
        self._require_fitted()
        theta = self.embed_users(dataset)
        start = self._offsets[field]
        stop = start + self._schema[field].vocab_size
        return theta @ self.topic_word_[:, start:stop]
