"""Baseline user-representation models the paper compares against (§V-A1)."""

from repro.baselines.base import UserRepresentationModel
from repro.baselines.dense_vae import DenseInputCodec, MultDAE, MultVAE, RecVAE
from repro.baselines.item2vec import Item2Vec
from repro.baselines.job2vec import Job2Vec
from repro.baselines.lda import LDAModel
from repro.baselines.pca import PCAModel
from repro.baselines.sgns import SkipGramNS

__all__ = [
    "UserRepresentationModel",
    "PCAModel", "LDAModel", "Item2Vec", "Job2Vec", "SkipGramNS",
    "MultDAE", "MultVAE", "RecVAE", "DenseInputCodec",
]
