"""Skip-gram with negative sampling (SGNS) — shared core for Item2Vec/Job2Vec.

A compact, fully vectorised NumPy implementation of word2vec-style training:
sigmoid dot-product scores, ``k`` negatives per positive drawn from the
unigram distribution raised to 3/4, and manual gradient updates (SGNS
gradients are simple enough that autograd would only add overhead).
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import new_rng

__all__ = ["SkipGramNS"]


def _stable_sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    e = np.exp(x[~pos])
    out[~pos] = e / (1.0 + e)
    return out


class SkipGramNS:
    """Embedding trainer for (center, context) id pairs.

    Parameters
    ----------
    vocab_size:
        Total number of ids.
    dim:
        Embedding dimension.
    negatives:
        Negative samples per positive pair.
    lr:
        SGD learning rate (linearly decayed by :meth:`decay_lr` callers).
    noise_power:
        Exponent of the unigram noise distribution (word2vec uses 0.75).
    """

    def __init__(self, vocab_size: int, dim: int, negatives: int = 5,
                 lr: float = 0.05, noise_power: float = 0.75,
                 seed: int | np.random.Generator | None = 0) -> None:
        if vocab_size <= 0 or dim <= 0:
            raise ValueError("vocab_size and dim must be positive")
        self.vocab_size = vocab_size
        self.dim = dim
        self.negatives = negatives
        self.lr = lr
        self.noise_power = noise_power
        self._rng = new_rng(seed)
        bound = 0.5 / dim
        self.w_in = self._rng.uniform(-bound, bound, size=(vocab_size, dim))
        self.w_out = np.zeros((vocab_size, dim))
        self._noise_cdf: np.ndarray | None = None

    def set_noise_distribution(self, frequencies: np.ndarray) -> None:
        """Build the negative-sampling distribution from id frequencies."""
        frequencies = np.asarray(frequencies, dtype=np.float64)
        if frequencies.shape != (self.vocab_size,):
            raise ValueError(
                f"frequencies must have shape ({self.vocab_size},), got {frequencies.shape}")
        weights = np.maximum(frequencies, 0.0) ** self.noise_power
        total = weights.sum()
        if total <= 0:
            weights = np.ones(self.vocab_size)
            total = float(self.vocab_size)
        self._noise_cdf = np.cumsum(weights) / total

    def sample_negatives(self, n_pairs: int) -> np.ndarray:
        """Draw ``(n_pairs, negatives)`` noise ids."""
        if self._noise_cdf is None:
            return self._rng.integers(0, self.vocab_size,
                                      size=(n_pairs, self.negatives))
        u = self._rng.random((n_pairs, self.negatives))
        return np.searchsorted(self._noise_cdf, u).clip(max=self.vocab_size - 1)

    def train_pairs(self, centers: np.ndarray, contexts: np.ndarray,
                    lr: float | None = None) -> float:
        """One SGNS step over a batch of positive pairs; returns the mean loss."""
        centers = np.asarray(centers, dtype=np.int64)
        contexts = np.asarray(contexts, dtype=np.int64)
        if centers.shape != contexts.shape or centers.ndim != 1:
            raise ValueError("centers and contexts must be 1-D arrays of equal length")
        if centers.size == 0:
            return 0.0
        lr = self.lr if lr is None else lr
        n = centers.size
        negs = self.sample_negatives(n)                       # (n, K)

        c = self.w_in[centers]                                # (n, D)
        o_pos = self.w_out[contexts]                          # (n, D)
        o_neg = self.w_out[negs]                              # (n, K, D)

        s_pos = _stable_sigmoid((c * o_pos).sum(axis=1))      # (n,)
        s_neg = _stable_sigmoid(np.einsum("nd,nkd->nk", c, o_neg))  # (n, K)

        g_pos = s_pos - 1.0                                   # dL/d(c·o_pos)
        g_neg = s_neg                                         # dL/d(c·o_neg)

        grad_c = g_pos[:, None] * o_pos + np.einsum("nk,nkd->nd", g_neg, o_neg)
        grad_o_pos = g_pos[:, None] * c
        grad_o_neg = g_neg[:, :, None] * c[:, None, :]

        np.add.at(self.w_in, centers, -lr * grad_c)
        np.add.at(self.w_out, contexts, -lr * grad_o_pos)
        np.add.at(self.w_out, negs.ravel(),
                  -lr * grad_o_neg.reshape(-1, self.dim))

        loss = -(np.log(np.maximum(s_pos, 1e-12)).mean()
                 + np.log(np.maximum(1.0 - s_neg, 1e-12)).sum(axis=1).mean())
        return float(loss)

    def vectors(self) -> np.ndarray:
        """The learned (input) embedding matrix."""
        return self.w_in
