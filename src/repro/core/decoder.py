"""Field-aware decoder: shared trunk + per-field batched-softmax heads (§IV-A/C2).

Each field ``k`` gets an independent multinomial distribution
``π^k(z) ∝ exp(f_{θ^k}(z))`` (Eq. 1).  The MLP trunk is shared across fields;
only the output layer is per-field, implemented as a grow-able row matrix
aligned with the encoder's dynamic hash table so that logits can be computed
for an arbitrary *candidate subset* of features — the batched softmax.
"""

from __future__ import annotations

import numpy as np

from repro.data.fields import FieldSchema
from repro.hashing import DynamicHashTable
from repro.nn import functional as F
from repro.nn.layers import Linear, Module
from repro.nn.tensor import Parameter, Tensor, as_tensor, no_grad
from repro.utils.rng import new_rng

__all__ = ["FieldOutputHead", "FieldAwareDecoder"]

_ACT = {"tanh": F.tanh, "relu": F.relu, "sigmoid": F.sigmoid}


class FieldOutputHead(Module):
    """Per-field output layer producing logits over a candidate feature set.

    Rows are keyed by the *same* dynamic hash table as the corresponding
    encoder embedding bag, so encoder and decoder agree on the id → row
    mapping and grow together.
    """

    def __init__(self, table: DynamicHashTable, trunk_dim: int,
                 capacity: int = 1024, init_std: float = 0.01,
                 rng: np.random.Generator | int | None = None) -> None:
        super().__init__()
        self.table = table
        self.trunk_dim = trunk_dim
        self.init_std = init_std
        self._rng = new_rng(rng)
        self.weight = Parameter(self._rng.normal(0.0, init_std, size=(capacity, trunk_dim)),
                                name="weight", sparse=True)
        self.bias = Parameter(np.zeros(capacity), name="bias", sparse=True)

    @property
    def capacity(self) -> int:
        return self.weight.data.shape[0]

    def ensure_capacity(self, needed: int) -> None:
        if needed <= self.capacity:
            return
        old_capacity = self.capacity
        new_capacity = max(needed, 2 * old_capacity)
        grown_w = np.empty((new_capacity, self.trunk_dim), dtype=self.weight.data.dtype)
        grown_w[:old_capacity] = self.weight.data
        grown_w[old_capacity:] = self._rng.normal(
            0.0, self.init_std, size=(new_capacity - old_capacity, self.trunk_dim))
        grown_b = np.zeros(new_capacity, dtype=self.bias.data.dtype)
        grown_b[:old_capacity] = self.bias.data
        self.weight.data = grown_w
        self.bias.data = grown_b

    def logits_for_rows(self, trunk: Tensor, rows: np.ndarray) -> Tensor:
        """Logits of the candidate rows: ``trunk @ W[rows].T + b[rows]``."""
        self.ensure_capacity(int(rows.max()) + 1 if rows.size else 0)
        return trunk @ F.rows(self.weight, rows).T + F.take(self.bias, rows)

    def nll_for_rows(self, trunk: Tensor, rows: np.ndarray,
                     targets: np.ndarray, scale: float = 1.0) -> Tensor:
        """Fused batched-softmax NLL over the candidate rows.

        One forward / one backward closure via
        :func:`repro.nn.functional.sampled_softmax_nll`; bit-identical to
        ``-(targets * log_softmax(logits_for_rows(...))).sum() * scale``.
        """
        self.ensure_capacity(int(rows.max()) + 1 if rows.size else 0)
        return F.sampled_softmax_nll(trunk, self.weight, self.bias, rows,
                                     targets, scale=scale)

    def __repr__(self) -> str:
        return f"FieldOutputHead(trunk_dim={self.trunk_dim}, capacity={self.capacity})"


class FieldAwareDecoder(Module):
    """Generative network: ``z → shared trunk → per-field log-softmax``."""

    def __init__(self, schema: FieldSchema, latent_dim: int, hidden: list[int],
                 tables: dict[str, DynamicHashTable], activation: str = "tanh",
                 capacity: int = 1024,
                 rng: np.random.Generator | int | None = None) -> None:
        super().__init__()
        if not hidden:
            raise ValueError("decoder needs at least one hidden layer")
        if activation not in _ACT:
            raise ValueError(f"unknown activation '{activation}'")
        rng = new_rng(rng)
        self.schema = schema
        self.activation = activation
        self.hidden_dims = list(hidden)

        self._trunk: list[Linear] = []
        dims = [latent_dim] + list(hidden)
        for i, (d_in, d_out) in enumerate(zip(dims[:-1], dims[1:])):
            layer = Linear(d_in, d_out, rng=rng)
            self.register_module(f"fc{i}", layer)
            self._trunk.append(layer)

        self._heads: dict[str, FieldOutputHead] = {}
        for spec in schema:
            head = FieldOutputHead(tables[spec.name], hidden[-1],
                                   capacity=capacity, rng=rng)
            self.register_module(f"head_{spec.name}", head)
            self._heads[spec.name] = head

    def head(self, field: str) -> FieldOutputHead:
        return self._heads[field]

    def trunk(self, z: Tensor) -> Tensor:
        """Shared hidden representation ``f_{L_d}(…f_1(z))``."""
        act = _ACT[self.activation]
        h = z
        for layer in self._trunk:
            h = act(layer(h))
        return h

    def log_probs(self, trunk: Tensor, field: str, candidate_rows: np.ndarray) -> Tensor:
        """Log multinomial probabilities over ``candidate_rows`` (batched softmax)."""
        logits = self._heads[field].logits_for_rows(trunk, candidate_rows)
        return F.log_softmax(logits, axis=-1)

    def recon_nll(self, trunk: Tensor, field: str, candidate_rows: np.ndarray,
                  targets: np.ndarray, scale: float = 1.0,
                  fused: bool = True) -> Tensor:
        """Reconstruction NLL of ``targets`` over ``candidate_rows``.

        ``fused=True`` dispatches to the single-closure kernel; ``fused=False``
        keeps the unfused reference chain (``log_probs`` → mul → sum → scale).
        Both produce bit-identical losses and gradients.
        """
        if fused:
            return self._heads[field].nll_for_rows(trunk, candidate_rows,
                                                   targets, scale=scale)
        log_probs = self.log_probs(trunk, field, candidate_rows)
        return -(as_tensor(targets, like=log_probs.data.dtype)
                  * log_probs).sum() * scale

    def full_scores(self, z_mu: np.ndarray, field: str,
                    chunk: int = 4096) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Inference-time logits of *every known feature* of ``field``.

        Returns ``(feature_ids, rows, logits)`` where ``logits`` has shape
        ``(N, n_known)`` aligned with ``feature_ids``.  Computed without
        autograd in row chunks to bound memory.
        """
        head = self._heads[field]
        items = list(head.table.items())
        ids = np.asarray([k for k, __ in items], dtype=np.int64)
        rows = np.asarray([v for __, v in items], dtype=np.int64)
        with no_grad():
            trunk = self.trunk(Tensor(z_mu)).data
        logits = np.empty((trunk.shape[0], rows.size))
        for start in range(0, rows.size, chunk):
            sel = rows[start:start + chunk]
            logits[:, start:start + chunk] = trunk @ head.weight.data[sel].T \
                + head.bias.data[sel]
        return ids, rows, logits
