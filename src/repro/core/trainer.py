"""Mini-batch training loop (Algorithm 1) with timing instrumentation.

The trainer is deliberately model-agnostic: anything exposing
``loss_on_batch(batch, step) -> (loss Tensor, diagnostics dict)`` and
``parameters()`` can be trained.  Timing is tracked per epoch and cumulatively
so the speed benchmarks (Table V, Fig 6) read throughput straight from the
training history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.data.dataset import MultiFieldDataset
from repro.nn.optim import Adam, Optimizer, SGD
from repro.nn.schedules import clip_grad_norm
from repro.utils.rng import new_rng
from repro.utils.timer import Timer

__all__ = ["EpochRecord", "TrainHistory", "Trainer"]


@dataclass
class EpochRecord:
    """Summary of one training epoch."""

    epoch: int
    loss: float
    recon: float
    kl: float
    beta: float
    epoch_time: float
    cumulative_time: float
    users_per_second: float
    eval_metrics: dict[str, float] = field(default_factory=dict)


@dataclass
class TrainHistory:
    """Sequence of epoch records plus run-level aggregates."""

    epochs: list[EpochRecord] = field(default_factory=list)

    @property
    def total_time(self) -> float:
        return self.epochs[-1].cumulative_time if self.epochs else 0.0

    @property
    def final_loss(self) -> float:
        return self.epochs[-1].loss if self.epochs else float("nan")

    @property
    def throughput(self) -> float:
        """Mean training throughput in users/second."""
        if not self.epochs or self.total_time == 0:
            return float("nan")
        total_users = sum(r.users_per_second * r.epoch_time for r in self.epochs)
        return total_users / self.total_time

    def series(self, key: str) -> list[float]:
        """Column view over epochs: ``loss``, ``kl``, ``cumulative_time``, …"""
        return [getattr(r, key) for r in self.epochs]


class Trainer:
    """Runs Algorithm 1: shuffled mini-batches, noisy gradients, Adam updates.

    Parameters
    ----------
    model:
        Object with ``loss_on_batch``, ``parameters()``, ``train()``/``eval()``.
    lr:
        Learning rate.
    optimizer:
        ``"adam"`` (default) or ``"sgd"``.
    weight_decay:
        L2 penalty applied inside the optimizer.
    """

    def __init__(self, model, lr: float = 1e-3, optimizer: str = "adam",
                 weight_decay: float = 0.0, lr_schedule=None,
                 clip_norm: float | None = None) -> None:
        self.model = model
        self.base_lr = lr
        self.lr_schedule = lr_schedule
        self.clip_norm = clip_norm
        if optimizer == "adam":
            self.optimizer: Optimizer = Adam(model.parameters(), lr=lr,
                                             weight_decay=weight_decay)
        elif optimizer == "sgd":
            self.optimizer = SGD(model.parameters(), lr=lr, weight_decay=weight_decay)
        else:
            raise ValueError(f"unknown optimizer '{optimizer}'; use 'adam' or 'sgd'")

    def fit(self, dataset: MultiFieldDataset, epochs: int = 10,
            batch_size: int = 512,
            rng: np.random.Generator | int | None = 0,
            eval_fn: Callable[[], dict[str, float]] | None = None,
            eval_every: int = 1,
            early_stopping_metric: str | None = None,
            patience: int = 3,
            max_seconds: float | None = None,
            verbose: bool = False) -> TrainHistory:
        """Train for up to ``epochs`` epochs (or until ``max_seconds`` elapse).

        ``eval_fn`` is called every ``eval_every`` epochs (training mode is
        restored afterwards); when ``early_stopping_metric`` names one of its
        keys, training stops after ``patience`` epochs without improvement.
        """
        if epochs <= 0:
            raise ValueError(f"epochs must be positive: {epochs}")
        rng = new_rng(rng)
        history = TrainHistory()
        timer = Timer()
        step = getattr(self.model, "_step", 0)
        best_metric = -np.inf
        since_best = 0

        for epoch in range(epochs):
            self.model.train()
            losses, recons, kls, betas = [], [], [], []
            n_seen = 0
            timer.start()
            for batch in dataset.iter_batches(batch_size, shuffle=True, rng=rng):
                self.optimizer.zero_grad()
                loss, diag = self.model.loss_on_batch(batch, step)
                loss.backward()
                if self.clip_norm is not None:
                    clip_grad_norm(self.optimizer.params, self.clip_norm)
                if self.lr_schedule is not None:
                    self.optimizer.lr = self.base_lr * self.lr_schedule(step)
                self.optimizer.step()
                step += 1
                n_seen += batch.n_users
                losses.append(diag.get("loss", loss.item()))
                recons.append(diag.get("recon", float("nan")))
                kls.append(diag.get("kl", float("nan")))
                betas.append(diag.get("beta", float("nan")))
            epoch_time = timer.stop()

            record = EpochRecord(
                epoch=epoch,
                loss=float(np.mean(losses)) if losses else float("nan"),
                recon=float(np.mean(recons)) if recons else float("nan"),
                kl=float(np.mean(kls)) if kls else float("nan"),
                beta=betas[-1] if betas else float("nan"),
                epoch_time=epoch_time,
                cumulative_time=timer.elapsed,
                users_per_second=n_seen / epoch_time if epoch_time > 0 else float("inf"),
            )

            if eval_fn is not None and (epoch + 1) % eval_every == 0:
                was_training = self.model.training
                self.model.eval()
                record.eval_metrics = dict(eval_fn())
                if was_training:
                    self.model.train()

            history.epochs.append(record)
            if verbose:
                extra = " ".join(f"{k}={v:.4f}" for k, v in record.eval_metrics.items())
                print(f"[epoch {epoch}] loss={record.loss:.4f} kl={record.kl:.4f} "
                      f"time={record.cumulative_time:.2f}s {extra}")

            if early_stopping_metric and record.eval_metrics:
                current = record.eval_metrics.get(early_stopping_metric)
                if current is None:
                    raise KeyError(f"eval_fn did not report '{early_stopping_metric}'")
                if current > best_metric + 1e-6:
                    best_metric = current
                    since_best = 0
                else:
                    since_best += 1
                    if since_best >= patience:
                        break
            if max_seconds is not None and timer.elapsed >= max_seconds:
                break

        self.model.eval()
        return history
