"""Mini-batch training loop (Algorithm 1) with timing instrumentation.

The trainer is deliberately model-agnostic: anything exposing
``loss_on_batch(batch, step) -> (loss Tensor, diagnostics dict)`` and
``parameters()`` can be trained.  Timing is tracked per epoch and cumulatively
so the speed benchmarks (Table V, Fig 6) read throughput straight from the
training history.

Observability: every batch emits per-stage spans (``batch_iter`` / ``forward``
/ ``backward`` / ``clip`` / ``optimizer_step``) through :mod:`repro.obs` —
free when no telemetry session is installed — and ``fit`` drives an optional
list of callbacks (see :class:`repro.obs.callbacks.TrainerCallback`).
Progress output goes through the ``repro.core.trainer`` logger;
``verbose=True`` attaches a stream handler as a convenience.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.data.dataset import MultiFieldDataset
from repro.nn.optim import Adam, Optimizer, SGD
from repro.nn.schedules import clip_grad_norm
from repro.obs import runtime as obs
from repro.utils.rng import new_rng
from repro.utils.timer import Timer

__all__ = ["EpochRecord", "TrainHistory", "Trainer"]

logger = logging.getLogger(__name__)

_BATCH_DONE = object()  # sentinel: batch iterator exhausted


def _attach_verbose_handler() -> None:
    """Attach a plain stream handler for ``verbose=True`` runs (idempotent)."""
    if not any(getattr(h, "_repro_verbose", False) for h in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter("%(message)s"))
        handler._repro_verbose = True
        logger.addHandler(handler)
    if logger.getEffectiveLevel() > logging.INFO:
        logger.setLevel(logging.INFO)


@dataclass
class EpochRecord:
    """Summary of one training epoch."""

    epoch: int
    loss: float
    recon: float
    kl: float
    beta: float
    epoch_time: float
    cumulative_time: float
    users_per_second: float
    eval_metrics: dict[str, float] = field(default_factory=dict)
    n_batches: int = 0
    interrupted: bool = False  # epoch cut short by the max_seconds budget


@dataclass
class TrainHistory:
    """Sequence of epoch records plus run-level aggregates."""

    epochs: list[EpochRecord] = field(default_factory=list)

    @property
    def total_time(self) -> float:
        return self.epochs[-1].cumulative_time if self.epochs else 0.0

    @property
    def final_loss(self) -> float:
        return self.epochs[-1].loss if self.epochs else float("nan")

    @property
    def throughput(self) -> float:
        """Mean training throughput in users/second.

        Epochs that saw no batches (empty dataset) carry ``nan`` rates and are
        excluded; with no measurable epoch at all the throughput is ``nan``.
        """
        measured = [r for r in self.epochs
                    if np.isfinite(r.users_per_second) and r.epoch_time > 0]
        total_time = sum(r.epoch_time for r in measured)
        if total_time <= 0:
            return float("nan")
        total_users = sum(r.users_per_second * r.epoch_time for r in measured)
        return total_users / total_time

    def series(self, key: str) -> list[float]:
        """Column view over epochs: ``loss``, ``kl``, ``cumulative_time``, …"""
        return [getattr(r, key) for r in self.epochs]


class Trainer:
    """Runs Algorithm 1: shuffled mini-batches, noisy gradients, Adam updates.

    Parameters
    ----------
    model:
        Object with ``loss_on_batch``, ``parameters()``, ``train()``/``eval()``.
    lr:
        Learning rate.
    optimizer:
        ``"adam"`` (default) or ``"sgd"``.
    weight_decay:
        L2 penalty applied inside the optimizer.
    """

    def __init__(self, model, lr: float = 1e-3, optimizer: str = "adam",
                 weight_decay: float = 0.0, lr_schedule=None,
                 clip_norm: float | None = None) -> None:
        self.model = model
        self.base_lr = lr
        self.lr_schedule = lr_schedule
        self.clip_norm = clip_norm
        if optimizer == "adam":
            self.optimizer: Optimizer = Adam(model.parameters(), lr=lr,
                                             weight_decay=weight_decay)
        elif optimizer == "sgd":
            self.optimizer = SGD(model.parameters(), lr=lr, weight_decay=weight_decay)
        else:
            raise ValueError(f"unknown optimizer '{optimizer}'; use 'adam' or 'sgd'")

    def fit(self, dataset: MultiFieldDataset, epochs: int = 10,
            batch_size: int = 512,
            rng: np.random.Generator | int | None = 0,
            eval_fn: Callable[[], dict[str, float]] | None = None,
            eval_every: int = 1,
            early_stopping_metric: str | None = None,
            patience: int = 3,
            max_seconds: float | None = None,
            callbacks: Sequence | None = None,
            verbose: bool = False) -> TrainHistory:
        """Train for up to ``epochs`` epochs (or until ``max_seconds`` elapse).

        ``eval_fn`` is called every ``eval_every`` epochs (training mode is
        restored afterwards); when ``early_stopping_metric`` names one of its
        keys, training stops after ``patience`` epochs without improvement.
        The ``max_seconds`` budget is checked after every batch, so long
        epochs stop promptly; a cut-short epoch is still recorded (with
        ``interrupted=True`` and its true ``n_batches``).  ``callbacks`` are
        driven through the :class:`~repro.obs.callbacks.TrainerCallback`
        hooks.
        """
        if epochs <= 0:
            raise ValueError(f"epochs must be positive: {epochs}")
        rng = new_rng(rng)
        callbacks = list(callbacks or ())
        if verbose:
            _attach_verbose_handler()
        history = TrainHistory()
        timer = Timer()
        step = getattr(self.model, "_step", 0)
        best_metric = -np.inf
        since_best = 0

        for cb in callbacks:
            cb.on_train_start(self, dataset)

        budget_exhausted = False
        for epoch in range(epochs):
            self.model.train()
            for cb in callbacks:
                cb.on_epoch_start(self, epoch)
            losses, recons, kls, betas = [], [], [], []
            n_seen = 0
            n_batches = 0
            interrupted = False
            timer.start()
            with obs.span("epoch"):
                batches = dataset.iter_batches(batch_size, shuffle=True, rng=rng)
                while True:
                    with obs.span("batch_iter"):
                        batch = next(batches, _BATCH_DONE)
                    if batch is _BATCH_DONE:
                        break
                    with obs.span("forward"):
                        self.optimizer.zero_grad()
                        loss, diag = self.model.loss_on_batch(batch, step)
                    with obs.span("backward"):
                        loss.backward()
                    if self.clip_norm is not None:
                        with obs.span("clip"):
                            clip_grad_norm(self.optimizer.params, self.clip_norm)
                    with obs.span("optimizer_step"):
                        if self.lr_schedule is not None:
                            self.optimizer.lr = self.base_lr * self.lr_schedule(step)
                        self.optimizer.step()
                    step += 1
                    n_batches += 1
                    n_seen += batch.n_users
                    losses.append(diag.get("loss", loss.item()))
                    recons.append(diag.get("recon", float("nan")))
                    kls.append(diag.get("kl", float("nan")))
                    betas.append(diag.get("beta", float("nan")))
                    obs.count("trainer.batches")
                    obs.count("trainer.users", batch.n_users)
                    for cb in callbacks:
                        cb.on_batch_end(self, epoch, step, losses[-1], diag)
                    if max_seconds is not None and timer.current >= max_seconds:
                        interrupted = True
                        budget_exhausted = True
                        break
            epoch_time = timer.stop()

            record = EpochRecord(
                epoch=epoch,
                loss=float(np.mean(losses)) if losses else float("nan"),
                recon=float(np.mean(recons)) if recons else float("nan"),
                kl=float(np.mean(kls)) if kls else float("nan"),
                beta=betas[-1] if betas else float("nan"),
                epoch_time=epoch_time,
                cumulative_time=timer.elapsed,
                users_per_second=(n_seen / epoch_time
                                  if n_batches > 0 and epoch_time > 0
                                  else float("nan")),
                n_batches=n_batches,
                interrupted=interrupted,
            )

            if eval_fn is not None and (epoch + 1) % eval_every == 0 \
                    and not interrupted:
                was_training = self.model.training
                self.model.eval()
                record.eval_metrics = dict(eval_fn())
                if was_training:
                    self.model.train()

            history.epochs.append(record)
            for cb in callbacks:
                cb.on_epoch_end(self, record)
            if logger.isEnabledFor(logging.INFO):
                extra = " ".join(f"{k}={v:.4f}" for k, v in record.eval_metrics.items())
                flag = " (interrupted)" if interrupted else ""
                logger.info("[epoch %d] loss=%.4f kl=%.4f time=%.2fs %s%s",
                            epoch, record.loss, record.kl,
                            record.cumulative_time, extra, flag)

            if budget_exhausted:
                break
            if early_stopping_metric and record.eval_metrics:
                current = record.eval_metrics.get(early_stopping_metric)
                if current is None:
                    raise KeyError(f"eval_fn did not report '{early_stopping_metric}'")
                if current > best_metric + 1e-6:
                    best_metric = current
                    since_best = 0
                else:
                    since_best += 1
                    if since_best >= patience:
                        break
            if max_seconds is not None and timer.elapsed >= max_seconds:
                break

        self.model.eval()
        for cb in callbacks:
            cb.on_train_end(self, history)
        return history
