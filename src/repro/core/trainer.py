"""Mini-batch training loop (Algorithm 1) with timing instrumentation.

The trainer is deliberately model-agnostic: anything exposing
``loss_on_batch(batch, step) -> (loss Tensor, diagnostics dict)`` and
``parameters()`` can be trained.  Timing is tracked per epoch and cumulatively
so the speed benchmarks (Table V, Fig 6) read throughput straight from the
training history.

Observability: every batch emits per-stage spans (``batch_iter`` / ``forward``
/ ``backward`` / ``clip`` / ``optimizer_step``) through :mod:`repro.obs` —
free when no telemetry session is installed — and ``fit`` drives an optional
list of callbacks (see :class:`repro.obs.callbacks.TrainerCallback`).
Progress output goes through the ``repro.core.trainer`` logger;
``verbose=True`` attaches a stream handler as a convenience.

Resilience: ``fit`` integrates with :class:`repro.resilience.Checkpointer`.
With ``checkpointer=`` set, an atomic checkpoint (parameters, optimizer
moments, hash tables, RNG states, epoch/batch cursor, partial-epoch
accumulators) is written every ``checkpoint_every`` optimizer steps and at
every epoch boundary; ``resume_from=`` restores one and continues the run
**bit-exactly** — the resumed run draws the same shuffles and the same noise
as the uninterrupted run, so final parameters match to the last bit.
"""

from __future__ import annotations

import logging
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.data.dataset import MultiFieldDataset
from repro.nn.optim import Adam, Optimizer, SGD
from repro.nn.schedules import clip_grad_norm
from repro.obs import runtime as obs
from repro.resilience.checkpoint import (Checkpoint, CheckpointError,
                                         Checkpointer, model_state_arrays,
                                         restore_model_state)
from repro.utils.rng import (capture_rng_tree, get_generator_state, new_rng,
                             restore_rng_tree, set_generator_state)
from repro.utils.timer import Timer

__all__ = ["EpochRecord", "TrainHistory", "Trainer"]

logger = logging.getLogger(__name__)


def _attach_verbose_handler() -> None:
    """Attach a plain stream handler for ``verbose=True`` runs (idempotent)."""
    if not any(getattr(h, "_repro_verbose", False) for h in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter("%(message)s"))
        handler._repro_verbose = True
        logger.addHandler(handler)
    if logger.getEffectiveLevel() > logging.INFO:
        logger.setLevel(logging.INFO)


@dataclass
class EpochRecord:
    """Summary of one training epoch."""

    epoch: int
    loss: float
    recon: float
    kl: float
    beta: float
    epoch_time: float
    cumulative_time: float
    users_per_second: float
    eval_metrics: dict[str, float] = field(default_factory=dict)
    n_batches: int = 0
    interrupted: bool = False  # epoch cut short by the max_seconds budget


@dataclass
class TrainHistory:
    """Sequence of epoch records plus run-level aggregates."""

    epochs: list[EpochRecord] = field(default_factory=list)

    @property
    def total_time(self) -> float:
        return self.epochs[-1].cumulative_time if self.epochs else 0.0

    @property
    def final_loss(self) -> float:
        return self.epochs[-1].loss if self.epochs else float("nan")

    @property
    def throughput(self) -> float:
        """Mean training throughput in users/second.

        Epochs that saw no batches (empty dataset) carry ``nan`` rates and are
        excluded; with no measurable epoch at all the throughput is ``nan``.
        """
        measured = [r for r in self.epochs
                    if np.isfinite(r.users_per_second) and r.epoch_time > 0]
        total_time = sum(r.epoch_time for r in measured)
        if total_time <= 0:
            return float("nan")
        total_users = sum(r.users_per_second * r.epoch_time for r in measured)
        return total_users / total_time

    def series(self, key: str) -> list[float]:
        """Column view over epochs: ``loss``, ``kl``, ``cumulative_time``, …"""
        return [getattr(r, key) for r in self.epochs]


@dataclass
class _EpochProgress:
    """Mutable within-epoch accumulators (checkpointed mid-epoch)."""

    losses: list[float] = field(default_factory=list)
    recons: list[float] = field(default_factory=list)
    kls: list[float] = field(default_factory=list)
    betas: list[float] = field(default_factory=list)
    n_seen: int = 0


class Trainer:
    """Runs Algorithm 1: shuffled mini-batches, noisy gradients, Adam updates.

    Parameters
    ----------
    model:
        Object with ``loss_on_batch``, ``parameters()``, ``train()``/``eval()``.
    lr:
        Learning rate.
    optimizer:
        ``"adam"`` (default) or ``"sgd"``.
    weight_decay:
        L2 penalty applied inside the optimizer.
    """

    def __init__(self, model, lr: float = 1e-3, optimizer: str = "adam",
                 weight_decay: float = 0.0, lr_schedule=None,
                 clip_norm: float | None = None,
                 precision: str | None = None) -> None:
        self.model = model
        if precision is not None:
            # Cast before the optimizer is built so Adam's lazily-allocated
            # moments adopt the parameter dtype (see Module.astype).
            model.astype(np.dtype(precision))
        self.base_lr = lr
        self.lr_schedule = lr_schedule
        self.clip_norm = clip_norm
        self.capturer = None  # set by fit(capture=True); exposes stats()
        if optimizer == "adam":
            self.optimizer: Optimizer = Adam(model.parameters(), lr=lr,
                                             weight_decay=weight_decay)
        elif optimizer == "sgd":
            self.optimizer = SGD(model.parameters(), lr=lr, weight_decay=weight_decay)
        else:
            raise ValueError(f"unknown optimizer '{optimizer}'; use 'adam' or 'sgd'")

    def fit(self, dataset: MultiFieldDataset, epochs: int = 10,
            batch_size: int = 512,
            rng: np.random.Generator | int | None = 0,
            eval_fn: Callable[[], dict[str, float]] | None = None,
            eval_every: int = 1,
            early_stopping_metric: str | None = None,
            patience: int = 3,
            max_seconds: float | None = None,
            callbacks: Sequence | None = None,
            verbose: bool = False,
            checkpointer: Checkpointer | str | Path | None = None,
            checkpoint_every: int = 0,
            resume_from: Checkpoint | Checkpointer | str | Path | bool | None = None,
            loader=None,
            capture: bool = False,
            ) -> TrainHistory:
        """Train for up to ``epochs`` epochs (or until ``max_seconds`` elapse).

        ``eval_fn`` is called every ``eval_every`` epochs (training mode is
        restored afterwards); when ``early_stopping_metric`` names one of its
        keys, training stops after ``patience`` epochs without improvement.
        The ``max_seconds`` budget is checked after every batch, so long
        epochs stop promptly; a cut-short epoch is still recorded (with
        ``interrupted=True`` and its true ``n_batches``).  ``callbacks`` are
        driven through the :class:`~repro.obs.callbacks.TrainerCallback`
        hooks.

        Crash safety: pass ``checkpointer=`` (a
        :class:`~repro.resilience.Checkpointer` or a directory path) to
        snapshot the full training state every ``checkpoint_every`` optimizer
        steps (``0`` → epoch boundaries only).  ``resume_from`` accepts a
        checkpoint file, a checkpoint directory, a loaded
        :class:`~repro.resilience.Checkpoint`, or ``True`` (= latest from
        ``checkpointer``; starts fresh when none exists yet) and continues
        the interrupted run bit-deterministically — including mid-epoch, via
        the saved shuffle order and batch cursor.

        ``loader`` injects a batch pipeline (see
        :class:`~repro.perf.pipeline.BatchLoader`); ``None`` uses the
        synchronous in-loop batcher.  Loaders receive the already-shuffled
        epoch order and touch no RNG, so training history, RNG draws, and
        checkpoint/resume equality are bit-identical across loaders.

        ``capture=True`` routes each step through a
        :class:`~repro.nn.graph.StepCapturer`: the first step of each batch
        signature is traced onto a static tape, later steps replay it with
        preallocated workspaces, and any structural divergence (ragged last
        batch, mid-fit shape change) falls back to the dynamic path
        bit-exactly.  In float64 a captured run is bit-identical to a
        dynamic one (guarded by the ``nn.graph.replay_vs_dynamic`` oracle).
        """
        if epochs <= 0:
            raise ValueError(f"epochs must be positive: {epochs}")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive: {batch_size}")
        if checkpoint_every < 0:
            raise ValueError(f"checkpoint_every must be >= 0: {checkpoint_every}")
        rng = new_rng(rng)
        callbacks = list(callbacks or ())
        if verbose:
            _attach_verbose_handler()
        if isinstance(checkpointer, (str, Path)):
            checkpointer = Checkpointer(checkpointer)
        if loader is None:
            from repro.perf.pipeline import SyncLoader

            loader = SyncLoader()
        capturer = None
        if capture:
            from repro.nn.graph import StepCapturer

            capturer = StepCapturer(self.model)
        self.capturer = capturer
        history = TrainHistory()
        timer = Timer()
        step = getattr(self.model, "_step", 0)
        best_metric = -np.inf
        since_best = 0
        base_elapsed = 0.0
        start_epoch = 0
        resume_cursor = 0
        resume_order: np.ndarray | None = None
        resume_progress: _EpochProgress | None = None

        checkpoint = self._resolve_resume(resume_from, checkpointer)
        if checkpoint is not None:
            (step, start_epoch, resume_cursor, resume_order, resume_progress,
             base_elapsed, best_metric, since_best) = \
                self._restore_checkpoint(checkpoint, rng, history)
            obs.count("checkpoint.resumes")
            logger.info("resumed from %s (epoch %d, batch %d, step %d)",
                        checkpoint.path, start_epoch, resume_cursor, step)
            if start_epoch >= epochs and resume_cursor == 0:
                self.model.eval()
                return history

        for cb in callbacks:
            cb.on_train_start(self, dataset)

        n_users = len(dataset)
        from repro.perf.pipeline import n_batches
        total_batches = n_batches(n_users, batch_size,
                                  getattr(loader, "drop_last", False))

        budget_exhausted = False
        for epoch in range(start_epoch, epochs):
            self.model.train()
            for cb in callbacks:
                cb.on_epoch_start(self, epoch)
            if epoch == start_epoch and resume_cursor > 0 \
                    and resume_order is not None:
                # Mid-epoch resume: replay the interrupted epoch's shuffle
                # order from the saved batch cursor.
                order = resume_order
                first_batch = resume_cursor
                progress = resume_progress or _EpochProgress()
            else:
                order = np.arange(n_users)
                rng.shuffle(order)
                first_batch = 0
                progress = _EpochProgress()
            cursor = first_batch
            interrupted = False
            timer.start()
            with obs.span("epoch"):
                batches = loader.epoch(dataset, order, batch_size, first_batch)
                try:
                    for b in range(first_batch, total_batches):
                        with obs.span("batch_iter"):
                            batch = next(batches)
                        with obs.span("forward"):
                            self.optimizer.zero_grad()
                            if capturer is not None:
                                loss, diag = capturer.forward(batch, step)
                            else:
                                loss, diag = self.model.loss_on_batch(batch, step)
                        with obs.span("backward"):
                            if capturer is not None:
                                capturer.backward(loss)
                            else:
                                loss.backward()
                        if self.clip_norm is not None:
                            with obs.span("clip"):
                                clip_grad_norm(self.optimizer.params,
                                               self.clip_norm)
                        with obs.span("optimizer_step"):
                            if self.lr_schedule is not None:
                                self.optimizer.lr = \
                                    self.base_lr * self.lr_schedule(step)
                            self.optimizer.step()
                        step += 1
                        cursor = b + 1
                        progress.n_seen += batch.n_users
                        progress.losses.append(diag.get("loss", loss.item()))
                        progress.recons.append(diag.get("recon", float("nan")))
                        progress.kls.append(diag.get("kl", float("nan")))
                        progress.betas.append(diag.get("beta", float("nan")))
                        obs.count("trainer.batches")
                        obs.count("trainer.users", batch.n_users)
                        if checkpointer is not None and checkpoint_every \
                                and step % checkpoint_every == 0:
                            self._save_checkpoint(
                                checkpointer, rng, history, step=step,
                                epoch=epoch, cursor=cursor, order=order,
                                progress=progress,
                                elapsed=base_elapsed + timer.current,
                                best_metric=best_metric,
                                since_best=since_best)
                        for cb in callbacks:
                            cb.on_batch_end(self, epoch, step,
                                            progress.losses[-1], diag)
                        if max_seconds is not None \
                                and timer.current >= max_seconds:
                            interrupted = True
                            budget_exhausted = True
                            break
                finally:
                    # Retire the loader (stops a prefetch worker mid-epoch on
                    # budget break / early exit; no-op for plain generators).
                    close = getattr(batches, "close", None)
                    if close is not None:
                        close()
            epoch_time = timer.stop()

            if interrupted and checkpointer is not None:
                # Snapshot the in-progress epoch so a later run can resume it
                # from this exact batch.  (Saved before the partial record is
                # appended: the checkpointed history only holds full epochs.)
                self._save_checkpoint(
                    checkpointer, rng, history, step=step, epoch=epoch,
                    cursor=cursor, order=order, progress=progress,
                    elapsed=base_elapsed + timer.elapsed,
                    best_metric=best_metric, since_best=since_best)

            losses = progress.losses
            record = EpochRecord(
                epoch=epoch,
                loss=float(np.mean(losses)) if losses else float("nan"),
                recon=float(np.mean(progress.recons)) if losses else float("nan"),
                kl=float(np.mean(progress.kls)) if losses else float("nan"),
                beta=progress.betas[-1] if losses else float("nan"),
                epoch_time=epoch_time,
                cumulative_time=base_elapsed + timer.elapsed,
                users_per_second=(progress.n_seen / epoch_time
                                  if losses and epoch_time > 0
                                  else float("nan")),
                n_batches=len(losses),
                interrupted=interrupted,
            )

            if eval_fn is not None and (epoch + 1) % eval_every == 0 \
                    and not interrupted:
                was_training = self.model.training
                self.model.eval()
                record.eval_metrics = dict(eval_fn())
                if was_training:
                    self.model.train()

            history.epochs.append(record)
            for cb in callbacks:
                cb.on_epoch_end(self, record)
            if logger.isEnabledFor(logging.INFO):
                extra = " ".join(f"{k}={v:.4f}" for k, v in record.eval_metrics.items())
                flag = " (interrupted)" if interrupted else ""
                logger.info("[epoch %d] loss=%.4f kl=%.4f time=%.2fs %s%s",
                            epoch, record.loss, record.kl,
                            record.cumulative_time, extra, flag)

            if budget_exhausted:
                break
            if early_stopping_metric and record.eval_metrics:
                current = record.eval_metrics.get(early_stopping_metric)
                if current is None:
                    raise KeyError(f"eval_fn did not report '{early_stopping_metric}'")
                if current > best_metric + 1e-6:
                    best_metric = current
                    since_best = 0
                else:
                    since_best += 1
                    if since_best >= patience:
                        if checkpointer is not None:
                            self._save_checkpoint(
                                checkpointer, rng, history, step=step,
                                epoch=epoch + 1, cursor=0, order=None,
                                progress=None,
                                elapsed=base_elapsed + timer.elapsed,
                                best_metric=best_metric, since_best=since_best)
                        break
            if checkpointer is not None:
                self._save_checkpoint(
                    checkpointer, rng, history, step=step, epoch=epoch + 1,
                    cursor=0, order=None, progress=None,
                    elapsed=base_elapsed + timer.elapsed,
                    best_metric=best_metric, since_best=since_best)
            if max_seconds is not None and timer.elapsed >= max_seconds:
                break

        self.model.eval()
        for cb in callbacks:
            cb.on_train_end(self, history)
        return history

    # -- checkpoint plumbing ---------------------------------------------------

    @staticmethod
    def _resolve_resume(resume_from, checkpointer: Checkpointer | None,
                        ) -> Checkpoint | None:
        """Turn the many accepted ``resume_from`` forms into a Checkpoint."""
        if resume_from is None or resume_from is False:
            return None
        if isinstance(resume_from, Checkpoint):
            return resume_from
        if resume_from is True:
            if checkpointer is None:
                raise ValueError(
                    "resume_from=True requires a checkpointer to resume from")
            return checkpointer.latest()  # None on a cold start: begin fresh
        if isinstance(resume_from, Checkpointer):
            checkpoint = resume_from.latest()
            if checkpoint is None:
                raise CheckpointError(
                    f"no valid checkpoint under {resume_from.directory}")
            return checkpoint
        path = Path(resume_from)
        if path.is_dir():
            checkpoint = Checkpointer(path).latest()
            if checkpoint is None:
                raise CheckpointError(f"no valid checkpoint under {path}")
            return checkpoint
        return Checkpointer(path.parent).load(path)

    def _save_checkpoint(self, checkpointer: Checkpointer,
                         rng: np.random.Generator, history: TrainHistory, *,
                         step: int, epoch: int, cursor: int,
                         order: np.ndarray | None,
                         progress: _EpochProgress | None, elapsed: float,
                         best_metric: float, since_best: int) -> Path:
        arrays = model_state_arrays(self.model)
        for key, value in self.optimizer.state_arrays().items():
            arrays[f"opt/{key}"] = value
        if cursor > 0 and order is not None and progress is not None:
            arrays["epoch_order"] = np.asarray(order, dtype=np.int64)
            arrays["partial/losses"] = np.asarray(progress.losses)
            arrays["partial/recons"] = np.asarray(progress.recons)
            arrays["partial/kls"] = np.asarray(progress.kls)
            arrays["partial/betas"] = np.asarray(progress.betas)
        meta = {
            "step": int(step),
            "epoch": int(epoch),
            "cursor": int(cursor),
            "n_seen": int(progress.n_seen) if progress is not None else 0,
            "elapsed": float(elapsed),
            "model_step": int(getattr(self.model, "_step", step)),
            "best_metric": float(best_metric),
            "since_best": int(since_best),
            "optimizer": type(self.optimizer).__name__,
            "history": [asdict(record) for record in history.epochs],
            "rng": {"trainer": get_generator_state(rng),
                    "model": capture_rng_tree(self.model)},
        }
        return checkpointer.save(arrays, meta, step=step)

    def _restore_checkpoint(self, checkpoint: Checkpoint,
                            rng: np.random.Generator, history: TrainHistory):
        meta, arrays = checkpoint.meta, checkpoint.arrays
        saved_opt = meta.get("optimizer")
        if saved_opt and saved_opt != type(self.optimizer).__name__:
            raise CheckpointError(
                f"checkpoint was taken with {saved_opt}, but this trainer "
                f"uses {type(self.optimizer).__name__}")
        restore_model_state(self.model, arrays)
        self.optimizer.load_state_arrays(
            {name[len("opt/"):]: arr for name, arr in arrays.items()
             if name.startswith("opt/")})
        step = int(meta["step"])
        if hasattr(self.model, "_step"):
            self.model._step = int(meta.get("model_step", step))
        rng_states = meta.get("rng", {})
        if "trainer" in rng_states:
            set_generator_state(rng, rng_states["trainer"])
        restore_rng_tree(self.model, rng_states.get("model", {}))
        history.epochs = [EpochRecord(**record)
                          for record in meta.get("history", [])]
        cursor = int(meta.get("cursor", 0))
        order = arrays.get("epoch_order")
        progress = None
        if cursor > 0 and order is not None:
            progress = _EpochProgress(
                losses=arrays["partial/losses"].tolist(),
                recons=arrays["partial/recons"].tolist(),
                kls=arrays["partial/kls"].tolist(),
                betas=arrays["partial/betas"].tolist(),
                n_seen=int(meta.get("n_seen", 0)))
        return (step, int(meta.get("epoch", 0)), cursor, order, progress,
                float(meta.get("elapsed", 0.0)),
                float(meta.get("best_metric", -np.inf)),
                int(meta.get("since_best", 0)))
