"""The paper's core contribution: the Field-aware VAE and its training loop."""

from repro.core.annealing import BetaSchedule, ConstantBeta, LinearAnnealing
from repro.core.config import FVAEConfig
from repro.core.decoder import FieldAwareDecoder, FieldOutputHead
from repro.core.encoder import FieldAwareEncoder, HashedEmbeddingBag
from repro.core.fvae import FVAE
from repro.core.serialization import load_fvae, save_fvae
from repro.core.trainer import EpochRecord, Trainer, TrainHistory

__all__ = [
    "FVAE", "FVAEConfig",
    "FieldAwareEncoder", "FieldAwareDecoder", "HashedEmbeddingBag", "FieldOutputHead",
    "Trainer", "TrainHistory", "EpochRecord",
    "save_fvae", "load_fvae",
    "BetaSchedule", "ConstantBeta", "LinearAnnealing",
]
