"""The Field-aware Variational Autoencoder (FVAE) — the paper's contribution.

The FVAE models each feature field with an *independent multinomial
distribution* (Eq. 1–2): the encoder aggregates all fields into one latent
Gaussian ``z``, and the decoder shares an MLP trunk whose output feeds one
softmax head per field.  The ELBO (Eq. 7) weighs per-field reconstruction
terms with ``α_k`` and the KL term with an annealed ``β``.

Training-time efficiency comes from three mechanisms (§IV-C), all of which
are first-class here:

1. dynamic hash tables index embedding/output rows by raw feature id;
2. the batched softmax restricts each step's softmax to the features observed
   in the batch;
3. feature sampling thins that candidate set further for super-sparse fields.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import UserRepresentationModel
from repro.core.annealing import BetaSchedule, LinearAnnealing
from repro.core.config import FVAEConfig
from repro.core.decoder import FieldAwareDecoder
from repro.core.encoder import FieldAwareEncoder
from repro.data.dataset import MultiFieldDataset, UserBatch
from repro.data.fields import FieldSchema
from repro.nn import gaussian_kl
from repro.nn.layers import Dropout, Module
from repro.nn.tensor import Tensor, is_inference, no_grad
from repro.sampling import get_sampler, select_candidates
from repro.utils.rng import new_rng

__all__ = ["FVAE"]


class FVAE(Module, UserRepresentationModel):
    """Field-aware VAE over a :class:`~repro.data.fields.FieldSchema`.

    Parameters
    ----------
    schema:
        The fields the model consumes and reconstructs.
    config:
        Hyper-parameters; see :class:`~repro.core.config.FVAEConfig`.
    """

    name = "FVAE"

    def __init__(self, schema: FieldSchema, config: FVAEConfig | None = None) -> None:
        super().__init__()
        self.schema = schema
        self.config = config or FVAEConfig()
        cfg = self.config
        rng = new_rng(cfg.seed)

        self.encoder = FieldAwareEncoder(
            schema, cfg.encoder_hidden, cfg.latent_dim,
            activation=cfg.activation, input_weighting=cfg.input_weighting,
            capacity=cfg.embedding_capacity, dropout=cfg.input_dropout,
            feature_dropout=cfg.feature_dropout, rng=rng)
        tables = {spec.name: self.encoder.bag(spec.name).table for spec in schema}
        self.decoder = FieldAwareDecoder(
            schema, cfg.latent_dim, cfg.decoder_hidden, tables,
            activation=cfg.activation, capacity=cfg.embedding_capacity, rng=rng)

        alphas = dict(schema.alphas())
        if cfg.alpha:
            alphas.update(cfg.alpha)
        unknown = set(cfg.alpha or ()) - set(schema.names)
        if unknown:
            raise ValueError(f"alpha given for unknown fields: {sorted(unknown)}")
        self._alphas = {name: float(alphas[name]) for name in schema.names}
        alpha_norm = sum(abs(a) for a in self._alphas.values())
        if alpha_norm <= 0:
            raise ValueError("at least one field must have a positive alpha")
        self._alpha_norm = alpha_norm

        self.beta_schedule: BetaSchedule = LinearAnnealing(cfg.beta, cfg.anneal_steps)
        self._sampler = get_sampler(cfg.sampler)
        self._rng = new_rng(cfg.seed + 1 if isinstance(cfg.seed, int) else cfg.seed)
        self._step = 0

    # -- training --------------------------------------------------------------

    def capture_rng_sources(self) -> list:
        """RNG streams a replay fallback must rewind (see ``nn.graph``).

        Everything drawn *inside* a training step: reparameterisation noise
        and candidate sampling (``self._rng``), feature corruption
        (``encoder._feature_rng``), and hidden-layer dropout masks.
        """
        sources = [self._rng, self.encoder._feature_rng]
        for module in self.modules():
            rng = getattr(module, "_rng", None)
            if rng is not None and isinstance(module, Dropout):
                sources.append(rng)
        return sources

    def reparameterize(self, mu: Tensor, logvar: Tensor, sample: bool,
                       noise: np.ndarray | None = None) -> Tensor:
        """``z = μ + σ·ε`` with ``ε ~ N(0, I)`` (the reparametrisation trick).

        ``noise`` injects a pre-drawn ``ε`` instead of consuming ``self._rng``
        — the sharded trainer draws the noise driver-side (in reference
        order) and ships each worker its slice, so worker processes touch no
        RNG at all.
        """
        if not sample:
            return mu
        if noise is None:
            # float64 draw regardless of model dtype: the noise stream (and
            # its consumption order) is part of the run's determinism
            # contract.
            noise = self._rng.standard_normal(mu.shape)
        eps = noise.astype(mu.data.dtype, copy=False)
        return mu + (logvar * 0.5).exp() * Tensor(eps)

    def _field_candidates(self, batch: UserBatch) -> dict[str, np.ndarray]:
        """Candidate feature ids per field (batched softmax + feature sampling)."""
        out: dict[str, np.ndarray] = {}
        cfg = self.config
        for spec in self.schema:
            fb = batch.fields.get(spec.name)
            if fb is None or fb.indices.size == 0:
                continue
            if not cfg.batched_softmax:
                # ablation: softmax over every feature known so far
                ids, __ = self.encoder.bag(spec.name).feature_rows()
                out[spec.name] = np.sort(ids)
                continue
            rate = cfg.sampling_rate if (spec.sample and self.training) else 1.0
            out[spec.name] = select_candidates(fb, rate, self._sampler, self._rng,
                                               field=spec.name)
        return out

    def elbo_components(self, batch: UserBatch, beta: float | None = None, *,
                        candidates: dict[str, np.ndarray] | None = None,
                        noise: np.ndarray | None = None,
                        recon_scale: float | None = None,
                        kl_weight: float = 1.0,
                        ) -> tuple[Tensor, dict[str, float]]:
        """Negative ELBO (Eq. 7) for one batch, plus scalar diagnostics.

        The encoder forward pass inserts any new feature ids into the dynamic
        hash tables (training mode), so the decoder candidate lookup below is
        guaranteed to find a row for every batch feature.

        The keyword-only hooks exist for the sharded data-parallel trainer,
        which computes this loss on a *slice* of a global batch: it injects
        the driver-drawn ``candidates`` and ``noise`` (so workers consume no
        RNG), scales reconstruction by the *global* batch size via
        ``recon_scale``, and weighs the (batch-mean) KL by the slice's share
        of the global batch via ``kl_weight``.  With all four left at their
        defaults the computation is bit-identical to the original
        single-process loss.
        """
        if beta is None:
            beta = self.beta_schedule(self._step)
        mu, logvar = self.encoder(batch)
        z = self.reparameterize(mu, logvar, sample=self.training, noise=noise)
        trunk = self.decoder.trunk(z)

        scale = 1.0 / batch.n_users if recon_scale is None else recon_scale
        if candidates is None:
            candidates = self._field_candidates(batch)
        recon_terms: list[tuple[float, Tensor]] = []
        diagnostics: dict[str, float] = {}
        for field, cand in candidates.items():
            table = self.encoder.bag(field).table
            rows = table.rows_for_ids(cand)
            known = rows >= 0
            if not known.all():      # eval on unseen ids: score only known ones
                cand, rows = cand[known], rows[known]
            if cand.size == 0:
                continue
            targets = batch.fields[field].dense_targets(cand)
            if self.config.binarize_targets:
                targets = (targets > 0).astype(np.float64)
            nll = self.decoder.recon_nll(trunk, field, rows, targets,
                                         scale=scale,
                                         fused=self.config.fused)
            recon_terms.append((self._alphas[field], nll))
            diagnostics[f"nll_{field}"] = nll.item()
            diagnostics[f"candidates_{field}"] = float(cand.size)

        if recon_terms:
            recon = recon_terms[0][1] * (recon_terms[0][0] / self._alpha_norm)
            for alpha, nll in recon_terms[1:]:
                recon = recon + nll * (alpha / self._alpha_norm)
        else:
            recon = mu.sum() * 0.0  # keeps the graph alive for degenerate batches
        kl = gaussian_kl(mu, logvar)
        # beta * 1.0 is bit-exact, so the default weight changes nothing.
        loss = recon + kl * (beta * kl_weight)
        diagnostics.update(recon=recon.item(), kl=kl.item(), beta=beta, loss=loss.item())
        return loss, diagnostics

    def loss_on_batch(self, batch: UserBatch, step: int | None = None,
                      ) -> tuple[Tensor, dict[str, float]]:
        """Trainer hook: advance the annealing step and compute the loss."""
        if step is not None:
            self._step = step
        loss, diag = self.elbo_components(batch)
        self._step += 1
        return loss, diag

    # -- UserRepresentationModel interface ------------------------------------

    def initialize_from_dataset(self, dataset: MultiFieldDataset) -> "FVAE":
        """Register every observed feature and set output biases to log-counts.

        Initialising each head's bias at the feature's log-popularity makes
        the batched softmax start from the marginal feature distribution —
        the same log-prior initialisation classic sampled-softmax systems use.
        Without it, rarely-sampled features would need many epochs just to
        learn the popularity baseline.
        """
        for spec in self.schema:
            counts = dataset.feature_popularity(spec.name)
            observed = np.flatnonzero(counts)
            if observed.size == 0:
                continue
            bag = self.encoder.bag(spec.name)
            rows = bag.lookup(observed, grow=True)
            head = self.decoder.head(spec.name)
            head.ensure_capacity(int(rows.max()) + 1)
            head.bias.data[rows] = np.log(counts[observed] / counts.sum())
        return self

    def fit(self, dataset: MultiFieldDataset, epochs: int = 10,
            batch_size: int = 512, lr: float = 1e-3, verbose: bool = False,
            warm_start_bias: bool = True, **trainer_kwargs) -> "FVAE":
        """Train with the standard :class:`~repro.core.trainer.Trainer` loop."""
        from repro.core.trainer import Trainer

        if warm_start_bias:
            self.initialize_from_dataset(dataset)
        # `precision` must reach the Trainer constructor (the cast has to
        # precede optimizer construction); everything else goes to fit().
        trainer = Trainer(self, lr=lr,
                          precision=trainer_kwargs.pop("precision", None))
        self.history = trainer.fit(dataset, epochs=epochs, batch_size=batch_size,
                                   verbose=verbose, **trainer_kwargs)
        return self

    def encode_batch(self, batch: UserBatch,
                     inference: bool | None = None,
                     ) -> tuple[np.ndarray, np.ndarray]:
        """Posterior ``(mu, logvar)`` arrays for one batch (eval semantics).

        ``inference=True`` takes the raw-array fast path
        (:meth:`FieldAwareEncoder.forward_arrays`) — no autograd Tensors, no
        backward closures — which is bit-identical to the eval Tensor forward
        (guarded by the ``core.encoder.inference_vs_autograd`` oracle).
        ``inference=False`` forces the Tensor reference path; the default
        ``None`` defers to :func:`repro.nn.is_inference`.
        """
        was_training = self.training
        self.eval()
        try:
            if inference is None:
                inference = is_inference()
            if inference:
                return self.encoder.forward_arrays(batch)
            with no_grad():
                mu, logvar = self.encoder(batch)
            return mu.data, logvar.data
        finally:
            if was_training:
                self.train()

    def embed_users(self, dataset: MultiFieldDataset,
                    batch_size: int = 2048) -> np.ndarray:
        """Posterior means ``μ(u_i)`` for every user — the user representation."""
        self.eval()
        out = np.empty((dataset.n_users, self.config.latent_dim))
        for start in range(0, dataset.n_users, batch_size):
            idx = np.arange(start, min(start + batch_size, dataset.n_users))
            mu, __ = self.encode_batch(dataset.batch(idx), inference=True)
            out[idx] = mu
        return out

    def embed_users_with_uncertainty(self, dataset: MultiFieldDataset,
                                     batch_size: int = 2048,
                                     ) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(μ, σ)`` — position and uncertainty of each user (§III)."""
        self.eval()
        mu_out = np.empty((dataset.n_users, self.config.latent_dim))
        sigma_out = np.empty_like(mu_out)
        for start in range(0, dataset.n_users, batch_size):
            idx = np.arange(start, min(start + batch_size, dataset.n_users))
            mu, logvar = self.encode_batch(dataset.batch(idx), inference=True)
            mu_out[idx] = mu
            sigma_out[idx] = np.exp(0.5 * logvar)
        return mu_out, sigma_out

    def score_field(self, dataset: MultiFieldDataset, field: str,
                    batch_size: int = 2048) -> np.ndarray:
        """Dense log-probability scores over the full vocabulary of ``field``.

        Features the model has never seen score a large negative constant
        (they cannot be ranked above any known feature).
        """
        spec = self.schema[field]
        z = self.embed_users(dataset, batch_size=batch_size)
        ids, __, logits = self.decoder.full_scores(z, field)
        scores = np.full((dataset.n_users, spec.vocab_size), -1e9)
        if ids.size:
            scores[:, ids] = logits
        return scores
