"""Field-aware encoder with dynamic-hash-table embeddings (§IV-A, §IV-C1).

The first encoder layer is where the paper's input-side complexity reduction
happens: instead of a dense ``J × D`` weight matrix, every field owns a
:class:`~repro.hashing.DynamicHashTable` mapping raw feature ids to rows of a
grow-able embedding matrix.  A user's first-layer activation is the weighted
sum of the embedding rows of their observed features — ``O(N̄·D)`` work and,
because the gradient is row-sparse, an ``O(N̄·D)`` optimizer step as well.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import FieldBatch, UserBatch
from repro.data.fields import FieldSchema
from repro.hashing import DynamicHashTable
from repro.nn import functional as F
from repro.nn.layers import Dropout, Linear, Module
from repro.nn.tensor import Parameter, Tensor, stable_sigmoid
from repro.obs import runtime as obs
from repro.utils.rng import new_rng

__all__ = ["HashedEmbeddingBag", "FieldAwareEncoder"]

_ACT = {"tanh": F.tanh, "relu": F.relu, "sigmoid": F.sigmoid}

#: Raw-array activations for the inference fast path.  Each entry computes
#: exactly what the matching Tensor op computes on ``.data`` so the two
#: forwards stay bit-identical — but applied *in place* where the ufunc
#: allows it, so callers must own the buffer they pass in (the inference
#: forward only ever passes freshly computed intermediates).
_ACT_DATA = {"tanh": lambda x: np.tanh(x, out=x),
             "relu": lambda x: np.multiply(x, x > 0, out=x),
             "sigmoid": stable_sigmoid}


class HashedEmbeddingBag(Module):
    """Grow-able embedding bag keyed by a dynamic hash table.

    ``forward`` maps a :class:`FieldBatch` to the per-user sum of embedding
    rows.  Feature ids never seen before are inserted into the table (and the
    embedding matrix grown) while the module is in training mode; in eval
    mode unknown ids are dropped, which is the serving-time behaviour.
    """

    def __init__(self, dim: int, capacity: int = 1024, init_std: float = 0.01,
                 rng: np.random.Generator | int | None = None,
                 name: str | None = None) -> None:
        super().__init__()
        self.dim = dim
        self.init_std = init_std
        self._rng = new_rng(rng)
        self.table = DynamicHashTable(name=name)
        self.weight = Parameter(self._rng.normal(0.0, init_std, size=(capacity, dim)),
                                name="weight", sparse=True)

    @property
    def capacity(self) -> int:
        return self.weight.data.shape[0]

    @property
    def n_features(self) -> int:
        """Distinct feature ids seen so far."""
        return self.table.size

    def _ensure_capacity(self, needed: int) -> None:
        if needed <= self.capacity:
            return
        new_capacity = max(needed, 2 * self.capacity)
        grown = np.empty((new_capacity, self.dim), dtype=self.weight.data.dtype)
        grown[: self.capacity] = self.weight.data
        grown[self.capacity:] = self._rng.normal(
            0.0, self.init_std, size=(new_capacity - self.capacity, self.dim))
        self.weight.data = grown

    def lookup(self, feature_ids: np.ndarray, grow: bool) -> np.ndarray:
        """Map raw feature ids to embedding rows; unknown ids are -1 unless growing."""
        if grow and not self.table.frozen:
            rows = self.table.lookup_ids(feature_ids)
            self._ensure_capacity(self.table.size)
        else:
            rows = self.table.rows_for_ids(feature_ids)
        return rows

    def forward(self, batch_field: FieldBatch,
                per_index_weights: np.ndarray | None = None) -> Tensor:
        """Per-user weighted sum of embedding rows, shape ``(B, dim)``."""
        rows = self.lookup(batch_field.indices, grow=self.training)
        known = rows >= 0
        if known.all():
            return F.embedding_bag(self.weight, rows, batch_field.offsets,
                                   per_index_weights,
                                   segment=batch_field.segment_ids())
        # Drop unknown ids and recompute the bag offsets.
        user_of = batch_field.segment_ids()
        rows = rows[known]
        user_of = user_of[known]
        new_counts = np.bincount(user_of, minlength=batch_field.n_users)
        offsets = np.zeros(batch_field.n_users + 1, dtype=np.int64)
        np.cumsum(new_counts, out=offsets[1:])
        weights = None if per_index_weights is None else per_index_weights[known]
        return F.embedding_bag(self.weight, rows, offsets, weights,
                               segment=user_of)

    def forward_arrays(self, batch_field: FieldBatch,
                       per_index_weights: np.ndarray | None = None,
                       ) -> np.ndarray:
        """Inference-mode forward: plain arrays, no Tensor or closure.

        Eval semantics — the table never grows and unknown ids are dropped.
        Shares :func:`repro.nn.functional.embedding_bag_data` with the
        autograd forward, so the two are bit-identical by construction.
        """
        rows = self.lookup(batch_field.indices, grow=False)
        known = rows >= 0
        if known.all():
            out, __ = F.embedding_bag_data(self.weight.data, rows,
                                           batch_field.offsets,
                                           per_index_weights,
                                           segment=batch_field.segment_ids())
            return out
        user_of = batch_field.segment_ids()
        rows = rows[known]
        user_of = user_of[known]
        new_counts = np.bincount(user_of, minlength=batch_field.n_users)
        offsets = np.zeros(batch_field.n_users + 1, dtype=np.int64)
        np.cumsum(new_counts, out=offsets[1:])
        weights = None if per_index_weights is None else per_index_weights[known]
        out, __ = F.embedding_bag_data(self.weight.data, rows, offsets,
                                       weights, segment=user_of)
        return out

    def feature_rows(self) -> tuple[np.ndarray, np.ndarray]:
        """Return parallel arrays ``(feature_ids, rows)`` of the known vocabulary."""
        items = list(self.table.items())
        if not items:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        ids = np.asarray([k for k, __ in items], dtype=np.int64)
        rows = np.asarray([v for __, v in items], dtype=np.int64)
        return ids, rows

    def __repr__(self) -> str:
        return (f"HashedEmbeddingBag(dim={self.dim}, features={self.n_features}, "
                f"capacity={self.capacity})")


def _prepare_weights(batch_field: FieldBatch, mode: str) -> np.ndarray | None:
    """Turn raw multi-hot weights into encoder input weights.

    ``binary``: all ones. ``log1p``: log(1 + w). ``l2``: log1p then per-user
    L2 normalisation within the field (the Mult-VAE convention).
    """
    if mode == "binary":
        return None
    raw = (np.ones(batch_field.indices.size) if batch_field.weights is None
           else batch_field.weights)
    w = np.log1p(raw)
    if mode == "log1p":
        return w
    user_of = batch_field.segment_ids()
    sq_sums = np.bincount(user_of, weights=w ** 2,
                          minlength=batch_field.n_users)
    norms = np.sqrt(sq_sums[user_of])
    return w / np.maximum(norms, 1e-12)


class FieldAwareEncoder(Module):
    """Inference network ``g_φ(u) = [μ(u), σ(u)]`` (Eq. 6).

    The first layer aggregates all fields' embedding bags into one hidden
    vector (per the paper, summing embedding outputs is equivalent to the
    dense first layer); subsequent dense layers produce the posterior mean
    and log-variance.
    """

    def __init__(self, schema: FieldSchema, hidden: list[int], latent_dim: int,
                 activation: str = "tanh", input_weighting: str = "l2",
                 capacity: int = 1024, dropout: float = 0.0,
                 feature_dropout: float = 0.0,
                 rng: np.random.Generator | int | None = None) -> None:
        super().__init__()
        if not hidden:
            raise ValueError("encoder needs at least one hidden layer")
        if activation not in _ACT:
            raise ValueError(f"unknown activation '{activation}'")
        if not 0.0 <= feature_dropout < 1.0:
            raise ValueError(f"feature_dropout must be in [0, 1): {feature_dropout}")
        rng = new_rng(rng)
        self.feature_dropout = feature_dropout
        self._feature_rng = new_rng(rng)
        self.schema = schema
        self.activation = activation
        self.input_weighting = input_weighting
        self.hidden_dims = list(hidden)
        self.latent_dim = latent_dim

        self._bags: dict[str, HashedEmbeddingBag] = {}
        for spec in schema:
            bag = HashedEmbeddingBag(hidden[0], capacity=capacity, rng=rng,
                                     name=spec.name)
            self.register_module(f"bag_{spec.name}", bag)
            self._bags[spec.name] = bag
        self.first_bias = Parameter(np.zeros(hidden[0]), name="first_bias")
        self.dropout = Dropout(dropout, rng=rng) if dropout > 0 else None

        self._dense: list[Linear] = []
        for i, (d_in, d_out) in enumerate(zip(hidden[:-1], hidden[1:])):
            layer = Linear(d_in, d_out, rng=rng)
            self.register_module(f"fc{i}", layer)
            self._dense.append(layer)
        self.mu_head = Linear(hidden[-1], latent_dim, rng=rng)
        self.logvar_head = Linear(hidden[-1], latent_dim, rng=rng)

    def bag(self, field: str) -> HashedEmbeddingBag:
        return self._bags[field]

    def _drop_features(self, fb: FieldBatch, weights: np.ndarray | None,
                       ) -> tuple[FieldBatch, np.ndarray | None]:
        """Denoising corruption: drop observed features, rescale the kept ones.

        This is the sparse-input analogue of Mult-DAE/Mult-VAE's input-layer
        dropout [8]: at fold-in time whole chunks of the profile are missing,
        so training on randomly thinned profiles is what makes the posterior
        robust to partial inputs.
        """
        p = self.feature_dropout
        keep = self._feature_rng.random(fb.indices.size) >= p
        user_of = fb.segment_ids()
        new_counts = np.bincount(user_of[keep], minlength=fb.n_users)
        offsets = np.zeros(fb.n_users + 1, dtype=np.int64)
        np.cumsum(new_counts, out=offsets[1:])
        if weights is not None:
            kept_weights = weights[keep] / (1.0 - p)
        else:  # binary inputs still need the inverted-dropout rescale
            kept_weights = np.full(int(keep.sum()), 1.0 / (1.0 - p))
        new_fb = FieldBatch(indices=fb.indices[keep], offsets=offsets,
                            weights=None if fb.weights is None
                            else fb.weights[keep],
                            vocab_size=fb.vocab_size)
        return new_fb, kept_weights

    def forward(self, batch: UserBatch) -> tuple[Tensor, Tensor]:
        """Return posterior ``(mu, logvar)`` for a batch of users.

        Fields present in the encoder schema but absent from the batch (or
        emptied for fold-in) simply contribute nothing to the first layer.
        """
        act = _ACT[self.activation]
        first: Tensor | None = None
        for name, bag in self._bags.items():
            if name not in batch.fields:
                continue
            fb = batch.fields[name]
            if fb.indices.size == 0:
                continue
            weights = _prepare_weights(fb, self.input_weighting)
            if self.training and self.feature_dropout > 0.0:
                # Register every observed id first: the decoder's candidate
                # set must cover features even when the corruption drops them
                # from this step's encoder input.
                bag.lookup(fb.indices, grow=True)
                fb, weights = self._drop_features(fb, weights)
                if fb.indices.size == 0:
                    continue
            contribution = bag(fb, weights)
            first = contribution if first is None else first + contribution
        if first is None:
            # every field empty: encode from bias alone
            zeros = np.zeros((batch.n_users, self.hidden_dims[0]),
                             dtype=self.first_bias.data.dtype)
            first = Tensor(zeros)
        h = act(first + self.first_bias)
        if self.dropout is not None:
            h = self.dropout(h)
        for layer in self._dense:
            h = act(layer(h))
        return self.mu_head(h), self.logvar_head(h)

    def forward_arrays(self, batch: UserBatch) -> tuple[np.ndarray, np.ndarray]:
        """Inference forward: eval-mode :meth:`forward` on plain arrays.

        Skips autograd Tensor wrapping and backward-closure capture entirely;
        training-only branches (feature corruption, hidden dropout) are
        identity in eval mode and therefore absent.  Bit-identical to the
        eval Tensor forward — guarded by the
        ``core.encoder.inference_vs_autograd`` differential oracle.
        """
        with obs.span("encoder.infer"):
            return self._forward_arrays(batch)

    def _forward_arrays(self,
                        batch: UserBatch) -> tuple[np.ndarray, np.ndarray]:
        act = _ACT_DATA[self.activation]
        first: np.ndarray | None = None
        for name, bag in self._bags.items():
            if name not in batch.fields:
                continue
            fb = batch.fields[name]
            if fb.indices.size == 0:
                continue
            weights = _prepare_weights(fb, self.input_weighting)
            contribution = bag.forward_arrays(fb, weights)
            if first is None:
                first = contribution  # fresh buffer: safe to accumulate into
            else:
                first += contribution
        if first is None:
            first = np.zeros((batch.n_users, self.hidden_dims[0]),
                             dtype=self.first_bias.data.dtype)
        first += self.first_bias.data
        h = act(first)
        for layer in self._dense:
            h = act(layer.forward_arrays(h))
        return (self.mu_head.forward_arrays(h),
                self.logvar_head.forward_arrays(h))
