"""Configuration for the Field-aware VAE."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["FVAEConfig"]


@dataclass
class FVAEConfig:
    """Hyper-parameters of the FVAE (§IV).

    Attributes
    ----------
    latent_dim:
        Dimension ``D`` of the latent user representation ``z``.
    encoder_hidden / decoder_hidden:
        Hidden layer widths of the encoder MLP ``g_φ`` and the shared decoder
        trunk ``f_θ`` (the per-field output layers are separate, Eq. 2).
    activation:
        Nonlinearity of both MLPs.
    alpha:
        Per-field reconstruction weights ``α_k`` (Eq. 7).  ``None`` means all
        ones (the paper's recommended default); missing fields default to 1.
    beta:
        Peak weight of the KL term.  With ``anneal_steps > 0`` the effective
        β is annealed linearly from 0 to this value (the annealing of [8]).
    anneal_steps:
        Number of gradient steps over which β ramps up; 0 disables annealing.
    sampling_rate:
        Feature-sampling rate ``r`` (§IV-C3) applied to fields whose spec has
        ``sample=True``.  ``1.0`` disables sampling (batched softmax only).
    sampler:
        Sampling strategy name: ``uniform`` (paper's choice), ``frequency``
        or ``zipfian`` (Fig 5 comparison).
    input_weighting:
        How multi-hot weights enter the encoder: ``"binary"``, ``"log1p"``
        or ``"l2"`` (log1p then per-field L2 normalisation; default).
    input_dropout:
        Dropout probability on the aggregated first-layer output.
    feature_dropout:
        Denoising corruption on the sparse input: each observed feature is
        dropped with this probability during training (the sparse analogue of
        Mult-VAE's input dropout; crucial for fold-in robustness).
    embedding_capacity:
        Initial row capacity of each dynamic-hash-table embedding; tables
        grow geometrically as new feature ids arrive.
    binarize_targets:
        Reconstruct the multi-hot structure (``F_ij ∈ {0,1}``) instead of raw
        counts.  Following Liang et al. [8], binary targets spread gradient
        evenly over a user's features, which helps long-tail ranking.
    batched_softmax:
        When False the decoder computes the softmax over the *entire* known
        vocabulary each step (ablation; this is what makes Mult-VAE slow).
    fused:
        Use the fused ``sampled_softmax_nll`` kernel for the per-field
        reconstruction term (one forward/backward closure, coalesced
        row-sparse gradients).  ``False`` keeps the unfused reference chain
        — both are bit-identical in loss and gradients.
    seed:
        Seed for parameter init, sampling, and the reparametrisation noise.
    """

    latent_dim: int = 64
    encoder_hidden: list[int] = field(default_factory=lambda: [256])
    decoder_hidden: list[int] = field(default_factory=lambda: [256])
    activation: str = "tanh"
    alpha: dict[str, float] | None = None
    beta: float = 0.2
    anneal_steps: int = 2000
    sampling_rate: float = 1.0
    sampler: str = "uniform"
    input_weighting: str = "l2"
    input_dropout: float = 0.1
    feature_dropout: float = 0.5
    embedding_capacity: int = 1024
    binarize_targets: bool = True
    batched_softmax: bool = True
    fused: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.latent_dim <= 0:
            raise ValueError(f"latent_dim must be positive: {self.latent_dim}")
        if not 0.0 < self.sampling_rate <= 1.0:
            raise ValueError(f"sampling_rate must be in (0, 1]: {self.sampling_rate}")
        if self.beta < 0:
            raise ValueError(f"beta must be non-negative: {self.beta}")
        if self.input_weighting not in ("binary", "log1p", "l2"):
            raise ValueError(f"unknown input_weighting '{self.input_weighting}'")
        if self.anneal_steps < 0:
            raise ValueError(f"anneal_steps must be non-negative: {self.anneal_steps}")
        if not 0.0 <= self.feature_dropout < 1.0:
            raise ValueError(f"feature_dropout must be in [0, 1): {self.feature_dropout}")
        if self.embedding_capacity <= 0:
            raise ValueError(f"embedding_capacity must be positive: {self.embedding_capacity}")
